//! Runs every MIS algorithm in the library on the same graph and compares
//! rounds, messages, and bits across the three distributed models —
//! the §1 model hierarchy in action.
//!
//! ```sh
//! cargo run --release --example model_comparison
//! ```

use clique_mis::algorithms::beeping_mis::{run_beeping_to_completion, BeepingParams};
use clique_mis::algorithms::clique_mis::{run_clique_mis_outcome, CliqueMisParams};
use clique_mis::algorithms::ghaffari16::{run_ghaffari16, run_ghaffari16_clique, Ghaffari16Params};
use clique_mis::algorithms::greedy::greedy_mis;
use clique_mis::algorithms::luby::{run_luby, LubyParams};
use clique_mis::algorithms::sparsified::{run_sparsified_with_cleanup, SparsifiedParams};
use clique_mis::algorithms::MisOutcome;
use clique_mis::analysis::table::Table;
use clique_mis::graph::{checks, generators};
use clique_mis::Model;

fn main() {
    let n = 600;
    let seed = 3;
    let g = generators::erdos_renyi_gnp(n, 20.0 / n as f64, 11);
    println!(
        "graph: {} nodes, {} edges, Δ = {}\n",
        g.node_count(),
        g.edge_count(),
        g.max_degree()
    );

    let mut table = Table::new(
        "MIS algorithms on one graph (all outputs verified maximal independent)",
        &[
            "algorithm",
            "model",
            "MIS size",
            "iterations",
            "rounds",
            "messages",
            "bits",
        ],
    );
    let mut add = |name: &str, model: Model, out: &MisOutcome| {
        assert!(
            checks::is_maximal_independent_set(&g, &out.mis),
            "{name} produced an invalid MIS"
        );
        table.row(&[
            name.to_string(),
            model.to_string(),
            out.mis.len().to_string(),
            out.iterations.to_string(),
            out.ledger.rounds.to_string(),
            out.ledger.messages.to_string(),
            out.ledger.bits.to_string(),
        ]);
    };

    let greedy = MisOutcome {
        mis: greedy_mis(&g),
        ledger: Default::default(),
        iterations: 0,
    };
    add("greedy (oracle)", Model::Sequential, &greedy);
    add(
        "luby [Luby'86]",
        Model::Congest,
        &run_luby(&g, &LubyParams::for_graph(&g), seed),
    );
    add(
        "ghaffari16 [SODA'16]",
        Model::Congest,
        &run_ghaffari16(&g, &Ghaffari16Params::for_graph(&g), seed),
    );
    add(
        "beeping MIS (§2.2)",
        Model::Beeping,
        &run_beeping_to_completion(&g, &BeepingParams::for_graph(&g), seed),
    );
    add(
        "sparsified (§2.3)",
        Model::Beeping,
        &run_sparsified_with_cleanup(&g, &SparsifiedParams::for_graph(&g), seed),
    );
    add(
        "ghaffari16-clique [13]",
        Model::CongestedClique,
        &run_ghaffari16_clique(&g, &Ghaffari16Params::for_graph(&g), seed),
    );
    add(
        "Theorem 1.1 (§2.4)",
        Model::CongestedClique,
        &run_clique_mis_outcome(&g, &CliqueMisParams::default(), seed),
    );

    println!("{table}");
    println!("note: different algorithms legitimately find different (all maximal) sets;");
    println!("round columns are comparable only within a model.");
}
