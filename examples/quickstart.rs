//! Quickstart: compute an MIS in the congested clique with the Theorem 1.1
//! algorithm and inspect what it cost.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use clique_mis::algorithms::clique_mis::{run_clique_mis, CliqueMisParams};
use clique_mis::algorithms::lowdeg::{run_theorem_1_1, Strategy};
use clique_mis::graph::{checks, generators};

fn main() {
    // A random graph: 1000 nodes, average degree 16.
    let g = generators::erdos_renyi_gnp(1000, 16.0 / 1000.0, 42);
    println!(
        "graph: {} nodes, {} edges, Δ = {}",
        g.node_count(),
        g.edge_count(),
        g.max_degree()
    );

    // The full Theorem 1.1 dispatcher (picks the §2.5 fast path or the
    // §2.4 sparsified simulation by the degree threshold).
    let (outcome, strategy) = run_theorem_1_1(&g, 7);
    assert!(checks::is_maximal_independent_set(&g, &outcome.mis));
    println!(
        "Theorem 1.1 [{}]: MIS of {} nodes in {} congested-clique rounds ({} messages, {} bits)",
        match strategy {
            Strategy::LowDegree => "low-degree fast path",
            Strategy::Sparsified => "sparsified simulation",
        },
        outcome.mis.len(),
        outcome.ledger.rounds,
        outcome.ledger.messages,
        outcome.ledger.bits,
    );

    // The same run with full phase-by-phase introspection.
    let detailed = run_clique_mis(&g, &CliqueMisParams::default(), 7);
    println!("\nphase breakdown (sparsified simulation):");
    println!("  phase  iters  alive  super-heavy  |S|  maxS-deg  gather-rounds");
    for (i, ph) in detailed.phases.iter().enumerate() {
        println!(
            "  {:>5}  {:>5}  {:>5}  {:>11}  {:>3}  {:>8}  {:>13}",
            i,
            ph.len,
            ph.alive_at_start,
            ph.super_heavy,
            ph.sampled,
            ph.max_s_degree,
            ph.gather_rounds
        );
    }
    println!(
        "\nresidual before clean-up: {} nodes, {} edges (Lemma 2.11 promises O(n))",
        detailed.residual_nodes, detailed.residual_edges
    );
}
