//! The §1.2 connection in action: MIS membership as a *local computation
//! algorithm*. Queries probe only a small ball around the queried node,
//! yet all answers are consistent with one global MIS.
//!
//! ```sh
//! cargo run --release --example lca_queries
//! ```

use clique_mis::algorithms::lca::{MisAnswer, MisOracle};
use clique_mis::graph::{checks, generators, NodeId};

fn main() {
    // A graph far too large to want to solve globally for a handful of
    // membership questions.
    let n = 50_000;
    let g = generators::random_regular(n, 4, 123);
    println!(
        "graph: {} nodes, {} edges (4-regular)",
        g.node_count(),
        g.edge_count()
    );

    let oracle = MisOracle::new(&g, 7);
    println!("\nquerying 10 nodes spread across the graph:");
    println!("  node     answer      probes  ball-nodes  radius  attempts");
    for q in 0..10u32 {
        let v = NodeId::new(q * (n as u32 / 10));
        let (answer, stats) = oracle.query(v);
        println!(
            "  {:>6}  {:<10}  {:>6}  {:>10}  {:>6}  {:>8}",
            v.to_string(),
            match answer {
                MisAnswer::InMis => "IN MIS",
                MisAnswer::Dominated => "dominated",
            },
            stats.probes,
            stats.ball_nodes,
            stats.radius,
            stats.attempts
        );
    }

    // Consistency: assembling *all* answers yields a verified MIS.
    // (Do it on a smaller instance to keep the demo snappy.)
    let small = generators::random_regular(2000, 4, 123);
    let oracle = MisOracle::new(&small, 7);
    let mis: Vec<NodeId> = small
        .nodes()
        .filter(|&v| matches!(oracle.query(v).0, MisAnswer::InMis))
        .collect();
    assert!(checks::is_maximal_independent_set(&small, &mis));
    println!(
        "\nconsistency check on n = 2000: all {} per-node answers assemble into a verified MIS ({} members)",
        small.node_count(),
        mis.len()
    );
}
