//! Watches Lemma 2.11 happen: runs the sparsified algorithm iteration
//! budget by iteration budget and prints how the graph shatters — the
//! number of undecided nodes, the edges among them, and the largest
//! surviving component — until the residual is small enough for the
//! `O(1)`-round leader clean-up.
//!
//! ```sh
//! cargo run --release --example shattering_demo
//! ```

use clique_mis::algorithms::sparsified::{run_sparsified, SparsifiedParams};
use clique_mis::graph::generators;
use clique_mis::graph::ops::{component_sizes, induced_subgraph};

fn main() {
    let n = 2000;
    let g = generators::erdos_renyi_gnp(n, 24.0 / n as f64, 99);
    println!(
        "graph: {} nodes, {} edges, Δ = {}\n",
        g.node_count(),
        g.edge_count(),
        g.max_degree()
    );
    println!("iters  undecided  residual-edges  edges/n  largest-component");

    let base = SparsifiedParams::for_graph(&g);
    for budget in [1u64, 2, 4, 8, 12, 16, 24, 32, base.max_iterations] {
        let params = SparsifiedParams {
            max_iterations: budget,
            ..base
        };
        let run = run_sparsified(&g, &params, 5);
        let largest = if run.residual.is_empty() {
            0
        } else {
            let (sub, _) = induced_subgraph(&g, &run.residual);
            component_sizes(&sub).first().copied().unwrap_or(0)
        };
        println!(
            "{:>5}  {:>9}  {:>14}  {:>7.3}  {:>17}",
            run.iterations,
            run.residual.len(),
            run.residual_edge_count,
            run.residual_edge_count as f64 / n as f64,
            largest
        );
        if run.residual.is_empty() {
            break;
        }
    }
    println!("\nLemma 2.11: after Θ(log Δ) iterations at most O(n) edges remain, w.h.p.");
}
