//! Theorem 2.1 live: the beeping MIS decides each node in
//! `O(log deg + log 1/ε)` iterations with an exponential tail, and the
//! golden-round machinery (Lemma 2.3) is visible in the per-node traces.
//!
//! ```sh
//! cargo run --release --example beeping_locality
//! ```

use clique_mis::algorithms::beeping_mis::{run_beeping, BeepingParams};
use clique_mis::analysis::stats::Summary;
use clique_mis::graph::generators;

fn main() {
    println!("decision time vs degree on d-regular graphs (n = 1000, one seed):\n");
    println!("    d  mean-iters  p90  max   (Theorem 2.1: O(log d))");
    for d in [2usize, 4, 8, 16, 32, 64] {
        let g = generators::random_regular(1000, d, 7);
        let run = run_beeping(&g, &BeepingParams::for_graph(&g), 1);
        assert!(run.residual.is_empty());
        let times: Vec<f64> = run
            .removed_at
            .iter()
            .map(|r| r.expect("all decided") as f64 + 1.0)
            .collect();
        let s = Summary::of(&times);
        println!(
            "  {:>3}  {:>10.2}  {:>3.0}  {:>3.0}",
            d, s.mean, s.p90, s.max
        );
    }

    // Golden rounds on one run.
    let g = generators::erdos_renyi_gnp(1000, 0.016, 5);
    let params = BeepingParams {
        record_trace: true,
        ..BeepingParams::for_graph(&g)
    };
    let run = run_beeping(&g, &params, 2);
    let fracs: Vec<f64> = (0..g.node_count())
        .filter(|&i| run.trace.undecided_iterations[i] > 0)
        .map(|i| {
            (run.trace.golden1[i] + run.trace.golden2[i]) as f64
                / run.trace.undecided_iterations[i] as f64
        })
        .collect();
    let s = Summary::of(&fracs);
    let wrong: u64 = run.trace.wrong_moves.iter().sum();
    let life: u64 = run.trace.undecided_iterations.iter().sum();
    println!("\ngolden-round fraction across nodes (Lemma 2.3 promises ≥ 0.05):");
    println!(
        "  mean {:.3}, min {:.3}, median {:.3}",
        s.mean, s.min, s.median
    );
    println!(
        "wrong-move rate (Lemmas 2.4/2.5 bound 0.02): {:.4}",
        wrong as f64 / life.max(1) as f64
    );
}
