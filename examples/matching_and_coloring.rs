//! The standard reductions of §1.1 in action: maximal matching and
//! `(Δ+1)`-coloring computed through the congested-clique MIS algorithm.
//!
//! ```sh
//! cargo run --release --example matching_and_coloring
//! ```

use clique_mis::algorithms::clique_mis::{run_clique_mis, CliqueMisParams};
use clique_mis::algorithms::reductions::{coloring_via_mis, maximal_matching_via_mis};
use clique_mis::algorithms::ruling_set::two_ruling_set;
use clique_mis::graph::{checks, generators};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = generators::erdos_renyi_gnp(300, 0.04, 8);
    let delta = g.max_degree();
    println!(
        "graph: {} nodes, {} edges, Δ = {delta}\n",
        g.node_count(),
        g.edge_count()
    );

    // Maximal matching = MIS of the line graph.
    let matching = maximal_matching_via_mis(&g, |lg| {
        run_clique_mis(lg, &CliqueMisParams::default(), 1).mis
    });
    assert!(checks::is_maximal_matching(&g, &matching));
    println!(
        "maximal matching: {} edges (covers {} of {} vertices)",
        matching.len(),
        2 * matching.len(),
        g.node_count()
    );

    // (Δ+1)-coloring = MIS of the coloring product.
    let palette = delta + 1;
    let colors = coloring_via_mis(&g, palette, |prod| {
        run_clique_mis(prod, &CliqueMisParams::default(), 2).mis
    })?;
    assert!(checks::is_proper_coloring(&g, &colors, palette));
    let used = {
        let mut seen = vec![false; palette];
        for &c in &colors {
            seen[c] = true;
        }
        seen.iter().filter(|&&s| s).count()
    };
    println!("(Δ+1)-coloring: palette {palette}, colors actually used {used}");

    // Bonus related-work artifact: a 2-ruling set via MIS of G².
    let ruling = two_ruling_set(&g, 3);
    assert!(checks::is_k_ruling_set(&g, &ruling.set, 2));
    println!(
        "2-ruling set: {} nodes in {} clique rounds (every vertex within distance 2)",
        ruling.set.len(),
        ruling.rounds
    );
    Ok(())
}
