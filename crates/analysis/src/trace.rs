//! JSONL sink for the simulator's structured per-round trace.
//!
//! [`JsonlTraceSink`] implements [`cc_mis_sim::RoundObserver`]: every
//! [`RoundEvent`] the round core emits becomes one compact JSON object on
//! its own line, rendered through the dependency-free writer in
//! [`crate::json`]. Lines are buffered in memory and flushed to the target
//! path on [`JsonlTraceSink::finish`] (or on drop), so tracing adds no
//! per-round I/O to the run it watches.
//!
//! Event schema (one object per line, keys always present):
//!
//! ```json
//! {"kind":"deliver","phase":"exchange","round":3,"messages":118,
//!  "bits":944,"max_pair_load":8,"violations":0,
//!  "inbox_histogram":[[0,2],[3,58]]}
//! ```

use std::cell::RefCell;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use cc_mis_sim::{RoundEvent, RoundObserver, SharedObserver};

use crate::json::Json;

/// Renders one [`RoundEvent`] as a compact JSON object (no trailing
/// newline). This is the schema's reference implementation; the sink's hot
/// path ([`write_event_line`]) produces byte-identical output without
/// building the [`Json`] tree (pinned by the `direct_render_matches_tree`
/// test).
pub fn event_to_json(event: &RoundEvent) -> Json {
    let histogram: Vec<Json> = event
        .inbox_histogram
        .iter()
        .map(|&(size, count)| Json::Arr(vec![Json::from(size), Json::from(count)]))
        .collect();
    Json::obj(vec![
        ("kind", Json::from(event.kind)),
        (
            "phase",
            match &event.phase {
                Some(label) => Json::from(label.as_str()),
                None => Json::Null,
            },
        ),
        ("round", Json::from(event.round)),
        ("messages", Json::from(event.messages)),
        ("bits", Json::from(event.bits)),
        ("max_pair_load", Json::from(event.max_pair_load)),
        ("violations", Json::from(event.violations)),
        ("inbox_histogram", Json::Arr(histogram)),
    ])
}

/// Appends one compact JSON line (with trailing newline) for `event` to
/// `out`. Byte-identical to `event_to_json(event).render()` but allocation-
/// free: the observer fires once per simulated round, so the sink must not
/// pay a tree of small allocations per event.
pub fn write_event_line(out: &mut String, event: &RoundEvent) {
    use std::fmt::Write;
    out.push_str("{\"kind\":");
    crate::json::write_escaped(out, event.kind);
    out.push_str(",\"phase\":");
    match &event.phase {
        Some(label) => crate::json::write_escaped(out, label),
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"round\":{},\"messages\":{},\"bits\":{},\"max_pair_load\":{},\"violations\":{}",
        event.round, event.messages, event.bits, event.max_pair_load, event.violations
    );
    out.push_str(",\"inbox_histogram\":[");
    for (i, &(size, count)) in event.inbox_histogram.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{size},{count}]");
    }
    out.push_str("]}\n");
}

/// A [`RoundObserver`] that accumulates one JSON line per round event and
/// writes the whole trace to a file when finished.
pub struct JsonlTraceSink {
    path: PathBuf,
    lines: String,
    events: u64,
    written: bool,
}

impl JsonlTraceSink {
    /// Creates a sink that will write to `path` on [`finish`](Self::finish)
    /// (or on drop). The file is not touched until then.
    pub fn new(path: impl AsRef<Path>) -> JsonlTraceSink {
        JsonlTraceSink {
            path: path.as_ref().to_path_buf(),
            lines: String::new(),
            events: 0,
            written: false,
        }
    }

    /// Wraps a sink in the `Rc<RefCell<…>>` handle the engines accept.
    /// Keep a clone to call [`finish_shared`](Self::finish_shared) later.
    pub fn shared(self) -> Rc<RefCell<JsonlTraceSink>> {
        Rc::new(RefCell::new(self))
    }

    /// Upcasts a shared sink to the engine-facing observer handle.
    pub fn as_observer(sink: &Rc<RefCell<JsonlTraceSink>>) -> SharedObserver {
        Rc::clone(sink) as SharedObserver
    }

    /// Number of events recorded so far.
    pub fn event_count(&self) -> u64 {
        self.events
    }

    /// Writes the buffered trace to the sink's path and marks it written.
    /// Returns the number of events in the trace.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from creating or writing the file.
    pub fn finish(&mut self) -> std::io::Result<u64> {
        let mut file = std::fs::File::create(&self.path)?;
        file.write_all(self.lines.as_bytes())?;
        self.written = true;
        Ok(self.events)
    }

    /// [`finish`](Self::finish) through the shared handle.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from creating or writing the file.
    pub fn finish_shared(sink: &Rc<RefCell<JsonlTraceSink>>) -> std::io::Result<u64> {
        sink.borrow_mut().finish()
    }
}

impl RoundObserver for JsonlTraceSink {
    fn on_event(&mut self, event: &RoundEvent) {
        write_event_line(&mut self.lines, event);
        self.events += 1;
    }
}

impl Drop for JsonlTraceSink {
    fn drop(&mut self) {
        if !self.written && self.events > 0 {
            // Best-effort flush for sinks abandoned without finish().
            let _ = self.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cc-mis-trace-{}-{name}.jsonl", std::process::id()));
        p
    }

    fn sample_event(round: u64) -> RoundEvent {
        RoundEvent {
            kind: "deliver",
            phase: Some("exchange".to_string()),
            round,
            messages: 10,
            bits: 80,
            max_pair_load: 8,
            violations: 0,
            inbox_histogram: vec![(0, 2), (3, 5)],
        }
    }

    #[test]
    fn one_compact_line_per_event() {
        let path = temp_path("lines");
        let mut sink = JsonlTraceSink::new(&path);
        sink.on_event(&sample_event(1));
        sink.on_event(&sample_event(2));
        let n = sink.finish().expect("write trace");
        assert_eq!(n, 2);
        let body = std::fs::read_to_string(&path).expect("read trace");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"kind\":\"deliver\",\"phase\":\"exchange\",\"round\":1,\
             \"messages\":10,\"bits\":80,\"max_pair_load\":8,\"violations\":0,\
             \"inbox_histogram\":[[0,2],[3,5]]}"
        );
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn null_phase_and_empty_histogram_render() {
        let event = RoundEvent {
            kind: "idle",
            phase: None,
            round: 7,
            messages: 0,
            bits: 0,
            max_pair_load: 0,
            violations: 0,
            inbox_histogram: Vec::new(),
        };
        let line = event_to_json(&event).render();
        assert!(line.contains("\"phase\":null"), "{line}");
        assert!(line.contains("\"inbox_histogram\":[]"), "{line}");
    }

    #[test]
    fn direct_render_matches_tree() {
        let events = [
            sample_event(3),
            RoundEvent {
                kind: "idle",
                phase: Some("label \"with\" quotes\n".to_string()),
                round: 0,
                messages: 0,
                bits: 0,
                max_pair_load: 0,
                violations: 2,
                inbox_histogram: Vec::new(),
            },
            RoundEvent {
                phase: None,
                ..sample_event(u64::MAX)
            },
        ];
        for event in &events {
            let mut direct = String::new();
            write_event_line(&mut direct, event);
            assert_eq!(direct, event_to_json(event).render() + "\n");
        }
    }

    #[test]
    fn shared_handle_observes_and_finishes() {
        let path = temp_path("shared");
        let sink = JsonlTraceSink::new(&path).shared();
        {
            let observer = JsonlTraceSink::as_observer(&sink);
            observer.borrow_mut().on_event(&sample_event(1));
        }
        let n = JsonlTraceSink::finish_shared(&sink).expect("write trace");
        assert_eq!(n, 1);
        assert_eq!(sink.borrow().event_count(), 1);
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn sink_records_a_real_engine_run() {
        use cc_mis_core::luby::{run_luby_observed, LubyParams};
        use cc_mis_graph::generators;

        let path = temp_path("engine");
        let g = generators::erdos_renyi_gnp(40, 0.15, 3);
        let sink = JsonlTraceSink::new(&path).shared();
        let out = run_luby_observed(
            &g,
            &LubyParams::for_graph(&g),
            9,
            Some(JsonlTraceSink::as_observer(&sink)),
        );
        let n = JsonlTraceSink::finish_shared(&sink).expect("write trace");
        assert_eq!(n, out.ledger.rounds, "one event per round");
        let body = std::fs::read_to_string(&path).expect("read trace");
        assert_eq!(body.lines().count() as u64, n);
        for line in body.lines() {
            assert!(line.starts_with("{\"kind\":\""), "{line}");
        }
        std::fs::remove_file(&path).expect("cleanup");
    }
}
