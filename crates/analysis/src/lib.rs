//! Instrumentation, statistics, and experiment plumbing for the
//! `clique-mis` reproduction.
//!
//! The paper is a theory paper: its "evaluation" is a set of quantitative
//! claims (round bounds, golden-round counts, shattering, sparsity of the
//! sampled set). The experiment binaries in `cc-mis-bench` regenerate each
//! claim as a table; this crate supplies what they share:
//!
//! * [`stats`] — summary statistics, quantiles, least-squares fits (for
//!   checking growth *shapes* like `rounds ∝ log Δ` vs `∝ √(log Δ)`).
//! * [`table`] — plain-text and CSV table rendering.
//! * [`experiment`] — seeded multi-trial runners and sweep helpers.
//! * [`json`] — a dependency-free JSON writer (the workspace builds with
//!   no registry access, so `serde_json` is deliberately absent).
//! * [`trace`] — a JSONL sink for the simulator's per-round trace events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod json;
pub mod stats;
pub mod table;
pub mod trace;
