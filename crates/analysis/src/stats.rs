//! Summary statistics and least-squares fits.

/// Summary of a sample: mean, standard deviation, min/max, and quartiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than 2 observations).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (interpolated).
    pub median: f64,
    /// 90th percentile (interpolated).
    pub p90: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    ///
    /// # Example
    ///
    /// ```
    /// use cc_mis_analysis::stats::Summary;
    /// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
    /// assert_eq!(s.mean, 2.5);
    /// assert_eq!(s.min, 1.0);
    /// assert_eq!(s.max, 4.0);
    /// ```
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        assert!(values.iter().all(|v| !v.is_nan()), "sample contains NaN");
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: quantile_sorted(&sorted, 0.5),
            p90: quantile_sorted(&sorted, 0.9),
        }
    }
}

/// Interpolated quantile of a **sorted** sample, `q ∈ [0, 1]`.
///
/// # Panics
///
/// Panics if the sample is empty or `q` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Least-squares line fit `y ≈ slope · x + intercept`, with the coefficient
/// of determination `r²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (1 = perfect fit; 0 when `y` is
    /// constant and perfectly predicted by its mean).
    pub r_squared: f64,
}

/// Fits a least-squares line through `(x, y)` pairs.
///
/// Used by the experiments to compare growth shapes: e.g. regressing
/// measured rounds against `log Δ` and against `√(log Δ)` and comparing
/// `r²` tells which scaling law explains the data better.
///
/// # Panics
///
/// Panics if fewer than 2 points are given or all `x` are identical.
///
/// # Example
///
/// ```
/// use cc_mis_analysis::stats::fit_line;
/// let fit = fit_line(&[(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]);
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// assert!(fit.r_squared > 0.999);
/// ```
pub fn fit_line(points: &[(f64, f64)]) -> LineFit {
    assert!(points.len() >= 2, "need at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "x values are all identical");
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot <= 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LineFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Fits an exponential-decay model `y ≈ a · exp(-λ x)` by regressing
/// `ln y` on `x` (points with `y ≤ 0` are skipped). Returns `(a, λ, r²)`.
///
/// Used by experiment E3 to verify Theorem 2.1's exponential tail of
/// survival probability.
///
/// # Panics
///
/// Panics if fewer than 2 usable points remain.
pub fn fit_exponential_decay(points: &[(f64, f64)]) -> (f64, f64, f64) {
    let logged: Vec<(f64, f64)> = points
        .iter()
        .filter(|p| p.1 > 0.0)
        .map(|p| (p.0, p.1.ln()))
        .collect();
    let fit = fit_line(&logged);
    (fit.intercept.exp(), -fit.slope, fit.r_squared)
}

/// The half-width of a 95% normal-approximation confidence interval for
/// the mean of `values` (`1.96 · s/√k`; 0 for fewer than 2 observations).
///
/// # Example
///
/// ```
/// use cc_mis_analysis::stats::mean_ci95;
/// let (mean, half) = mean_ci95(&[10.0, 12.0, 11.0, 9.0]);
/// assert_eq!(mean, 10.5);
/// assert!(half > 0.0 && half < 3.0);
/// ```
pub fn mean_ci95(values: &[f64]) -> (f64, f64) {
    let s = Summary::of(values);
    let half = if s.count > 1 {
        1.96 * s.std_dev / (s.count as f64).sqrt()
    } else {
        0.0
    };
    (s.mean, half)
}

/// A fixed-width histogram over `[min, max)` with values outside clamped
/// into the end bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    min: f64,
    width: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[min, max)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `max <= min`.
    pub fn new(min: f64, max: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(max > min, "max must exceed min");
        Histogram {
            min,
            width: (max - min) / bins as f64,
            counts: vec![0; bins],
        }
    }

    /// Adds an observation (clamped into the end bins).
    pub fn add(&mut self, value: f64) {
        let idx = ((value - self.min) / self.width).floor() as i64;
        let idx = idx.clamp(0, self.counts.len() as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// The per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(lower_edge, count)` pairs for rendering.
    pub fn bins(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.min + i as f64 * self.width, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci95_shrinks_with_more_samples() {
        let few = mean_ci95(&[1.0, 2.0, 3.0, 4.0]).1;
        let many: Vec<f64> = (0..64).map(|i| 1.0 + (i % 4) as f64).collect();
        let lots = mean_ci95(&many).1;
        assert!(lots < few);
        assert_eq!(mean_ci95(&[5.0]).1, 0.0);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.5, 1.5, 2.5, 9.9, -3.0, 42.0] {
            h.add(v);
        }
        assert_eq!(h.total(), 6);
        // 0.5 and 1.5 share bin 0 with the low-clamped -3; 9.9 shares the
        // last bin with the high-clamped 42.
        assert_eq!(h.counts(), &[3, 1, 0, 0, 2]);
        let edges: Vec<f64> = h.bins().map(|(e, _)| e).collect();
        assert_eq!(edges, vec![0.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.p90, 5.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_empty_panics() {
        Summary::of(&[]);
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn fit_recovers_noiseless_line() {
        let points: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 3.0 * i as f64 - 7.0)).collect();
        let fit = fit_line(&points);
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept + 7.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn fit_constant_y_has_full_r2() {
        let points = [(0.0, 2.0), (1.0, 2.0), (2.0, 2.0)];
        let fit = fit_line(&points);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn exponential_decay_recovered() {
        let points: Vec<(f64, f64)> = (0..30)
            .map(|i| (i as f64, 5.0 * (-0.3 * i as f64).exp()))
            .collect();
        let (a, lambda, r2) = fit_exponential_decay(&points);
        assert!((a - 5.0).abs() < 1e-6);
        assert!((lambda - 0.3).abs() < 1e-9);
        assert!(r2 > 0.999);
    }

    #[test]
    fn decay_fit_skips_zeros() {
        let points = [(0.0, 4.0), (1.0, 2.0), (2.0, 0.0), (3.0, 0.5)];
        let (_, lambda, _) = fit_exponential_decay(&points);
        assert!(lambda > 0.0);
    }
}
