//! Seeded multi-trial experiment plumbing.
//!
//! Experiments run every configuration over several seeds and report
//! aggregates; this module provides the tiny harness that makes that
//! uniform across the E1–E11/A1 binaries.

use crate::stats::Summary;

/// A single measured trial.
#[derive(Debug, Clone)]
pub struct Trial {
    /// The seed the trial ran with.
    pub seed: u64,
    /// Measured value (rounds, edges, whatever the experiment tracks).
    pub value: f64,
}

/// Runs `trials` seeded trials of `f` and collects the measurements.
///
/// Seeds are `base_seed, base_seed+1, …` so experiments are reproducible
/// and disjoint experiments can use disjoint seed ranges.
///
/// # Example
///
/// ```
/// use cc_mis_analysis::experiment::run_trials;
/// let m = run_trials(100, 5, |seed| seed as f64);
/// assert_eq!(m.len(), 5);
/// assert_eq!(m[0].seed, 100);
/// assert_eq!(m[4].value, 104.0);
/// ```
pub fn run_trials(base_seed: u64, trials: usize, mut f: impl FnMut(u64) -> f64) -> Vec<Trial> {
    (0..trials as u64)
        .map(|i| {
            let seed = base_seed + i;
            Trial {
                seed,
                value: f(seed),
            }
        })
        .collect()
}

/// Summarizes trial values.
///
/// # Panics
///
/// Panics if `trials` is empty.
pub fn summarize(trials: &[Trial]) -> Summary {
    let values: Vec<f64> = trials.iter().map(|t| t.value).collect();
    Summary::of(&values)
}

/// A labeled sweep point with its trial summary — one row of an experiment
/// table.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The swept parameter, rendered (e.g. `"n=1024"`).
    pub label: String,
    /// Summary over seeds.
    pub summary: Summary,
}

/// Geometric sweep helper: `start, start·factor, …` up to `limit`
/// (inclusive), rounded to integers and deduplicated.
///
/// # Example
///
/// ```
/// use cc_mis_analysis::experiment::geometric_sweep;
/// assert_eq!(geometric_sweep(100, 2.0, 800), vec![100, 200, 400, 800]);
/// ```
pub fn geometric_sweep(start: usize, factor: f64, limit: usize) -> Vec<usize> {
    assert!(factor > 1.0, "factor must exceed 1");
    let mut out = Vec::new();
    let mut x = start as f64;
    while x.round() as usize <= limit {
        let v = x.round() as usize;
        if out.last() != Some(&v) {
            out.push(v);
        }
        x *= factor;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_are_seed_sequenced() {
        let t = run_trials(7, 3, |s| (s * 2) as f64);
        assert_eq!(t.iter().map(|x| x.seed).collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(t[2].value, 18.0);
    }

    #[test]
    fn summarize_matches_stats() {
        let t = run_trials(0, 4, |s| s as f64);
        let s = summarize(&t);
        assert_eq!(s.mean, 1.5);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn geometric_sweep_dedups() {
        // factor small enough that rounding repeats values
        let s = geometric_sweep(10, 1.05, 12);
        assert_eq!(s.first(), Some(&10));
        let mut d = s.clone();
        d.dedup();
        assert_eq!(s, d);
    }

    #[test]
    #[should_panic(expected = "factor must exceed 1")]
    fn bad_factor_panics() {
        geometric_sweep(1, 1.0, 10);
    }
}
