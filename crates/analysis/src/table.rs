//! Plain-text and CSV table rendering for experiment output.
//!
//! Every experiment binary prints one or more [`Table`]s: a title, a header
//! row, and data rows. The same table can be dumped as CSV for downstream
//! plotting.

use std::fmt;

/// A simple column-aligned table.
///
/// # Example
///
/// ```
/// use cc_mis_analysis::table::Table;
///
/// let mut t = Table::new("demo", &["n", "rounds"]);
/// t.row(&["100", "12"]);
/// t.row(&["200", "14"]);
/// let text = t.to_string();
/// assert!(text.contains("demo"));
/// assert!(text.contains("rounds"));
/// assert_eq!(t.to_csv(), "n,rounds\n100,12\n200,14\n");
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[impl AsRef<str>]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header + rows, comma-separated). Cells
    /// containing commas or quotes are quoted.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(c, cell)| format!("{:>width$}", cell, width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimal places (the standard cell format of the
/// experiment tables).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_title() {
        let mut t = Table::new("T", &["a", "bbbb"]);
        t.row(&["12345", "6"]);
        let s = t.to_string();
        assert!(s.starts_with("## T\n"));
        // Column a is width 5, so header 'a' is right-aligned.
        assert!(s.contains("    a  bbbb"));
        assert!(s.contains("12345     6"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("T", &["x", "note"]);
        t.row(&["1", "hello, world"]);
        t.row(&["2", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new("T", &["x"]);
        assert!(t.is_empty());
        t.row(&["1"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f2(1.005), "1.00"); // rounds-to-even on exact binary repr
        assert_eq!(f3(2.0 / 3.0), "0.667");
    }
}
