//! Dependency-free JSON writer.
//!
//! The workspace must build with zero registry access, so instead of
//! `serde_json` this module provides a tiny value tree plus a renderer.
//! It only *writes* JSON (experiment results, bench baselines); nothing
//! in the workspace needs to parse it back.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer (rendered without a decimal point).
    Int(i64),
    /// Unsigned integer (rendered without a decimal point).
    UInt(u64),
    /// Floating point. Non-finite values render as `null` (JSON has no
    /// NaN/Infinity literals).
    Num(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; key order is preserved as inserted.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders the value as compact JSON into an existing buffer (lets
    /// line-oriented writers reuse one allocation across records).
    pub fn render_into(&self, out: &mut String) {
        self.write(out);
    }

    /// Renders with two-space indentation (stable output for diffs).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's shortest-roundtrip Display is valid JSON for finite
        // values, except that integral floats print without a decimal
        // point — which JSON also allows.
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}
impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::UInt(u as u64)
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_as_json_literals() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(7).render(), "7");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::Str("a\"b\\c\nd".into()).render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn containers_preserve_order() {
        let v = Json::obj(vec![
            ("b", Json::from(2u64)),
            ("a", Json::Arr(vec![Json::Int(1), Json::Null])),
        ]);
        assert_eq!(v.render(), r#"{"b":2,"a":[1,null]}"#);
    }

    #[test]
    fn pretty_output_round_trips_structure() {
        let v = Json::obj(vec![
            ("xs", Json::from(vec![1u64, 2])),
            ("empty", Json::Arr(vec![])),
        ]);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\"xs\": [\n"));
        assert!(pretty.contains("\"empty\": []"));
        assert!(pretty.ends_with("}\n"));
    }
}
