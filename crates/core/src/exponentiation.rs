//! Graph exponentiation (Lemma 2.14): learning `r`-hop neighborhoods in
//! `O(log r)` congested-clique rounds.
//!
//! The doubling scheme of the paper's proof (re-proving [Lenzen &
//! Wattenhofer, PODC'10]): initially every node knows its incident edges
//! (radius-1 ball). In step `i`, every node ships its currently-known ball
//! to every node *inside* that ball; since the ball holds all nodes within
//! distance `2^i`, the union of received balls covers radius `2^{i+1}`.
//! After `⌈log₂ r⌉` steps each node knows its `r`-hop neighborhood. Each
//! step's packet exchange is delivered with Lenzen routing
//! ([`cc_mis_sim::routing`]), whose measured rounds are charged to the
//! engine — `O(1)` per step whenever the Lemma 2.14 capacity precondition
//! (ball size `≪ n^{δ}`) holds.
//!
//! Knowledge travels as *edge records*. A record's declared size
//! (`record_bits`) includes whatever decorations ride along — the caller
//! using decorated graphs `G*[S]` (§2.4) passes the decorated size, so the
//! bit accounting covers decorations even though the payload carries only
//! the edge (decorations being reconstructible from the shared randomness;
//! see DESIGN.md §2).
//!
//! ## Representation
//!
//! Balls are stored *flat*: each edge `(a, b)` with `a < b` is packed into
//! a single `u64` key (`a` in the high half), and a ball is a sorted,
//! deduplicated `Vec<u64>` of keys. Sorted-key order coincides with the
//! lexicographic pair order. Internally a gather works in *dense edge-id*
//! space — id `i` is the `i`-th participant edge in key order, so
//! id-sorted output is key-sorted output — and payloads ship as shared
//! `Arc<[u32]>` id slices. Unions of received balls run in `O(total input
//! ids)` against an L1-resident membership bitmap (no hashing anywhere on
//! the union path), with an early stop once a ball holds every participant
//! edge; [`kway_union`] is the sorted-merge reference the bitmap union
//! must agree with. The round/bit accounting is unchanged: payload bits
//! (`ball edges × record_bits`) and packet targets are computed exactly as
//! before.

use std::sync::Arc;

use cc_mis_graph::{Graph, NodeId};
use cc_mis_sim::clique::CliqueEngine;
use cc_mis_sim::routing::{route, Packet};

/// Packs an edge `(a, b)` into a single `u64` key (`a` in the high bits).
/// Sorting keys sorts the edges lexicographically by `(a, b)`.
#[inline]
pub fn pack_edge(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// Inverse of [`pack_edge`].
#[inline]
pub fn unpack_edge(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// A gathered ball: the set of known edges, as sorted packed-edge keys.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ball {
    keys: Vec<u64>,
}

impl Ball {
    /// Number of known edges.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the ball holds no edges.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Whether the edge `(a, b)` (as ordered by the gather graph, `a < b`)
    /// is known.
    pub fn contains(&self, a: u32, b: u32) -> bool {
        self.keys.binary_search(&pack_edge(a, b)).is_ok()
    }

    /// The sorted packed-edge keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// Iterates the known edges in `(a, b)` lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.keys.iter().map(|&k| unpack_edge(k))
    }
}

/// Result of a [`gather_balls`] invocation.
#[derive(Debug, Clone)]
pub struct GatherResult {
    /// For each node: the set of known edges `(u, v)` with `u < v`
    /// (non-participants have empty balls).
    pub balls: Vec<Ball>,
    /// Doubling steps performed (`⌈log₂ radius⌉`).
    pub steps: u64,
    /// Clique rounds the routing consumed (also charged to the engine).
    pub rounds: u64,
    /// Largest ball, in edges, at the end.
    pub max_ball_edges: usize,
}

/// Union of sorted, deduplicated `u64` runs by divide-and-conquer k-way
/// merge: `O(M log k)` for `M` total keys across `k` runs. The reference
/// union for [`gather_balls`] (whose hot path uses an `O(M)` epoch-marked
/// union over dense edge ids instead — see [`EdgeIndex`]).
pub fn kway_union(runs: &[&[u64]]) -> Vec<u64> {
    match runs.len() {
        0 => Vec::new(),
        1 => runs[0].to_vec(),
        2 => merge_union(runs[0], runs[1]),
        _ => {
            let mid = runs.len() / 2;
            merge_union(&kway_union(&runs[..mid]), &kway_union(&runs[mid..]))
        }
    }
}

/// Two-pointer union of two sorted deduplicated runs.
pub fn merge_union(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        out.push(x.min(y));
        i += (x <= y) as usize;
        j += (y <= x) as usize;
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Gathers, for every `participant` node, all edges of `gather` within
/// distance `radius` of it.
///
/// `gather` must have the same vertex numbering as the engine; its edges
/// are the knowledge being learned (for §2.4 this is `G[S]`; for §2.5 it is
/// `G` itself). Only participants hold and exchange knowledge; edges with a
/// non-participant endpoint are assumed absent from `gather` (and are
/// ignored if present).
///
/// # Panics
///
/// Panics if `radius == 0` or the mask length mismatches the graph.
///
/// # Example
///
/// ```
/// use cc_mis_core::exponentiation::gather_balls;
/// use cc_mis_sim::clique::CliqueEngine;
/// use cc_mis_graph::generators;
///
/// let g = generators::path(6);
/// let mut engine = CliqueEngine::strict(6, 64);
/// let res = gather_balls(&mut engine, &g, &vec![true; 6], 2, 20);
/// // Node 0 sees edges (0,1) and (1,2) — its 2-hop ball on a path.
/// assert!(res.balls[0].contains(0, 1));
/// assert!(res.balls[0].contains(1, 2));
/// assert!(!res.balls[0].contains(2, 3));
/// ```
pub fn gather_balls(
    engine: &mut CliqueEngine,
    gather: &Graph,
    participant: &[bool],
    radius: usize,
    record_bits: u64,
) -> GatherResult {
    assert!(radius >= 1, "radius must be at least 1");
    assert_eq!(
        participant.len(),
        gather.node_count(),
        "participant mask mismatch"
    );
    let n = gather.node_count();

    // Dense edge-id space over the participant-filtered edge set: id `i` is
    // the `i`-th edge in ascending packed-key order, so id-sorted vectors
    // are key-sorted vectors. The whole gather — balls, payloads, unions —
    // runs on `u32` ids; keys reappear only in the returned `Ball`s.
    // `edges()` already iterates in ascending `(u, v)` order.
    let mut edge_keys: Vec<u64> = Vec::new();
    let mut ends: Vec<(u32, u32)> = Vec::new();
    let mut balls: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (u, v) in gather.edges() {
        if participant[u.index()] && participant[v.index()] {
            let id = edge_keys.len() as u32;
            edge_keys.push(pack_edge(u.raw(), v.raw()));
            ends.push((u.raw(), v.raw()));
            // Radius-1 initialization: incident edges. Ids are appended in
            // ascending order, so every ball starts sorted.
            balls[u.index()].push(id);
            balls[v.index()].push(id);
        }
    }
    debug_assert!(edge_keys.is_sorted());
    let m_part = edge_keys.len();
    // Membership bitmap for the union below: one bit per participant edge,
    // L1-resident for any gather this simulator can afford to run.
    let mut seen: Vec<u64> = vec![0; m_part.div_ceil(64)];

    let steps = if radius <= 1 {
        0
    } else {
        (radius as f64).log2().ceil() as u64
    };
    let mut total_rounds = 0u64;
    let mut steps_run = 0u64;
    let mut targets: Vec<u32> = Vec::new();
    for _ in 0..steps {
        let mut packets: Vec<Packet<Arc<[u32]>>> = Vec::new();
        for v in 0..n {
            if !participant[v] || balls[v].is_empty() {
                continue;
            }
            // One shared payload for every target of this node.
            let payload: Arc<[u32]> = Arc::from(balls[v].as_slice());
            let bits = payload.len() as u64 * record_bits;
            targets.clear();
            for &id in &balls[v] {
                let (a, b) = ends[id as usize];
                targets.push(a);
                targets.push(b);
            }
            targets.sort_unstable();
            targets.dedup();
            for &t in &targets {
                if t != v as u32 {
                    packets.push(Packet {
                        src: NodeId::new(v as u32),
                        dst: NodeId::new(t),
                        bits,
                        payload: Arc::clone(&payload),
                    });
                }
            }
        }
        let (inboxes, outcome) = route(engine, packets).expect("gather packets are well-formed");
        total_rounds += outcome.rounds;
        steps_run += 1;
        let mut grew = false;
        // The engine may be larger than the gather graph (it is padded to
        // at least 2 nodes); ignore inboxes beyond the graph.
        let full = gather.edge_count();
        for (v, inbox) in inboxes.into_iter().enumerate().take(n) {
            let before = balls[v].len();
            // A ball holding every edge of the gather graph can learn
            // nothing more — skip the union entirely (a large wall-clock
            // saving in the saturating step; the routing rounds were
            // already charged, so accounting is unchanged).
            if before != full && !inbox.is_empty() {
                for &id in &balls[v] {
                    seen[(id >> 6) as usize] |= 1 << (id & 63);
                }
                let mut count = before;
                for packet in &inbox {
                    // Saturated at the participant edge set: nothing left
                    // to learn, skip the remaining payloads.
                    if count == m_part {
                        break;
                    }
                    for &id in packet.payload.iter() {
                        let word = &mut seen[(id >> 6) as usize];
                        let bit = 1u64 << (id & 63);
                        if *word & bit == 0 {
                            *word |= bit;
                            count += 1;
                        }
                    }
                }
                if count != before {
                    // A sequential scan of the bitmap emits the new ball
                    // already id-sorted (hence key-sorted).
                    let mut out = Vec::with_capacity(count);
                    for (wi, &word) in seen.iter().enumerate() {
                        let mut bits = word;
                        while bits != 0 {
                            out.push((wi as u32) << 6 | bits.trailing_zeros());
                            bits &= bits - 1;
                        }
                    }
                    balls[v] = out;
                }
                // The final ball covers every set bit (payload ids that were
                // already known included), so this clears the whole bitmap.
                for &id in &balls[v] {
                    seen[(id >> 6) as usize] = 0;
                }
            }
            grew |= balls[v].len() != before;
        }
        // Saturation: once no ball grew, further doubling steps are no-ops
        // (each node already knows its entire component) — skip them.
        if !grew {
            break;
        }
    }

    let max_ball_edges = balls.iter().map(Vec::len).max().unwrap_or(0);
    GatherResult {
        balls: balls
            .into_iter()
            .map(|ids| Ball {
                keys: ids.into_iter().map(|id| edge_keys[id as usize]).collect(),
            })
            .collect(),
        steps: steps_run,
        rounds: total_rounds,
        max_ball_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_mis_graph::generators;
    use cc_mis_sim::bits::standard_bandwidth;
    use std::collections::{BTreeSet, VecDeque};

    fn engine_for(n: usize) -> CliqueEngine {
        CliqueEngine::strict(n.max(2), standard_bandwidth(n.max(2)))
    }

    fn as_set(ball: &Ball) -> BTreeSet<(u32, u32)> {
        ball.edges().collect()
    }

    /// Reference: edges within BFS distance `radius` of `s`.
    fn bfs_ball(g: &Graph, s: NodeId, radius: usize) -> BTreeSet<(u32, u32)> {
        let mut dist = vec![usize::MAX; g.node_count()];
        dist[s.index()] = 0;
        let mut q = VecDeque::from([s]);
        while let Some(v) = q.pop_front() {
            if dist[v.index()] >= radius {
                continue;
            }
            for &u in g.neighbors(v) {
                if dist[u.index()] == usize::MAX {
                    dist[u.index()] = dist[v.index()] + 1;
                    q.push_back(u);
                }
            }
        }
        // An edge is in the ball when it lies on a path within the radius:
        // min(dist(u), dist(v)) + 1 ≤ radius.
        g.edges()
            .filter(|&(u, v)| {
                let du = dist[u.index()];
                let dv = dist[v.index()];
                du.min(dv) < radius
            })
            .map(|(u, v)| (u.raw(), v.raw()))
            .collect()
    }

    #[test]
    fn edge_keys_pack_and_sort_like_pairs() {
        let pairs = [
            (0u32, 1u32),
            (0, 7),
            (1, 2),
            (3, 4),
            (u32::MAX - 1, u32::MAX),
        ];
        let mut keys: Vec<u64> = pairs.iter().map(|&(a, b)| pack_edge(a, b)).collect();
        for (k, &(a, b)) in keys.iter().zip(&pairs) {
            assert_eq!(unpack_edge(*k), (a, b));
        }
        let sorted = keys.clone();
        keys.sort_unstable();
        assert_eq!(
            keys, sorted,
            "key order must match lexicographic pair order"
        );
    }

    #[test]
    fn kway_union_merges_sorted_runs() {
        assert_eq!(kway_union(&[]), Vec::<u64>::new());
        assert_eq!(kway_union(&[&[1, 3, 5]]), vec![1, 3, 5]);
        assert_eq!(
            kway_union(&[&[1, 3, 5][..], &[2, 3, 4][..], &[5, 9][..], &[][..]]),
            vec![1, 2, 3, 4, 5, 9]
        );
    }

    #[test]
    fn balls_contain_bfs_balls() {
        // The gathered ball must contain every edge within the radius
        // (it may contain more — doubling overshoots to the next power of
        // two, exactly as in the paper).
        for (g, radius) in [
            (generators::cycle(16), 3),
            (generators::grid(4, 5), 2),
            (generators::erdos_renyi_gnp(40, 0.08, 1), 3),
            (generators::balanced_tree(2, 4), 4),
        ] {
            let n = g.node_count();
            let mut engine = engine_for(n);
            let res = gather_balls(&mut engine, &g, &vec![true; n], radius, 24);
            for v in g.nodes() {
                let expected = bfs_ball(&g, v, radius);
                assert!(
                    expected.is_subset(&as_set(&res.balls[v.index()])),
                    "node {v} radius {radius} missing edges"
                );
            }
        }
    }

    #[test]
    fn gathered_balls_are_exactly_power_of_two_bfs_balls() {
        // The doubling recursion gives exactly the radius-2^steps BFS ball
        // (edges whose closer endpoint is within 2^steps − 1). This pins
        // the epoch-marked union against the BFS reference set-for-set —
        // any over- or under-merge shows up here.
        for (g, radius) in [
            (generators::erdos_renyi_gnp(60, 0.06, 5), 4usize),
            (generators::grid(5, 6), 2),
            (generators::random_regular(48, 3, 9), 8),
        ] {
            let n = g.node_count();
            let mut engine = engine_for(n);
            let res = gather_balls(&mut engine, &g, &vec![true; n], radius, 24);
            let reach = 1usize << res.steps;
            for v in g.nodes() {
                assert_eq!(
                    as_set(&res.balls[v.index()]),
                    bfs_ball(&g, v, reach),
                    "node {v} radius {radius} (effective {reach})"
                );
            }
        }
    }

    #[test]
    fn marked_union_agrees_with_kway_reference() {
        // The gather's epoch-marked union and the k-way sorted merge are
        // two implementations of the same set union; cross-check them on
        // the raw key level with overlapping runs.
        let runs: Vec<Vec<u64>> = vec![
            (0..40).map(|i| pack_edge(i, i + 1)).collect(),
            (20..70).map(|i| pack_edge(i, i + 1)).collect(),
            vec![],
            (0..100).step_by(3).map(|i| pack_edge(i, i + 1)).collect(),
        ];
        let slices: Vec<&[u64]> = runs.iter().map(Vec::as_slice).collect();
        let merged = kway_union(&slices);
        let mut expected: Vec<u64> = runs.concat();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(merged, expected);
    }

    #[test]
    fn balls_do_not_exceed_doubled_radius() {
        let g = generators::path(20);
        let n = g.node_count();
        let mut engine = engine_for(n);
        // radius 3 → 2 steps → effective radius 4.
        let res = gather_balls(&mut engine, &g, &vec![true; n], 3, 24);
        assert_eq!(res.steps, 2);
        let ball0 = as_set(&res.balls[0]);
        let reach = bfs_ball(&g, NodeId::new(0), 4);
        assert!(ball0.is_subset(&reach), "ball exceeded doubled radius");
    }

    #[test]
    fn steps_are_logarithmic_in_radius() {
        let g = generators::cycle(64);
        for (radius, expected_steps) in [(1, 0), (2, 1), (3, 2), (4, 2), (8, 3), (9, 4)] {
            let mut engine = engine_for(64);
            let res = gather_balls(&mut engine, &g, &[true; 64], radius, 16);
            assert_eq!(res.steps, expected_steps, "radius {radius}");
        }
    }

    #[test]
    fn rounds_stay_constant_per_step_on_bounded_degree() {
        // Lemma 2.14's promise: O(1) rounds per doubling when balls are
        // small. A cycle has 2 edges per ball initially.
        let g = generators::cycle(128);
        let mut engine = engine_for(128);
        let res = gather_balls(&mut engine, &g, &[true; 128], 4, 16);
        assert!(
            res.rounds <= 8 * res.steps.max(1),
            "{} rounds over {} steps",
            res.rounds,
            res.steps
        );
    }

    #[test]
    fn non_participants_hold_nothing() {
        let g = generators::complete(6);
        let mut mask = vec![true; 6];
        mask[0] = false;
        // Edges incident to 0 are not in the gather graph from its side —
        // the caller promises this; emulate by filtering.
        let filtered = cc_mis_graph::ops::filter_vertices(&g, |v| v.raw() != 0);
        let mut engine = engine_for(6);
        let res = gather_balls(&mut engine, &filtered, &mask, 2, 16);
        assert!(res.balls[0].is_empty());
        assert!(res.balls[1].edges().all(|(a, b)| a != 0 && b != 0));
    }

    #[test]
    fn non_participant_endpoint_edges_are_dropped() {
        // Contract-violation tolerance: if the gather graph *does* contain
        // an edge with a non-participant endpoint, that edge must never
        // enter any ball (the initialization filters on both endpoints) and
        // the non-participant must hold nothing throughout.
        let g = generators::path(6); // 0-1-2-3-4-5
        let mut mask = vec![true; 6];
        mask[3] = false; // edges (2,3) and (3,4) have a non-participant end
        let mut engine = engine_for(6);
        let res = gather_balls(&mut engine, &g, &mask, 4, 16);
        assert!(res.balls[3].is_empty(), "non-participant gathered edges");
        for v in 0..6 {
            assert!(
                res.balls[v].edges().all(|(a, b)| a != 3 && b != 3),
                "node {v} learned an edge incident to the non-participant"
            );
        }
        // The participants on each side still learn their own side fully.
        assert!(res.balls[0].contains(0, 1));
        assert!(res.balls[0].contains(1, 2));
        assert!(res.balls[5].contains(4, 5));
    }

    #[test]
    fn saturation_stops_doubling_early() {
        // K4 has diameter 1: after one doubling step every ball holds all
        // 6 edges. The second step routes (and is charged) but grows
        // nothing, so the loop exits — steps 3 and 4 of the nominal
        // ⌈log₂ 16⌉ = 4 never run.
        let g = generators::complete(4);
        let mut engine = engine_for(4);
        let res = gather_balls(&mut engine, &g, &[true; 4], 16, 16);
        assert_eq!(res.steps, 2, "expected early exit after the no-growth step");
        let full = g.edge_count();
        assert!(res.balls.iter().all(|b| b.len() == full));
        assert_eq!(res.max_ball_edges, full);
        // The no-growth step's routing rounds are still charged.
        assert_eq!(engine.ledger().rounds, res.rounds);
        assert!(res.rounds > 0);
    }

    #[test]
    fn saturated_balls_equal_component_edge_sets() {
        // Two disjoint triangles: radius far beyond the diameter. Each
        // node's ball saturates at its own component's edge set — the
        // `len == full` skip only triggers when a ball holds *every* edge
        // of the gather graph, which never happens here, so the union path
        // still runs and must stabilize on the component.
        let g = generators::disjoint_cliques(2, 3);
        let n = g.node_count();
        let mut engine = engine_for(n);
        let res = gather_balls(&mut engine, &g, &vec![true; n], 8, 16);
        let (comp, _) = cc_mis_graph::ops::connected_components(&g);
        for v in 0..n {
            let expected: BTreeSet<(u32, u32)> = g
                .edges()
                .filter(|(u, _)| comp[u.index()] == comp[v])
                .map(|(u, w)| (u.raw(), w.raw()))
                .collect();
            assert_eq!(as_set(&res.balls[v]), expected, "node {v}");
        }
    }

    #[test]
    fn full_ball_skip_matches_plain_union() {
        // On a connected graph gathered past its diameter, every ball ends
        // at exactly the full edge set — the skip branch must not change
        // the result, only avoid redundant merging.
        let g = generators::grid(3, 3);
        let mut engine = engine_for(9);
        let res = gather_balls(&mut engine, &g, &[true; 9], 8, 16);
        let full: BTreeSet<(u32, u32)> = g.edges().map(|(u, v)| (u.raw(), v.raw())).collect();
        for v in 0..9 {
            assert_eq!(as_set(&res.balls[v]), full, "node {v}");
        }
    }

    #[test]
    fn radius_one_costs_no_rounds() {
        let g = generators::grid(3, 3);
        let mut engine = engine_for(9);
        let res = gather_balls(&mut engine, &g, &[true; 9], 1, 16);
        assert_eq!(res.rounds, 0);
        assert_eq!(engine.ledger().rounds, 0);
        // Radius-1 knowledge is the incident edges.
        assert_eq!(res.balls[0].len(), g.degree(NodeId::new(0)));
    }

    #[test]
    fn empty_graph_gathers_nothing() {
        let g = cc_mis_graph::Graph::empty(5);
        let mut engine = engine_for(5);
        let res = gather_balls(&mut engine, &g, &[true; 5], 4, 16);
        assert!(res.balls.iter().all(Ball::is_empty));
        assert_eq!(res.rounds, 0);
        assert_eq!(res.max_ball_edges, 0);
    }
}
