//! Graph exponentiation (Lemma 2.14): learning `r`-hop neighborhoods in
//! `O(log r)` congested-clique rounds.
//!
//! The doubling scheme of the paper's proof (re-proving [Lenzen &
//! Wattenhofer, PODC'10]): initially every node knows its incident edges
//! (radius-1 ball). In step `i`, every node ships its currently-known ball
//! to every node *inside* that ball; since the ball holds all nodes within
//! distance `2^i`, the union of received balls covers radius `2^{i+1}`.
//! After `⌈log₂ r⌉` steps each node knows its `r`-hop neighborhood. Each
//! step's packet exchange is delivered with Lenzen routing
//! ([`cc_mis_sim::routing`]), whose measured rounds are charged to the
//! engine — `O(1)` per step whenever the Lemma 2.14 capacity precondition
//! (ball size `≪ n^{δ}`) holds.
//!
//! Knowledge travels as *edge records*. A record's declared size
//! (`record_bits`) includes whatever decorations ride along — the caller
//! using decorated graphs `G*[S]` (§2.4) passes the decorated size, so the
//! bit accounting covers decorations even though the payload carries only
//! the edge (decorations being reconstructible from the shared randomness;
//! see DESIGN.md §2).

use std::collections::BTreeSet;
use std::rc::Rc;

use cc_mis_graph::{Graph, NodeId};
use cc_mis_sim::clique::CliqueEngine;
use cc_mis_sim::routing::{route, Packet};

/// Result of a [`gather_balls`] invocation.
#[derive(Debug, Clone)]
pub struct GatherResult {
    /// For each node: the set of known edges `(u, v)` with `u < v`
    /// (non-participants have empty balls).
    pub balls: Vec<BTreeSet<(u32, u32)>>,
    /// Doubling steps performed (`⌈log₂ radius⌉`).
    pub steps: u64,
    /// Clique rounds the routing consumed (also charged to the engine).
    pub rounds: u64,
    /// Largest ball, in edges, at the end.
    pub max_ball_edges: usize,
}

/// Gathers, for every `participant` node, all edges of `gather` within
/// distance `radius` of it.
///
/// `gather` must have the same vertex numbering as the engine; its edges
/// are the knowledge being learned (for §2.4 this is `G[S]`; for §2.5 it is
/// `G` itself). Only participants hold and exchange knowledge; edges with a
/// non-participant endpoint are assumed absent from `gather`.
///
/// # Panics
///
/// Panics if `radius == 0` or the mask length mismatches the graph.
///
/// # Example
///
/// ```
/// use cc_mis_core::exponentiation::gather_balls;
/// use cc_mis_sim::clique::CliqueEngine;
/// use cc_mis_graph::generators;
///
/// let g = generators::path(6);
/// let mut engine = CliqueEngine::strict(6, 64);
/// let res = gather_balls(&mut engine, &g, &vec![true; 6], 2, 20);
/// // Node 0 sees edges (0,1) and (1,2) — its 2-hop ball on a path.
/// assert!(res.balls[0].contains(&(0, 1)));
/// assert!(res.balls[0].contains(&(1, 2)));
/// assert!(!res.balls[0].contains(&(2, 3)));
/// ```
pub fn gather_balls(
    engine: &mut CliqueEngine,
    gather: &Graph,
    participant: &[bool],
    radius: usize,
    record_bits: u64,
) -> GatherResult {
    assert!(radius >= 1, "radius must be at least 1");
    assert_eq!(participant.len(), gather.node_count(), "participant mask mismatch");
    let n = gather.node_count();

    // Radius-1 initialization: incident edges.
    let mut balls: Vec<BTreeSet<(u32, u32)>> = vec![BTreeSet::new(); n];
    for (u, v) in gather.edges() {
        if participant[u.index()] && participant[v.index()] {
            balls[u.index()].insert((u.raw(), v.raw()));
            balls[v.index()].insert((u.raw(), v.raw()));
        }
    }

    let steps = if radius <= 1 { 0 } else { (radius as f64).log2().ceil() as u64 };
    let mut total_rounds = 0u64;
    let mut steps_run = 0u64;
    for _ in 0..steps {
        type BallPayload = Rc<Vec<(u32, u32)>>;
        let mut packets: Vec<Packet<BallPayload>> = Vec::new();
        for v in 0..n {
            if !participant[v] || balls[v].is_empty() {
                continue;
            }
            let payload = Rc::new(balls[v].iter().copied().collect::<Vec<_>>());
            let bits = payload.len() as u64 * record_bits;
            let mut targets: BTreeSet<u32> = BTreeSet::new();
            for &(a, b) in balls[v].iter() {
                targets.insert(a);
                targets.insert(b);
            }
            targets.remove(&(v as u32));
            for t in targets {
                packets.push(Packet {
                    src: NodeId::new(v as u32),
                    dst: NodeId::new(t),
                    bits,
                    payload: Rc::clone(&payload),
                });
            }
        }
        let (inboxes, outcome) = route(engine, packets).expect("gather packets are well-formed");
        total_rounds += outcome.rounds;
        steps_run += 1;
        let mut grew = false;
        // The engine may be larger than the gather graph (it is padded to
        // at least 2 nodes); ignore inboxes beyond the graph.
        let full = gather.edge_count();
        for (v, inbox) in inboxes.into_iter().enumerate().take(n) {
            let before = balls[v].len();
            for packet in inbox {
                // A ball holding every edge of the gather graph can learn
                // nothing more — skip the remaining unions (a large
                // wall-clock saving in the saturating step; the routing
                // rounds were already charged, so accounting is unchanged).
                if balls[v].len() == full {
                    break;
                }
                balls[v].extend(packet.payload.iter().copied());
            }
            grew |= balls[v].len() != before;
        }
        // Saturation: once no ball grew, further doubling steps are no-ops
        // (each node already knows its entire component) — skip them.
        if !grew {
            break;
        }
    }

    let max_ball_edges = balls.iter().map(BTreeSet::len).max().unwrap_or(0);
    GatherResult {
        balls,
        steps: steps_run,
        rounds: total_rounds,
        max_ball_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_mis_graph::generators;
    use cc_mis_sim::bits::standard_bandwidth;
    use std::collections::VecDeque;

    fn engine_for(n: usize) -> CliqueEngine {
        CliqueEngine::strict(n.max(2), standard_bandwidth(n.max(2)))
    }

    /// Reference: edges within BFS distance `radius` of `s`.
    fn bfs_ball(g: &Graph, s: NodeId, radius: usize) -> BTreeSet<(u32, u32)> {
        let mut dist = vec![usize::MAX; g.node_count()];
        dist[s.index()] = 0;
        let mut q = VecDeque::from([s]);
        while let Some(v) = q.pop_front() {
            if dist[v.index()] >= radius {
                continue;
            }
            for &u in g.neighbors(v) {
                if dist[u.index()] == usize::MAX {
                    dist[u.index()] = dist[v.index()] + 1;
                    q.push_back(u);
                }
            }
        }
        // An edge is in the ball when it lies on a path within the radius:
        // min(dist(u), dist(v)) + 1 ≤ radius.
        g.edges()
            .filter(|&(u, v)| {
                let du = dist[u.index()];
                let dv = dist[v.index()];
                du.min(dv) < radius
            })
            .map(|(u, v)| (u.raw(), v.raw()))
            .collect()
    }

    #[test]
    fn balls_contain_bfs_balls() {
        // The gathered ball must contain every edge within the radius
        // (it may contain more — doubling overshoots to the next power of
        // two, exactly as in the paper).
        for (g, radius) in [
            (generators::cycle(16), 3),
            (generators::grid(4, 5), 2),
            (generators::erdos_renyi_gnp(40, 0.08, 1), 3),
            (generators::balanced_tree(2, 4), 4),
        ] {
            let n = g.node_count();
            let mut engine = engine_for(n);
            let res = gather_balls(&mut engine, &g, &vec![true; n], radius, 24);
            for v in g.nodes() {
                let expected = bfs_ball(&g, v, radius);
                assert!(
                    expected.is_subset(&res.balls[v.index()]),
                    "node {v} radius {radius} missing edges"
                );
            }
        }
    }

    #[test]
    fn balls_do_not_exceed_doubled_radius() {
        let g = generators::path(20);
        let n = g.node_count();
        let mut engine = engine_for(n);
        // radius 3 → 2 steps → effective radius 4.
        let res = gather_balls(&mut engine, &g, &vec![true; n], 3, 24);
        assert_eq!(res.steps, 2);
        let ball0 = &res.balls[0];
        let reach = bfs_ball(&g, NodeId::new(0), 4);
        assert!(ball0.is_subset(&reach), "ball exceeded doubled radius");
    }

    #[test]
    fn steps_are_logarithmic_in_radius() {
        let g = generators::cycle(64);
        for (radius, expected_steps) in [(1, 0), (2, 1), (3, 2), (4, 2), (8, 3), (9, 4)] {
            let mut engine = engine_for(64);
            let res = gather_balls(&mut engine, &g, &[true; 64], radius, 16);
            assert_eq!(res.steps, expected_steps, "radius {radius}");
        }
    }

    #[test]
    fn rounds_stay_constant_per_step_on_bounded_degree() {
        // Lemma 2.14's promise: O(1) rounds per doubling when balls are
        // small. A cycle has 2 edges per ball initially.
        let g = generators::cycle(128);
        let mut engine = engine_for(128);
        let res = gather_balls(&mut engine, &g, &[true; 128], 4, 16);
        assert!(
            res.rounds <= 8 * res.steps.max(1),
            "{} rounds over {} steps",
            res.rounds,
            res.steps
        );
    }

    #[test]
    fn non_participants_hold_nothing() {
        let g = generators::complete(6);
        let mut mask = vec![true; 6];
        mask[0] = false;
        // Edges incident to 0 are not in the gather graph from its side —
        // the caller promises this; emulate by filtering.
        let filtered = cc_mis_graph::ops::filter_vertices(&g, |v| v.raw() != 0);
        let mut engine = engine_for(6);
        let res = gather_balls(&mut engine, &filtered, &mask, 2, 16);
        assert!(res.balls[0].is_empty());
        assert!(res.balls[1].iter().all(|&(a, b)| a != 0 && b != 0));
    }

    #[test]
    fn radius_one_costs_no_rounds() {
        let g = generators::grid(3, 3);
        let mut engine = engine_for(9);
        let res = gather_balls(&mut engine, &g, &[true; 9], 1, 16);
        assert_eq!(res.rounds, 0);
        assert_eq!(engine.ledger().rounds, 0);
        // Radius-1 knowledge is the incident edges.
        assert_eq!(res.balls[0].len(), g.degree(NodeId::new(0)));
    }

    #[test]
    fn empty_graph_gathers_nothing() {
        let g = cc_mis_graph::Graph::empty(5);
        let mut engine = engine_for(5);
        let res = gather_balls(&mut engine, &g, &[true; 5], 4, 16);
        assert!(res.balls.iter().all(BTreeSet::is_empty));
        assert_eq!(res.rounds, 0);
        assert_eq!(res.max_ball_edges, 0);
    }
}
