//! Luby's randomized MIS (the classic `O(log n)` baseline).
//!
//! The random-priority variant of [Luby, STOC'85] / [Alon–Babai–Itai, 1986]:
//! per iteration every undecided node draws a fresh uniform priority and
//! sends it to its neighbors; a node whose priority is a strict local
//! minimum joins the MIS; MIS nodes and their neighbors leave the problem.
//! Terminates in `O(log n)` iterations w.h.p.
//!
//! This is the `O(log n)`-round CONGEST algorithm the paper's §1.1 cites as
//! the pre-existing upper bound in all three models — the baseline every
//! improvement is measured against in our experiments.

use cc_mis_graph::{Graph, NodeId};
use cc_mis_sim::bits::standard_bandwidth;
use cc_mis_sim::congest::CongestEngine;
use cc_mis_sim::driver::{drive_observed, Execution, Status};
use cc_mis_sim::rng::{SharedRandomness, Stream, StreamCursor};
use cc_mis_sim::snapshot::{graph_fingerprint, SnapshotError, SnapshotReader, SnapshotWriter};
use cc_mis_sim::SharedObserver;

use crate::common::{check_node_vec_len, mis_from_flags, MisOutcome};
use crate::rounds;

/// Parameters for [`run_luby`].
#[derive(Debug, Clone, Copy)]
pub struct LubyParams {
    /// Hard iteration cap. Luby terminates in `O(log n)` iterations w.h.p.;
    /// the cap only guards against pathological seeds. The default (via
    /// [`LubyParams::for_graph`]) is `8 (log₂ n + 2)`.
    pub max_iterations: u64,
    /// Encoded bits of a priority message (the priority plus a joined bit).
    pub priority_bits: u64,
}

impl LubyParams {
    /// Sensible defaults for `g`.
    pub fn for_graph(g: &Graph) -> Self {
        let n = g.node_count().max(2) as f64;
        LubyParams {
            max_iterations: (8.0 * (n.log2() + 2.0)).ceil() as u64,
            priority_bits: 32,
        }
    }
}

/// Runs Luby's algorithm in the CONGEST model.
///
/// The returned ledger counts 2 rounds per iteration (priority exchange,
/// join announcement), with per-edge messages of `priority_bits` and 1 bit
/// respectively.
///
/// # Panics
///
/// Panics if the iteration cap is hit before every node decides — with the
/// default cap this is a probability `≪ 1/n^c` event and indicates a bug
/// rather than bad luck.
///
/// # Example
///
/// ```
/// use cc_mis_core::luby::{run_luby, LubyParams};
/// use cc_mis_graph::{checks, generators};
///
/// let g = generators::erdos_renyi_gnp(120, 0.08, 5);
/// let out = run_luby(&g, &LubyParams::for_graph(&g), 11);
/// assert!(checks::is_maximal_independent_set(&g, &out.mis));
/// ```
pub fn run_luby(g: &Graph, params: &LubyParams, seed: u64) -> MisOutcome {
    run_luby_observed(g, params, seed, None)
}

/// [`run_luby`] with an optional per-round trace observer attached to the
/// engine. `None` is exactly the unobserved run.
pub fn run_luby_observed(
    g: &Graph,
    params: &LubyParams,
    seed: u64,
    observer: Option<SharedObserver>,
) -> MisOutcome {
    drive_observed(LubyExecution::new(g, params, seed), observer)
}

/// Luby's algorithm as a step-driven state machine: one [`Execution::step`]
/// is one iteration (priority round + join round).
#[derive(Debug)]
pub struct LubyExecution<'a> {
    g: &'a Graph,
    /// Graph fingerprint, computed once at construction so per-checkpoint
    /// `save` calls skip the O(m) edge walk.
    graph_fp: u64,
    params: LubyParams,
    seed: u64,
    engine: CongestEngine<'a>,
    /// Priority stream cursor; its position doubles as the iteration count.
    cursor: StreamCursor,
    alive: Vec<bool>,
    in_mis: Vec<bool>,
    undecided: usize,
}

impl<'a> LubyExecution<'a> {
    /// Prepares a run on `g`; no rounds execute until the first step.
    pub fn new(g: &'a Graph, params: &LubyParams, seed: u64) -> Self {
        let n = g.node_count();
        LubyExecution {
            g,
            graph_fp: graph_fingerprint(g),
            params: *params,
            seed,
            engine: CongestEngine::strict(g, standard_bandwidth(n)),
            cursor: StreamCursor::new(SharedRandomness::new(seed), Stream::Priority),
            alive: vec![true; n],
            in_mis: vec![false; n],
            undecided: n,
        }
    }
}

impl Execution for LubyExecution<'_> {
    type Outcome = MisOutcome;

    fn algorithm_id(&self) -> &'static str {
        "luby"
    }

    fn attach_observer(&mut self, observer: SharedObserver) {
        self.engine.attach_observer(observer);
    }

    fn step(&mut self) -> Status<MisOutcome> {
        if self.undecided == 0 {
            return Status::Done(MisOutcome {
                mis: mis_from_flags(self.g, &self.in_mis),
                ledger: self.engine.ledger().clone(),
                iterations: self.cursor.position(),
            });
        }
        assert!(
            self.cursor.position() < self.params.max_iterations,
            "Luby failed to terminate within {} iterations",
            self.params.max_iterations
        );
        let g = self.g;
        let n = g.node_count();

        // Round 1: undecided nodes exchange priorities with undecided
        // neighbors.
        let priorities: Vec<u64> = (0..n)
            .map(|v| self.cursor.bits(NodeId::new(v as u32)))
            .collect();
        let alive = &self.alive;
        let priority_bits = self.params.priority_bits;
        let mut round = self.engine.begin_round::<u64>();
        rounds::broadcast_to_alive_neighbors(
            &mut round,
            g,
            alive,
            |v| {
                let i = v.index();
                alive[i].then(|| (priority_bits, priorities[i]))
            },
            "priority message fits the bandwidth",
        );
        let inboxes = round.deliver();

        // Local rule: strict local minimum joins. Ties are broken by id
        // (priorities are 64-bit so ties are effectively impossible, but the
        // rule must still be total).
        let mut joined = vec![false; n];
        for v in g.nodes() {
            if !alive[v.index()] {
                continue;
            }
            let my = (priorities[v.index()], v.raw());
            let is_min = inboxes[v.index()].iter().all(|&(u, pr)| my < (pr, u.raw()));
            if is_min {
                joined[v.index()] = true;
            }
        }

        // Round 2: joiners announce; joiners and their neighbors leave.
        let mut round = self.engine.begin_round::<()>();
        rounds::broadcast_to_alive_neighbors(
            &mut round,
            g,
            alive,
            |v| joined[v.index()].then_some((1, ())),
            "join bit fits",
        );
        let inboxes = round.deliver();
        for v in g.nodes() {
            if !self.alive[v.index()] {
                continue;
            }
            if joined[v.index()] {
                self.in_mis[v.index()] = true;
                self.alive[v.index()] = false;
                self.undecided -= 1;
            } else if !inboxes[v.index()].is_empty() {
                self.alive[v.index()] = false;
                self.undecided -= 1;
            }
        }
        self.cursor.advance();
        Status::Running
    }

    fn save(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.graph_fp);
        w.write_u64(self.seed);
        w.write_u64(self.params.max_iterations);
        w.write_u64(self.params.priority_bits);
        w.write_ledger(self.engine.ledger());
        w.write_u64(self.cursor.position());
        w.write_vec_bool(&self.alive);
        w.write_vec_bool(&self.in_mis);
        w.write_usize(self.undecided);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.expect_u64("graph fingerprint", self.graph_fp)?;
        r.expect_u64("seed", self.seed)?;
        r.expect_u64("max_iterations", self.params.max_iterations)?;
        r.expect_u64("priority_bits", self.params.priority_bits)?;
        *self.engine.ledger_mut() = r.read_ledger()?;
        self.cursor.seek(r.read_u64()?);
        self.alive = r.read_vec_bool()?;
        self.in_mis = r.read_vec_bool()?;
        self.undecided = r.read_usize()?;
        let n = self.g.node_count();
        check_node_vec_len("alive vector length", self.alive.len(), n)?;
        check_node_vec_len("in_mis vector length", self.in_mis.len(), n)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_mis_graph::{checks, generators, Graph};

    #[test]
    fn luby_is_mis_on_families() {
        let graphs = vec![
            generators::cycle(15),
            generators::complete(8),
            generators::star(12),
            generators::grid(5, 5),
            generators::erdos_renyi_gnp(100, 0.08, 2),
            generators::disjoint_cliques(5, 4),
            generators::barabasi_albert(80, 3, 9),
            Graph::empty(6),
        ];
        for g in &graphs {
            for seed in 0..3 {
                let out = run_luby(g, &LubyParams::for_graph(g), seed);
                assert!(
                    checks::is_maximal_independent_set(g, &out.mis),
                    "{g:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn luby_rounds_are_twice_iterations() {
        let g = generators::erdos_renyi_gnp(60, 0.1, 4);
        let out = run_luby(&g, &LubyParams::for_graph(&g), 0);
        assert_eq!(out.ledger.rounds, 2 * out.iterations);
    }

    #[test]
    fn luby_iteration_count_is_logarithmic() {
        let g = generators::erdos_renyi_gnp(400, 0.05, 8);
        let out = run_luby(&g, &LubyParams::for_graph(&g), 1);
        // log2(400) ≈ 8.6; allow a generous constant.
        assert!(out.iterations <= 40, "took {} iterations", out.iterations);
    }

    #[test]
    fn luby_is_deterministic_per_seed() {
        let g = generators::erdos_renyi_gnp(70, 0.1, 6);
        let a = run_luby(&g, &LubyParams::for_graph(&g), 42);
        let b = run_luby(&g, &LubyParams::for_graph(&g), 42);
        assert_eq!(a.mis, b.mis);
        assert_eq!(a.ledger.rounds, b.ledger.rounds);
    }

    #[test]
    fn empty_graph_takes_everything_in_one_iteration() {
        let g = Graph::empty(10);
        let out = run_luby(&g, &LubyParams::for_graph(&g), 3);
        assert_eq!(out.mis.len(), 10);
        assert_eq!(out.iterations, 1);
    }
}
