//! Luby's randomized MIS (the classic `O(log n)` baseline).
//!
//! The random-priority variant of [Luby, STOC'85] / [Alon–Babai–Itai, 1986]:
//! per iteration every undecided node draws a fresh uniform priority and
//! sends it to its neighbors; a node whose priority is a strict local
//! minimum joins the MIS; MIS nodes and their neighbors leave the problem.
//! Terminates in `O(log n)` iterations w.h.p.
//!
//! This is the `O(log n)`-round CONGEST algorithm the paper's §1.1 cites as
//! the pre-existing upper bound in all three models — the baseline every
//! improvement is measured against in our experiments.

use cc_mis_graph::{Graph, NodeId};
use cc_mis_sim::bits::standard_bandwidth;
use cc_mis_sim::congest::CongestEngine;
use cc_mis_sim::rng::{SharedRandomness, Stream};
use cc_mis_sim::SharedObserver;

use crate::common::MisOutcome;
use crate::rounds;

/// Parameters for [`run_luby`].
#[derive(Debug, Clone, Copy)]
pub struct LubyParams {
    /// Hard iteration cap. Luby terminates in `O(log n)` iterations w.h.p.;
    /// the cap only guards against pathological seeds. The default (via
    /// [`LubyParams::for_graph`]) is `8 (log₂ n + 2)`.
    pub max_iterations: u64,
    /// Encoded bits of a priority message (the priority plus a joined bit).
    pub priority_bits: u64,
}

impl LubyParams {
    /// Sensible defaults for `g`.
    pub fn for_graph(g: &Graph) -> Self {
        let n = g.node_count().max(2) as f64;
        LubyParams {
            max_iterations: (8.0 * (n.log2() + 2.0)).ceil() as u64,
            priority_bits: 32,
        }
    }
}

/// Runs Luby's algorithm in the CONGEST model.
///
/// The returned ledger counts 2 rounds per iteration (priority exchange,
/// join announcement), with per-edge messages of `priority_bits` and 1 bit
/// respectively.
///
/// # Panics
///
/// Panics if the iteration cap is hit before every node decides — with the
/// default cap this is a probability `≪ 1/n^c` event and indicates a bug
/// rather than bad luck.
///
/// # Example
///
/// ```
/// use cc_mis_core::luby::{run_luby, LubyParams};
/// use cc_mis_graph::{checks, generators};
///
/// let g = generators::erdos_renyi_gnp(120, 0.08, 5);
/// let out = run_luby(&g, &LubyParams::for_graph(&g), 11);
/// assert!(checks::is_maximal_independent_set(&g, &out.mis));
/// ```
pub fn run_luby(g: &Graph, params: &LubyParams, seed: u64) -> MisOutcome {
    run_luby_observed(g, params, seed, None)
}

/// [`run_luby`] with an optional per-round trace observer attached to the
/// engine. `None` is exactly the unobserved run.
pub fn run_luby_observed(
    g: &Graph,
    params: &LubyParams,
    seed: u64,
    observer: Option<SharedObserver>,
) -> MisOutcome {
    let n = g.node_count();
    let rng = SharedRandomness::new(seed);
    let mut engine = CongestEngine::strict(g, standard_bandwidth(n));
    if let Some(observer) = observer {
        engine.attach_observer(observer);
    }
    let mut alive = vec![true; n];
    let mut in_mis = vec![false; n];
    let mut undecided = n;
    let mut iterations = 0u64;

    while undecided > 0 {
        assert!(
            iterations < params.max_iterations,
            "Luby failed to terminate within {} iterations",
            params.max_iterations
        );
        // Round 1: undecided nodes exchange priorities with undecided
        // neighbors.
        let mut round = engine.begin_round::<u64>();
        let priorities: Vec<u64> = (0..n)
            .map(|v| rng.bits(Stream::Priority, NodeId::new(v as u32), iterations))
            .collect();
        rounds::broadcast_to_alive_neighbors(
            &mut round,
            g,
            &alive,
            |v| {
                let i = v.index();
                alive[i].then(|| (params.priority_bits, priorities[i]))
            },
            "priority message fits the bandwidth",
        );
        let inboxes = round.deliver();

        // Local rule: strict local minimum joins. Ties are broken by id
        // (priorities are 64-bit so ties are effectively impossible, but the
        // rule must still be total).
        let mut joined = vec![false; n];
        for v in g.nodes() {
            if !alive[v.index()] {
                continue;
            }
            let my = (priorities[v.index()], v.raw());
            let is_min = inboxes[v.index()].iter().all(|&(u, pr)| my < (pr, u.raw()));
            if is_min {
                joined[v.index()] = true;
            }
        }

        // Round 2: joiners announce; joiners and their neighbors leave.
        let mut round = engine.begin_round::<()>();
        rounds::broadcast_to_alive_neighbors(
            &mut round,
            g,
            &alive,
            |v| joined[v.index()].then_some((1, ())),
            "join bit fits",
        );
        let inboxes = round.deliver();
        for v in g.nodes() {
            if !alive[v.index()] {
                continue;
            }
            if joined[v.index()] {
                in_mis[v.index()] = true;
                alive[v.index()] = false;
                undecided -= 1;
            } else if !inboxes[v.index()].is_empty() {
                alive[v.index()] = false;
                undecided -= 1;
            }
        }
        iterations += 1;
    }

    let mis: Vec<NodeId> = g.nodes().filter(|v| in_mis[v.index()]).collect();
    MisOutcome {
        mis,
        ledger: engine.into_ledger(),
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_mis_graph::{checks, generators, Graph};

    #[test]
    fn luby_is_mis_on_families() {
        let graphs = vec![
            generators::cycle(15),
            generators::complete(8),
            generators::star(12),
            generators::grid(5, 5),
            generators::erdos_renyi_gnp(100, 0.08, 2),
            generators::disjoint_cliques(5, 4),
            generators::barabasi_albert(80, 3, 9),
            Graph::empty(6),
        ];
        for g in &graphs {
            for seed in 0..3 {
                let out = run_luby(g, &LubyParams::for_graph(g), seed);
                assert!(
                    checks::is_maximal_independent_set(g, &out.mis),
                    "{g:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn luby_rounds_are_twice_iterations() {
        let g = generators::erdos_renyi_gnp(60, 0.1, 4);
        let out = run_luby(&g, &LubyParams::for_graph(&g), 0);
        assert_eq!(out.ledger.rounds, 2 * out.iterations);
    }

    #[test]
    fn luby_iteration_count_is_logarithmic() {
        let g = generators::erdos_renyi_gnp(400, 0.05, 8);
        let out = run_luby(&g, &LubyParams::for_graph(&g), 1);
        // log2(400) ≈ 8.6; allow a generous constant.
        assert!(out.iterations <= 40, "took {} iterations", out.iterations);
    }

    #[test]
    fn luby_is_deterministic_per_seed() {
        let g = generators::erdos_renyi_gnp(70, 0.1, 6);
        let a = run_luby(&g, &LubyParams::for_graph(&g), 42);
        let b = run_luby(&g, &LubyParams::for_graph(&g), 42);
        assert_eq!(a.mis, b.mis);
        assert_eq!(a.ledger.rounds, b.ledger.rounds);
    }

    #[test]
    fn empty_graph_takes_everything_in_one_iteration() {
        let g = Graph::empty(10);
        let out = run_luby(&g, &LubyParams::for_graph(&g), 3);
        assert_eq!(out.mis.len(), 10);
        assert_eq!(out.iterations, 1);
    }
}
