//! The algorithms of *"Distributed MIS via All-to-All Communication"*
//! (Ghaffari, PODC 2017), plus the baselines it builds on and the standard
//! reductions it cites.
//!
//! The paper constructs its `Õ(√(log Δ))`-round congested-clique MIS
//! algorithm through a chain of intermediate algorithms, each of which is
//! implemented here as a standalone, runnable, instrumented artifact:
//!
//! | Module | Paper section | Model |
//! |---|---|---|
//! | [`greedy`] | (folklore; leader subroutine) | sequential |
//! | [`luby`] | §1.1 baseline [Luby'86; ABI'86] | CONGEST |
//! | [`ghaffari16`] | §2.1 recap of [Ghaffari, SODA'16] | CONGEST |
//! | [`beeping_mis`] | §2.2 intermediate algorithm (1) | beeping |
//! | [`sparsified`] | §2.3 intermediate algorithm (2) | beeping + 1 exchange |
//! | [`exponentiation`] | Lemma 2.14 | congested clique |
//! | [`clique_mis`] | §2.4, **Theorem 1.1** | congested clique |
//! | [`lowdeg`] | §2.5, Lemma 2.15 | congested clique |
//! | [`reductions`] | §1.1 "standard reductions `[28]`" | any |
//! | [`ruling_set`] | §1.1 related work | congested clique |
//! | [`lca`] | §1.2 local-computation connection | centralized queries |
//!
//! All randomized algorithms draw coins from
//! [`cc_mis_sim::SharedRandomness`], so a fixed `(seed, parameters, graph)`
//! triple determines the execution bit-for-bit. The congested-clique
//! simulation in [`clique_mis`] reproduces the direct execution of
//! [`sparsified`] **exactly** under a shared seed — that equivalence is the
//! correctness core of §2.4 and is enforced by integration tests.
//!
//! # Example
//!
//! ```
//! use cc_mis_core::clique_mis::{run_clique_mis, CliqueMisParams};
//! use cc_mis_graph::{checks, generators};
//!
//! let g = generators::erdos_renyi_gnp(200, 0.1, 1);
//! let out = run_clique_mis(&g, &CliqueMisParams::default(), 7);
//! assert!(checks::is_maximal_independent_set(&g, &out.mis));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beeping_mis;
pub mod cleanup;
pub mod clique_mis;
pub mod common;
pub mod exponentiation;
pub mod ghaffari16;
pub mod greedy;
pub mod lca;
pub mod lowdeg;
pub mod luby;
pub mod reductions;
pub(crate) mod rounds;
pub mod ruling_set;
pub mod sparsified;

pub use common::MisOutcome;
