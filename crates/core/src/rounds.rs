//! Shared round-loop helpers for the algorithm runners.
//!
//! Every message-passing algorithm in this crate repeats the same send
//! pattern: iterate the nodes in ascending id order, ask whether the node
//! sends this round, and deliver the message to every *alive* neighbor
//! (again in ascending order — the engines' budget fast path and the
//! deterministic-replay contract both rely on this order). This module
//! factors that pattern out so the iteration order is written exactly once.

use cc_mis_graph::{Graph, NodeId};
use cc_mis_sim::runtime::{Round, Transport};

/// Broadcasts per-node messages to alive neighbors over an open round.
///
/// For each node `v` of `g` in ascending id order, `message_of(v)` decides
/// whether `v` sends this round and, if so, returns the declared bit size
/// and the message; the message is then sent to every neighbor `u` of `v`
/// (ascending) with `alive[u] == true`. `expect_msg` names the invariant a
/// failed send would violate (all callers send well within the bandwidth,
/// so a failure is a bug, not an input condition).
///
/// The transport is generic: the same helper drives CONGEST rounds (where
/// neighbor sends are the only admissible links) and congested-clique
/// rounds that choose to communicate along graph edges.
pub(crate) fn broadcast_to_alive_neighbors<T: Transport, M: Clone + Send + 'static>(
    round: &mut Round<'_, T, M>,
    g: &Graph,
    alive: &[bool],
    mut message_of: impl FnMut(NodeId) -> Option<(u64, M)>,
    expect_msg: &str,
) {
    for v in g.nodes() {
        if let Some((bits, msg)) = message_of(v) {
            for &u in g.neighbors(v) {
                if alive[u.index()] {
                    round.send(v, u, bits, msg.clone()).expect(expect_msg);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_mis_graph::generators;
    use cc_mis_sim::bits::standard_bandwidth;
    use cc_mis_sim::congest::CongestEngine;

    #[test]
    fn helper_matches_manual_loop_exactly() {
        let g = generators::erdos_renyi_gnp(30, 0.2, 3);
        let n = g.node_count();
        let alive: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();

        let mut manual = CongestEngine::strict(&g, standard_bandwidth(n));
        let mut round = manual.begin_round::<u32>();
        for v in g.nodes() {
            if !alive[v.index()] {
                continue;
            }
            for &u in g.neighbors(v) {
                if alive[u.index()] {
                    round
                        .send(v, u, 7, v.raw())
                        .expect("message fits the bandwidth");
                }
            }
        }
        let manual_inboxes = round.deliver();

        let mut helped = CongestEngine::strict(&g, standard_bandwidth(n));
        let mut round = helped.begin_round::<u32>();
        broadcast_to_alive_neighbors(
            &mut round,
            &g,
            &alive,
            |v| alive[v.index()].then(|| (7, v.raw())),
            "message fits the bandwidth",
        );
        let helped_inboxes = round.deliver();

        assert_eq!(manual_inboxes, helped_inboxes);
        assert_eq!(manual.ledger().messages, helped.ledger().messages);
        assert_eq!(manual.ledger().bits, helped.ledger().bits);
    }

    #[test]
    fn non_senders_and_dead_receivers_are_skipped() {
        let g = generators::star(4); // center 0, leaves 1..3
        let alive = vec![true, true, false, true];
        let mut engine = CongestEngine::strict(&g, standard_bandwidth(4));
        let mut round = engine.begin_round::<()>();
        // Only the center sends.
        broadcast_to_alive_neighbors(
            &mut round,
            &g,
            &alive,
            |v| (v.index() == 0).then_some((1, ())),
            "message fits the bandwidth",
        );
        let inboxes = round.deliver();
        assert_eq!(inboxes[1].len(), 1);
        assert!(inboxes[2].is_empty(), "dead receiver must get nothing");
        assert_eq!(inboxes[3].len(), 1);
        assert_eq!(engine.ledger().messages, 2);
    }
}
