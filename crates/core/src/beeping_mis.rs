//! The beeping MIS algorithm (§2.2, "Intermediate Algorithm (1)").
//!
//! Iterations of two rounds on the full-duplex beeping model:
//!
//! * **R1** — node `v` beeps with probability `p_t(v)` (initially `1/2`).
//!   If `v` beeps and hears no neighbor, it joins the MIS. Then
//!   `p_{t+1}(v) = p_t(v)/2` if some neighbor beeped, else
//!   `min{2 p_t(v), 1/2}`.
//! * **R2** — MIS nodes beep; hearers learn they are dominated. MIS nodes
//!   and their neighbors leave the problem.
//!
//! The paper's contribution for this algorithm is the **analysis**
//! (Theorem 2.1): each node `v` decides within
//! `T = C(log deg(v) + log 1/ε)` iterations w.p. `≥ 1-ε`, depending only on
//! randomness within `v`'s 2-hop neighborhood. The proof counts *golden
//! rounds* (Lemma 2.3) and bounds *wrong moves* (Lemmas 2.4, 2.5); this
//! module instruments all three quantities per node, so experiments E3/E4
//! can chart them against the paper's constants (≥ `0.05 T` golden rounds,
//! wrong-move probability ≤ `0.02` per round).

use cc_mis_graph::{Graph, NodeId};
use cc_mis_sim::beeping::BeepingEngine;
use cc_mis_sim::driver::{drive_observed, Execution, Status};
use cc_mis_sim::par_nodes::par_map_nodes;
use cc_mis_sim::rng::{SharedRandomness, Stream, StreamCursor};
use cc_mis_sim::snapshot::{graph_fingerprint, SnapshotError, SnapshotReader, SnapshotWriter};
use cc_mis_sim::{RoundLedger, SharedObserver};

use crate::common::{check_node_vec_len, double_capped, halve, p_of, MisOutcome, INITIAL_PEXP};

/// Heaviness threshold from §2.2: a node is *heavy* in round `t` when
/// `d_t(v) > 10`.
pub const HEAVY_THRESHOLD: f64 = 10.0;
/// Golden type-1 requires `d_t(v) ≤ 0.02`.
pub const GOLDEN1_D_MAX: f64 = 0.02;
/// Golden type-2 requires `d_t(v) > 0.01` and `d'_t(v) ≥ 0.01 d_t(v)`.
pub const GOLDEN2_D_MIN: f64 = 0.01;
/// Wrong-move clause (2) triggers when `d_{t+1}(v) > 0.6 d_t(v)`.
pub const WRONG_MOVE_SHRINK: f64 = 0.6;

/// Parameters for [`run_beeping`].
#[derive(Debug, Clone, Copy)]
pub struct BeepingParams {
    /// Iteration budget. [`run_beeping`] returns the partial result when the
    /// budget ends; [`run_beeping_to_completion`] demands every node decide.
    pub max_iterations: u64,
    /// Whether to record the per-node golden/wrong-move trace (small cost;
    /// on by default).
    pub record_trace: bool,
}

impl BeepingParams {
    /// Defaults: budget `16 (log₂ n + 2)` with tracing on.
    pub fn for_graph(g: &Graph) -> Self {
        let n = g.node_count().max(2) as f64;
        BeepingParams {
            max_iterations: (16.0 * (n.log2() + 2.0)).ceil() as u64,
            record_trace: true,
        }
    }
}

/// Per-node analysis counters accumulated while the node was undecided
/// (empty when tracing was off).
#[derive(Debug, Clone, Default)]
pub struct BeepingTrace {
    /// Golden type-1 rounds per node (`p_t(v) = 1/2` and `d_t(v) ≤ 0.02`).
    pub golden1: Vec<u64>,
    /// Golden type-2 rounds per node (`d_t(v) > 0.01`, `d'_t ≥ 0.01 d_t`).
    pub golden2: Vec<u64>,
    /// Wrong moves per node (Lemmas 2.4/2.5 events).
    pub wrong_moves: Vec<u64>,
    /// Iterations each node spent undecided (its `T` in Theorem 2.1 terms).
    pub undecided_iterations: Vec<u64>,
}

/// Result of a (possibly partial) beeping MIS run.
#[derive(Debug, Clone)]
pub struct BeepingRun {
    /// Nodes that joined the MIS within the budget, sorted by id.
    pub mis: Vec<NodeId>,
    /// Undecided nodes at the end of the budget, sorted by id.
    pub residual: Vec<NodeId>,
    /// Iteration at which each node joined the MIS, if it did.
    pub joined_at: Vec<Option<u64>>,
    /// Iteration at which each node left the problem, if it did.
    pub removed_at: Vec<Option<u64>>,
    /// Beeping-model round/bit tally (2 rounds per iteration).
    pub ledger: RoundLedger,
    /// Iterations executed.
    pub iterations: u64,
    /// Analysis counters (Theorem 2.1 bookkeeping).
    pub trace: BeepingTrace,
}

/// Runs the beeping MIS for at most `params.max_iterations` iterations.
///
/// # Example
///
/// ```
/// use cc_mis_core::beeping_mis::{run_beeping, BeepingParams};
/// use cc_mis_graph::{checks, generators};
///
/// let g = generators::cycle(20);
/// let run = run_beeping(&g, &BeepingParams::for_graph(&g), 3);
/// assert!(run.residual.is_empty());
/// assert!(checks::is_maximal_independent_set(&g, &run.mis));
/// ```
pub fn run_beeping(g: &Graph, params: &BeepingParams, seed: u64) -> BeepingRun {
    run_beeping_observed(g, params, seed, None)
}

/// [`run_beeping`] with an optional per-round trace observer attached to
/// the engine. `None` is exactly the unobserved run.
pub fn run_beeping_observed(
    g: &Graph,
    params: &BeepingParams,
    seed: u64,
    observer: Option<SharedObserver>,
) -> BeepingRun {
    drive_observed(BeepingExecution::new(g, params, seed), observer)
}

/// The §2.2 beeping MIS as a step-driven state machine: one
/// [`Execution::step`] is one iteration (beep round + MIS-announcement
/// round), including the Theorem 2.1 trace bookkeeping.
#[derive(Debug)]
pub struct BeepingExecution<'a> {
    g: &'a Graph,
    /// Graph fingerprint, computed once at construction so per-checkpoint
    /// `save` calls skip the O(m) edge walk.
    graph_fp: u64,
    params: BeepingParams,
    seed: u64,
    engine: BeepingEngine<'a>,
    /// Beep-coin cursor; its position doubles as the iteration count `t`.
    cursor: StreamCursor,
    pexp: Vec<u32>,
    joined_at: Vec<Option<u64>>,
    removed_at: Vec<Option<u64>>,
    undecided: usize,
    trace: BeepingTrace,
    /// Wrong-move clause (2) compares d_{t+1} against d_t; remembers the d
    /// of nodes whose clause-(2) precondition held.
    pending_shrink: Vec<Option<f64>>,
}

impl<'a> BeepingExecution<'a> {
    /// Prepares a run on `g`; no rounds execute until the first step.
    pub fn new(g: &'a Graph, params: &BeepingParams, seed: u64) -> Self {
        let n = g.node_count();
        let mut trace = BeepingTrace::default();
        if params.record_trace {
            trace.golden1 = vec![0; n];
            trace.golden2 = vec![0; n];
            trace.wrong_moves = vec![0; n];
            trace.undecided_iterations = vec![0; n];
        }
        BeepingExecution {
            g,
            graph_fp: graph_fingerprint(g),
            params: *params,
            seed,
            engine: BeepingEngine::new(g),
            cursor: StreamCursor::new(SharedRandomness::new(seed), Stream::Beep),
            pexp: vec![INITIAL_PEXP; n],
            joined_at: vec![None; n],
            removed_at: vec![None; n],
            undecided: n,
            trace,
            pending_shrink: vec![None; n],
        }
    }
}

impl Execution for BeepingExecution<'_> {
    type Outcome = BeepingRun;

    fn algorithm_id(&self) -> &'static str {
        "beeping"
    }

    fn attach_observer(&mut self, observer: SharedObserver) {
        self.engine.attach_observer(observer);
    }

    fn step(&mut self) -> Status<BeepingRun> {
        let g = self.g;
        let n = g.node_count();
        let t = self.cursor.position();
        if self.undecided == 0 || t >= self.params.max_iterations {
            let mis: Vec<NodeId> = (0..n)
                .filter(|&i| self.joined_at[i].is_some())
                .map(|i| NodeId::new(i as u32))
                .collect();
            let residual: Vec<NodeId> = (0..n)
                .filter(|&i| self.removed_at[i].is_none())
                .map(|i| NodeId::new(i as u32))
                .collect();
            return Status::Done(BeepingRun {
                mis,
                residual,
                joined_at: self.joined_at.clone(),
                removed_at: self.removed_at.clone(),
                ledger: self.engine.ledger().clone(),
                iterations: t,
                trace: self.trace.clone(),
            });
        }
        let alive = |r: &[Option<u64>], i: usize| r[i].is_none();

        // d_t and d'_t over undecided neighbors (analysis bookkeeping and
        // wrong-move detection; the algorithm itself never computes these).
        let d: Vec<f64> = compute_d(g, &self.pexp, &self.removed_at);
        if self.params.record_trace || self.pending_shrink.iter().any(Option::is_some) {
            for (i, &di) in d.iter().enumerate() {
                if !alive(&self.removed_at, i) {
                    self.pending_shrink[i] = None;
                    continue;
                }
                if let Some(d_prev) = self.pending_shrink[i].take() {
                    if di > WRONG_MOVE_SHRINK * d_prev && self.params.record_trace {
                        self.trace.wrong_moves[i] += 1;
                    }
                }
            }
        }

        // R1: beeps.
        let cursor = self.cursor;
        let removed_at = &self.removed_at;
        let pexp = &self.pexp;
        let beeps: Vec<bool> = par_map_nodes(n, |i| {
            alive(removed_at, i) && cursor.coin(NodeId::new(i as u32)) <= p_of(pexp[i])
        });
        let heard = self.engine.round(&beeps);

        if self.params.record_trace {
            record_goldens(g, &self.pexp, &d, &self.removed_at, &mut self.trace);
        }

        // Joins and p updates.
        let mut joins: Vec<usize> = Vec::new();
        for i in 0..n {
            if !alive(&self.removed_at, i) {
                continue;
            }
            if self.params.record_trace {
                self.trace.undecided_iterations[i] += 1;
            }
            if beeps[i] && !heard[i] {
                joins.push(i);
            }
            // Wrong-move clause (1): d small but a neighbor beeped anyway.
            if d[i] <= GOLDEN1_D_MAX && heard[i] && self.params.record_trace {
                self.trace.wrong_moves[i] += 1;
            }
            // Arm clause (2) for evaluation against d_{t+1}.
            let dprime = d_prime(g, &self.pexp, &d, &self.removed_at, i);
            if d[i] > GOLDEN2_D_MIN && dprime < GOLDEN2_D_MIN * d[i] {
                self.pending_shrink[i] = Some(d[i]);
            }
            self.pexp[i] = if heard[i] {
                halve(self.pexp[i])
            } else {
                double_capped(self.pexp[i])
            };
        }

        // R2: new MIS members beep; they and their hearers leave.
        let mut mis_beeps = vec![false; n];
        for &i in &joins {
            mis_beeps[i] = true;
        }
        self.engine.round(&mis_beeps);
        for &i in &joins {
            self.joined_at[i] = Some(t);
            if self.removed_at[i].is_none() {
                self.removed_at[i] = Some(t);
                self.undecided -= 1;
            }
            for &u in g.neighbors(NodeId::new(i as u32)) {
                if self.removed_at[u.index()].is_none() {
                    self.removed_at[u.index()] = Some(t);
                    self.undecided -= 1;
                }
            }
        }
        self.cursor.advance();
        Status::Running
    }

    fn save(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.graph_fp);
        w.write_u64(self.seed);
        w.write_u64(self.params.max_iterations);
        w.write_bool(self.params.record_trace);
        w.write_ledger(self.engine.ledger());
        w.write_u64(self.cursor.position());
        w.write_vec_u32(&self.pexp);
        w.write_vec_opt_u64(&self.joined_at);
        w.write_vec_opt_u64(&self.removed_at);
        w.write_usize(self.undecided);
        w.write_vec_u64(&self.trace.golden1);
        w.write_vec_u64(&self.trace.golden2);
        w.write_vec_u64(&self.trace.wrong_moves);
        w.write_vec_u64(&self.trace.undecided_iterations);
        w.write_vec_opt_f64(&self.pending_shrink);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.expect_u64("graph fingerprint", self.graph_fp)?;
        r.expect_u64("seed", self.seed)?;
        r.expect_u64("max_iterations", self.params.max_iterations)?;
        r.expect_bool("record_trace", self.params.record_trace)?;
        *self.engine.ledger_mut() = r.read_ledger()?;
        self.cursor.seek(r.read_u64()?);
        self.pexp = r.read_vec_u32()?;
        self.joined_at = r.read_vec_opt_u64()?;
        self.removed_at = r.read_vec_opt_u64()?;
        self.undecided = r.read_usize()?;
        self.trace.golden1 = r.read_vec_u64()?;
        self.trace.golden2 = r.read_vec_u64()?;
        self.trace.wrong_moves = r.read_vec_u64()?;
        self.trace.undecided_iterations = r.read_vec_u64()?;
        self.pending_shrink = r.read_vec_opt_f64()?;
        let n = self.g.node_count();
        check_node_vec_len("pexp vector length", self.pexp.len(), n)?;
        check_node_vec_len("joined_at vector length", self.joined_at.len(), n)?;
        check_node_vec_len("removed_at vector length", self.removed_at.len(), n)?;
        check_node_vec_len("pending_shrink vector length", self.pending_shrink.len(), n)?;
        Ok(())
    }
}

/// Runs the beeping MIS until every node decides, returning a plain
/// [`MisOutcome`].
///
/// # Panics
///
/// Panics if some node is still undecided after `params.max_iterations`
/// (a `≪ 1/poly(n)` event with the default budget).
pub fn run_beeping_to_completion(g: &Graph, params: &BeepingParams, seed: u64) -> MisOutcome {
    run_beeping_to_completion_observed(g, params, seed, None)
}

/// [`run_beeping_to_completion`] with an optional per-round trace observer.
///
/// # Panics
///
/// As for [`run_beeping_to_completion`].
pub fn run_beeping_to_completion_observed(
    g: &Graph,
    params: &BeepingParams,
    seed: u64,
    observer: Option<SharedObserver>,
) -> MisOutcome {
    let run = run_beeping_observed(g, params, seed, observer);
    assert!(
        run.residual.is_empty(),
        "beeping MIS left {} undecided nodes after {} iterations",
        run.residual.len(),
        run.iterations
    );
    MisOutcome {
        mis: run.mis,
        ledger: run.ledger,
        iterations: run.iterations,
    }
}

/// The per-node record of an [`evolve_beeping`] execution.
#[derive(Debug, Clone, Default)]
pub struct BeepingEvolution {
    /// Iteration at which each node joined the MIS, if it did.
    pub joined_at: Vec<Option<u64>>,
    /// Iteration at which each node left the problem, if it did.
    pub removed_at: Vec<Option<u64>>,
    /// Final probability exponents.
    pub pexp: Vec<u32>,
    /// Number of undecided nodes at the end.
    pub undecided: usize,
}

/// Runs the §2.2 beeping dynamic as a pure function of the shared
/// randomness — the replayable form used by the local-computation oracle
/// ([`crate::lca`]) and tested to agree with [`run_beeping`] exactly.
///
/// `coin_ids[i]` is the global identity whose coins local node `i` draws
/// (pass the ball's id mapping when replaying a gathered neighborhood).
/// Stops early once every node has decided.
///
/// # Panics
///
/// Panics if `coin_ids.len() != g.node_count()`.
pub fn evolve_beeping(
    g: &Graph,
    coin_ids: &[NodeId],
    rng: SharedRandomness,
    iterations: u64,
) -> BeepingEvolution {
    assert_eq!(
        coin_ids.len(),
        g.node_count(),
        "coin id mapping must cover the graph"
    );
    let n = g.node_count();
    let mut pexp = vec![INITIAL_PEXP; n];
    let mut joined_at: Vec<Option<u64>> = vec![None; n];
    let mut removed_at: Vec<Option<u64>> = vec![None; n];
    let mut undecided = n;
    for t in 0..iterations {
        if undecided == 0 {
            break;
        }
        let beeps: Vec<bool> = par_map_nodes(n, |i| {
            removed_at[i].is_none() && rng.coin(Stream::Beep, coin_ids[i], t) <= p_of(pexp[i])
        });
        let heard: Vec<bool> = par_map_nodes(n, |i| {
            g.neighbors(NodeId::new(i as u32))
                .iter()
                .any(|u| beeps[u.index()])
        });
        let joins: Vec<usize> = (0..n)
            .filter(|&i| removed_at[i].is_none() && beeps[i] && !heard[i])
            .collect();
        for i in 0..n {
            if removed_at[i].is_none() {
                pexp[i] = if heard[i] {
                    halve(pexp[i])
                } else {
                    double_capped(pexp[i])
                };
            }
        }
        for &i in &joins {
            joined_at[i] = Some(t);
            if removed_at[i].is_none() {
                removed_at[i] = Some(t);
                undecided -= 1;
            }
            for &u in g.neighbors(NodeId::new(i as u32)) {
                if removed_at[u.index()].is_none() {
                    removed_at[u.index()] = Some(t);
                    undecided -= 1;
                }
            }
        }
    }
    BeepingEvolution {
        joined_at,
        removed_at,
        pexp,
        undecided,
    }
}

/// `d_t(v) = Σ_{undecided u ∈ N(v)} p_t(u)` for every node.
///
/// Gathers per node over its (sorted) neighbor list — the same ascending
/// accumulation order a sequential scatter would produce, so the f64 sums
/// are bit-identical to it and independent of the worker-thread count.
fn compute_d(g: &Graph, pexp: &[u32], removed_at: &[Option<u64>]) -> Vec<f64> {
    par_map_nodes(g.node_count(), |i| {
        g.neighbors(NodeId::new(i as u32))
            .iter()
            .filter(|u| removed_at[u.index()].is_none())
            .map(|u| p_of(pexp[u.index()]))
            .sum()
    })
}

/// `d'_t(v)`: the part of `d_t(v)` contributed by non-heavy undecided
/// neighbors (`d_t(u) ≤ 10`).
fn d_prime(g: &Graph, pexp: &[u32], d: &[f64], removed_at: &[Option<u64>], i: usize) -> f64 {
    g.neighbors(NodeId::new(i as u32))
        .iter()
        .filter(|u| removed_at[u.index()].is_none() && d[u.index()] <= HEAVY_THRESHOLD)
        .map(|u| p_of(pexp[u.index()]))
        .sum()
}

fn record_goldens(
    g: &Graph,
    pexp: &[u32],
    d: &[f64],
    removed_at: &[Option<u64>],
    trace: &mut BeepingTrace,
) {
    for i in 0..g.node_count() {
        if removed_at[i].is_some() {
            continue;
        }
        if pexp[i] == INITIAL_PEXP && d[i] <= GOLDEN1_D_MAX {
            trace.golden1[i] += 1;
        }
        let dp = d_prime(g, pexp, d, removed_at, i);
        if d[i] > GOLDEN2_D_MIN && dp >= GOLDEN2_D_MIN * d[i] {
            trace.golden2[i] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_mis_graph::{checks, generators, Graph};

    #[test]
    fn beeping_is_mis_on_families() {
        let graphs = vec![
            generators::cycle(14),
            generators::complete(9),
            generators::star(16),
            generators::grid(4, 6),
            generators::erdos_renyi_gnp(100, 0.07, 3),
            generators::disjoint_cliques(3, 6),
            Graph::empty(5),
        ];
        for g in &graphs {
            for seed in 0..3 {
                let out = run_beeping_to_completion(g, &BeepingParams::for_graph(g), seed);
                assert!(
                    checks::is_maximal_independent_set(g, &out.mis),
                    "{g:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn two_beeping_rounds_per_iteration() {
        let g = generators::erdos_renyi_gnp(50, 0.1, 2);
        let run = run_beeping(&g, &BeepingParams::for_graph(&g), 1);
        assert_eq!(run.ledger.rounds, 2 * run.iterations);
    }

    #[test]
    fn budget_truncates_with_partial_result() {
        let g = generators::complete(40);
        let params = BeepingParams {
            max_iterations: 1,
            record_trace: false,
        };
        let run = run_beeping(&g, &params, 0);
        assert_eq!(run.iterations, 1);
        // Whatever joined is independent (≤ 1 node in a clique), and every
        // node is either decided or residual.
        assert!(checks::is_independent_set(&g, &run.mis));
        assert!(run.mis.len() <= 1);
        let decided = run.removed_at.iter().filter(|r| r.is_some()).count();
        assert_eq!(decided + run.residual.len(), 40);
    }

    #[test]
    fn removal_times_are_consistent() {
        let g = generators::erdos_renyi_gnp(60, 0.1, 5);
        let run = run_beeping(&g, &BeepingParams::for_graph(&g), 7);
        for i in 0..60 {
            if let Some(j) = run.joined_at[i] {
                assert_eq!(run.removed_at[i], Some(j));
            }
        }
        // A removed non-joiner has an MIS neighbor removed no later.
        for i in 0..60 {
            if run.joined_at[i].is_none() {
                if let Some(r) = run.removed_at[i] {
                    let v = NodeId::new(i as u32);
                    assert!(
                        g.neighbors(v)
                            .iter()
                            .any(|u| run.joined_at[u.index()] == Some(r)),
                        "node {i} removed at {r} without an MIS neighbor joining then"
                    );
                }
            }
        }
    }

    #[test]
    fn golden_rounds_accumulate_for_isolated_nodes() {
        // An isolated node has d = 0 forever: every round is golden type-1
        // until it joins (which happens as soon as it beeps).
        let g = Graph::empty(1);
        let run = run_beeping(&g, &BeepingParams::for_graph(&g), 9);
        assert_eq!(run.mis.len(), 1);
        assert!(run.trace.golden1[0] >= 1);
        assert_eq!(run.trace.wrong_moves[0], 0);
    }

    #[test]
    fn trace_vectors_sized_when_enabled() {
        let g = generators::cycle(10);
        let run = run_beeping(&g, &BeepingParams::for_graph(&g), 0);
        assert_eq!(run.trace.golden1.len(), 10);
        assert_eq!(run.trace.golden2.len(), 10);
        assert_eq!(run.trace.wrong_moves.len(), 10);
        let run2 = run_beeping(
            &g,
            &BeepingParams {
                max_iterations: 10,
                record_trace: false,
            },
            0,
        );
        assert!(run2.trace.golden1.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::erdos_renyi_gnp(80, 0.06, 11);
        let a = run_beeping(&g, &BeepingParams::for_graph(&g), 5);
        let b = run_beeping(&g, &BeepingParams::for_graph(&g), 5);
        assert_eq!(a.mis, b.mis);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn pure_evolution_matches_engine_run() {
        for seed in 0..5 {
            let g = generators::erdos_renyi_gnp(70, 0.1, 500 + seed);
            let run = run_beeping(&g, &BeepingParams::for_graph(&g), seed);
            let ids: Vec<NodeId> = g.nodes().collect();
            let evo = evolve_beeping(&g, &ids, SharedRandomness::new(seed), u64::MAX);
            assert_eq!(run.joined_at, evo.joined_at, "seed {seed}");
            assert_eq!(run.removed_at, evo.removed_at, "seed {seed}");
        }
    }

    use cc_mis_sim::SharedRandomness;

    #[test]
    fn different_seeds_differ() {
        let g = generators::erdos_renyi_gnp(80, 0.06, 11);
        let a = run_beeping(&g, &BeepingParams::for_graph(&g), 1);
        let b = run_beeping(&g, &BeepingParams::for_graph(&g), 2);
        assert_ne!(a.mis, b.mis);
    }
}
