//! The congested-clique MIS algorithm of §2.4 — **Theorem 1.1**.
//!
//! Computes an MIS in `Õ(√(log Δ))` rounds of the congested clique by
//! simulating each phase of the sparsified beeping algorithm (§2.3,
//! [`crate::sparsified`]) in `O(log log n)` clique rounds, then solving the
//! shattered `O(n)`-edge remainder at a leader in `O(1)` rounds
//! (Lemma 2.11 + the clean-up step).
//!
//! ## Per-phase message flow
//!
//! 1. **p-exchange round** — undecided nodes send their probability
//!    exponent to undecided neighbors; everyone computes `d_{t0}(v)` and
//!    learns whether it is super-heavy (`d ≥ 2^{2P}`).
//! 2. **Commitment round** — super-heavy nodes broadcast their
//!    deterministic **beep vector** for the phase (their `p` halves every
//!    iteration, so the whole schedule is a `P`-bit string); every node
//!    announces whether it is in the sampled set `S` (some coin of the
//!    phase falls below `2^P · p_{t0}(v)` — a superset of all possible
//!    beepers).
//! 3. **Gather** — nodes of `S` learn their `P`-hop neighborhood in the
//!    decorated graph `G*[S]` by graph exponentiation
//!    ([`crate::exponentiation`], Lemma 2.14) over Lenzen routing; the
//!    declared record size includes both endpoints' decorations
//!    (probability exponent, super-heavy-beep OR, and the phase's coins).
//! 4. **Local replay** — each `s ∈ S` simulates the phase on its ball
//!    (Lemma 2.13): beeps, joins, removals, probability updates.
//! 5. **Announcement round** — each `s ∈ S` sends its *realized* beep
//!    vector and join time to its neighbors. Every other node (watchers —
//!    undecided, neither super-heavy nor sampled — and super-heavy nodes)
//!    reconstructs its own hearing history from these vectors plus the
//!    super-heavy schedules, updates its probability, and learns whether a
//!    neighbor joined.
//!
//! Watchers never beep (their coins all exceeded `2^P p_{t0}` — otherwise
//! they would be in `S`), so no gathering is needed for them; the realized
//! vectors of their `S`-neighbors are exactly the information the beeping
//! model would have delivered. This makes the whole simulation **exactly**
//! equivalent to the direct execution: [`run_clique_mis`] reproduces
//! [`crate::sparsified::run_sparsified`]'s full state trajectory
//! bit-for-bit under a shared seed (enforced by tests).

use cc_mis_graph::{Graph, GraphBuilder, NodeId};
use cc_mis_sim::bits::{node_id_bits, standard_bandwidth, COIN_BITS, PROBABILITY_EXPONENT_BITS};
use cc_mis_sim::clique::CliqueEngine;
use cc_mis_sim::driver::{drive_observed, Execution, Status};
use cc_mis_sim::par_nodes::par_map_nodes;
use cc_mis_sim::rng::{SharedRandomness, Stream};
use cc_mis_sim::shard::{Wire, WireCursor};
use cc_mis_sim::snapshot::{graph_fingerprint, SnapshotError, SnapshotReader, SnapshotWriter};
use cc_mis_sim::{RoundLedger, SharedObserver};

use crate::cleanup::leader_cleanup;
use crate::common::{check_node_vec_len, double_capped, halve, p_of, MisOutcome, INITIAL_PEXP};
use crate::exponentiation::gather_balls;
use crate::rounds;
use crate::sparsified::{sample_set, SparsifiedParams};

/// Configuration of [`run_clique_mis`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CliqueMisParams {
    /// Sparsified-algorithm parameters (`None` derives
    /// [`SparsifiedParams::for_graph`] defaults).
    pub sparsified: Option<SparsifiedParams>,
    /// Skip the leader clean-up (used by the equivalence tests to compare
    /// the main part in isolation).
    pub skip_cleanup: bool,
}

/// Per-phase statistics of the simulation (experiment E6/E7 inputs).
#[derive(Debug, Clone)]
pub struct CliquePhaseStats {
    /// Global iteration at which the phase began.
    pub start_iteration: u64,
    /// Iterations simulated in this phase.
    pub len: usize,
    /// Undecided nodes at phase start.
    pub alive_at_start: usize,
    /// Super-heavy nodes.
    pub super_heavy: usize,
    /// `|S|`.
    pub sampled: usize,
    /// Max degree within `G[S]` (Lemma 2.12 metric).
    pub max_s_degree: usize,
    /// Largest gathered ball in edges.
    pub max_ball_edges: usize,
    /// Clique rounds spent gathering (Lemma 2.14 metric).
    pub gather_rounds: u64,
    /// Total clique rounds of the phase.
    pub phase_rounds: u64,
}

/// Result of [`run_clique_mis`].
#[derive(Debug, Clone)]
pub struct CliqueMisResult {
    /// The maximal independent set (or the partial independent set when
    /// `skip_cleanup` is set), sorted by id.
    pub mis: Vec<NodeId>,
    /// Total congested-clique rounds (the Theorem 1.1 metric).
    pub rounds: u64,
    /// Full communication ledger.
    pub ledger: RoundLedger,
    /// Iterations of the sparsified algorithm that were simulated.
    pub iterations: u64,
    /// Per-phase simulation statistics.
    pub phases: Vec<CliquePhaseStats>,
    /// Undecided nodes before clean-up.
    pub residual_nodes: usize,
    /// Edges among undecided nodes before clean-up (Lemma 2.11 metric).
    pub residual_edges: usize,
    /// Iteration at which each node joined during the main part (clean-up
    /// joiners show `None` here but appear in `mis`).
    pub joined_at: Vec<Option<u64>>,
    /// Iteration at which each node was removed during the main part.
    pub removed_at: Vec<Option<u64>>,
    /// Probability exponents at the end of the main part.
    pub pexp: Vec<u32>,
}

/// What an `S`-node announces after replaying its phase: its realized beep
/// schedule and when (if ever) it joined the MIS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Announcement {
    /// Bit `k` set ⇔ the node actually beeped in iteration `t0 + k`.
    beeps: u64,
    /// Iteration offset within the phase at which the node joined.
    joined_k: Option<u8>,
}

impl Wire for Announcement {
    fn encode(&self, out: &mut Vec<u8>) {
        self.beeps.encode(out);
        self.joined_k.encode(out);
    }
    fn decode(r: &mut WireCursor<'_>) -> Option<Self> {
        Some(Announcement {
            beeps: u64::decode(r)?,
            joined_k: Option::<u8>::decode(r)?,
        })
    }
}

/// Runs the Theorem 1.1 algorithm.
///
/// # Example
///
/// ```
/// use cc_mis_core::clique_mis::{run_clique_mis, CliqueMisParams};
/// use cc_mis_graph::{checks, generators};
///
/// let g = generators::erdos_renyi_gnp(250, 0.06, 3);
/// let out = run_clique_mis(&g, &CliqueMisParams::default(), 11);
/// assert!(checks::is_maximal_independent_set(&g, &out.mis));
/// println!("{} clique rounds", out.rounds);
/// ```
pub fn run_clique_mis(g: &Graph, cfg: &CliqueMisParams, seed: u64) -> CliqueMisResult {
    run_clique_mis_observed(g, cfg, seed, None)
}

/// [`run_clique_mis`] with an optional per-round trace observer attached to
/// the engine. `None` is exactly the unobserved run.
pub fn run_clique_mis_observed(
    g: &Graph,
    cfg: &CliqueMisParams,
    seed: u64,
    observer: Option<SharedObserver>,
) -> CliqueMisResult {
    drive_observed(CliqueMisExecution::new(g, cfg, seed), observer)
}

/// Theorem 1.1 as a step-driven state machine: one [`Execution::step`] is
/// one simulated phase (the five-round message flow above), followed by a
/// final clean-up step.
#[derive(Debug)]
pub struct CliqueMisExecution<'a> {
    g: &'a Graph,
    /// Graph fingerprint, computed once at construction so per-checkpoint
    /// `save` calls skip the O(m) edge walk.
    graph_fp: u64,
    cfg: CliqueMisParams,
    /// Resolved sparsified parameters (defaults applied).
    params: SparsifiedParams,
    seed: u64,
    rng: SharedRandomness,
    engine: CliqueEngine,
    id_bits: u64,
    pexp: Vec<u32>,
    joined_at: Vec<Option<u64>>,
    removed_at: Vec<Option<u64>>,
    undecided: usize,
    phases: Vec<CliquePhaseStats>,
    t0: u64,
    cleanup_done: bool,
    mis: Vec<NodeId>,
    residual_nodes: usize,
    residual_edges: usize,
}

impl<'a> CliqueMisExecution<'a> {
    /// Prepares a run on `g`; no rounds execute until the first step.
    ///
    /// # Panics
    ///
    /// Panics if the resolved phase length is zero or exceeds 64 (beep
    /// vectors are stored in `u64` bitmasks).
    pub fn new(g: &'a Graph, cfg: &CliqueMisParams, seed: u64) -> Self {
        let n = g.node_count();
        let params = cfg
            .sparsified
            .unwrap_or_else(|| SparsifiedParams::for_graph(g));
        assert!(params.phase_len >= 1, "phase length must be at least 1");
        assert!(
            params.phase_len <= 64,
            "beep vectors are stored in u64 bitmasks; phase length {} > 64",
            params.phase_len
        );
        CliqueMisExecution {
            g,
            graph_fp: graph_fingerprint(g),
            cfg: *cfg,
            params,
            seed,
            rng: SharedRandomness::new(seed),
            engine: CliqueEngine::strict(n.max(2), standard_bandwidth(n.max(2))),
            id_bits: node_id_bits(n.max(2)).max(1),
            pexp: vec![INITIAL_PEXP; n],
            joined_at: vec![None; n],
            removed_at: vec![None; n],
            undecided: n,
            phases: Vec::new(),
            t0: 0,
            cleanup_done: false,
            mis: Vec::new(),
            residual_nodes: 0,
            residual_edges: 0,
        }
    }

    /// Runs one full phase of the simulation (steps 1–5 of the module doc).
    fn step_phase(&mut self) {
        let g = self.g;
        let n = g.node_count();
        let t0 = self.t0;
        let params = self.params;
        let len = (params.max_iterations - t0).min(params.phase_len as u64) as usize;
        self.engine
            .ledger_mut()
            .begin_phase(format!("phase t0={t0}"));
        let rounds_before = self.engine.ledger().rounds;
        let alive0: Vec<bool> = self.removed_at.iter().map(Option::is_none).collect();
        let rng = self.rng;

        // ===== 1. p-exchange round =====
        let pexp0 = &self.pexp;
        let mut round = self.engine.begin_round::<u32>();
        rounds::broadcast_to_alive_neighbors(
            &mut round,
            g,
            &alive0,
            |v| alive0[v.index()].then(|| (PROBABILITY_EXPONENT_BITS, pexp0[v.index()])),
            "p exponent fits the bandwidth",
        );
        let inboxes = round.deliver();
        let threshold = params.super_heavy_threshold();
        let mut super_heavy = vec![false; n];
        for i in 0..n {
            if alive0[i] {
                let d: f64 = inboxes[i].iter().map(|&(_, pe)| p_of(pe)).sum();
                super_heavy[i] = d >= threshold;
            }
        }

        // Super-heavy beep vectors: p halves deterministically, so the
        // schedule is a pure function of (pexp0, coins).
        let sh_vector = |i: usize| -> u64 {
            let mut vec = 0u64;
            let mut pe = pexp0[i];
            for k in 0..len {
                if rng.coin(Stream::Beep, NodeId::new(i as u32), t0 + k as u64) <= p_of(pe) {
                    vec |= 1 << k;
                }
                pe = halve(pe);
            }
            vec
        };

        // Sampled superset S (each node evaluates its own coins).
        let in_s = sample_set(g, &rng, pexp0, &alive0, &super_heavy, t0, len);

        // ===== 2. Commitment round: (super-heavy?, beep vector, in S?) =====
        let mut round = self.engine.begin_round::<(bool, u64, bool)>();
        rounds::broadcast_to_alive_neighbors(
            &mut round,
            g,
            &alive0,
            |v| {
                let i = v.index();
                if !alive0[i] {
                    return None;
                }
                let vec = if super_heavy[i] { sh_vector(i) } else { 0 };
                let bits = 2 + if super_heavy[i] { len as u64 } else { 0 };
                Some((bits, (super_heavy[i], vec, in_s[i])))
            },
            "commitment fits the bandwidth",
        );
        let inboxes = round.deliver();
        // Per node: OR of super-heavy neighbors' schedules, and S-neighbor
        // lists (the node's incident edges of G[S], plus a watcher's view).
        let mut sh_or = vec![0u64; n];
        let mut s_neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 0..n {
            for &(u, (is_sh, vec, u_in_s)) in &inboxes[i] {
                if is_sh {
                    sh_or[i] |= vec;
                }
                if u_in_s {
                    s_neighbors[i].push(u.raw());
                }
            }
        }

        // ===== 3. Gather P-hop balls in G[S] =====
        // The gather graph mirrors exactly what nodes know: their own
        // incident S–S edges.
        let mut builder = GraphBuilder::new(n);
        for i in 0..n {
            if in_s[i] {
                for &u in &s_neighbors[i] {
                    if in_s[u as usize] && i < u as usize {
                        builder
                            .add_edge(NodeId::new(i as u32), NodeId::new(u))
                            .expect("S-S edge is valid");
                    }
                }
            }
        }
        let g_s = builder.build();
        let max_s_degree = (0..n)
            .filter(|&i| in_s[i])
            .map(|i| g_s.degree(NodeId::new(i as u32)))
            .max()
            .unwrap_or(0);
        // Record size: edge (2 ids) + both endpoints' decorations
        // (p exponent, super-heavy OR schedule, and the phase's coins).
        let decoration_bits = PROBABILITY_EXPONENT_BITS + len as u64 + len as u64 * COIN_BITS;
        let record_bits = 2 * self.id_bits + 2 * decoration_bits;
        // Radius 2·len, not len: a node's aliveness after k iterations
        // depends on joins of neighbors, whose decisions depend on *their*
        // neighbors' beeps — information travels 2 hops per iteration (the
        // paper's Lemma 2.13 absorbs this factor into its constants). With
        // radius 2·len the replay below is exact for the center through the
        // whole phase.
        let gather = gather_balls(&mut self.engine, &g_s, &in_s, (2 * len).max(1), record_bits);

        // ===== 4. Local replay per S-node (Lemma 2.13) =====
        // Each replay is a pure function of the gathered ball and the
        // addressable randomness, so the S-nodes replay in parallel;
        // results come back in index order, keeping the phase bit-identical
        // to sequential execution (see `cc_mis_sim::par_nodes`).
        let pexp0 = &self.pexp;
        let mut announcements: Vec<Option<Announcement>> = vec![None; n];
        let mut replayed_pexp: Vec<Option<u32>> = vec![None; n];
        let mut replayed_removed: Vec<Option<Option<u8>>> = vec![None; n];
        let replays = par_map_nodes(n, |s| {
            if !in_s[s] {
                return None;
            }
            Some(replay_ball(
                s,
                &gather.balls[s],
                pexp0,
                &sh_or,
                &rng,
                t0,
                len,
            ))
        });
        for (s, replay) in replays.into_iter().enumerate() {
            if let Some((ann, final_pexp, removed_k)) = replay {
                announcements[s] = Some(ann);
                replayed_pexp[s] = Some(final_pexp);
                replayed_removed[s] = Some(removed_k);
            }
        }

        // ===== 5. Announcement round =====
        let ann_bits =
            len as u64 + (len as u64 + 1).next_power_of_two().trailing_zeros() as u64 + 1;
        let mut round = self.engine.begin_round::<Announcement>();
        rounds::broadcast_to_alive_neighbors(
            &mut round,
            g,
            &alive0,
            |v| announcements[v.index()].map(|ann| (ann_bits, ann)),
            "announcement fits the bandwidth",
        );
        let inboxes = round.deliver();

        // Apply the phase outcome to the global state, exactly mirroring
        // the direct algorithm's update order.
        for i in 0..n {
            if !alive0[i] {
                continue;
            }
            if super_heavy[i] {
                // Deterministic halving for the whole phase.
                for _ in 0..len {
                    self.pexp[i] = halve(self.pexp[i]);
                }
                // Removed when the earliest neighbor join happens.
                if let Some(k) = earliest_neighbor_join(&inboxes[i]) {
                    self.removed_at[i] = Some(t0 + k as u64);
                    self.undecided -= 1;
                }
            } else if in_s[i] {
                self.pexp[i] = replayed_pexp[i].expect("replayed");
                let ann = announcements[i].expect("announced");
                if let Some(k) = ann.joined_k {
                    self.joined_at[i] = Some(t0 + k as u64);
                }
                if let Some(k) = replayed_removed[i].expect("replayed") {
                    self.removed_at[i] = Some(t0 + k as u64);
                    self.undecided -= 1;
                }
            } else {
                // Watcher: reconstruct hearing from super-heavy schedules
                // and S-neighbors' realized beeps.
                let mut removed_k: Option<u8> = None;
                for k in 0..len as u8 {
                    if removed_k.is_some() {
                        break;
                    }
                    let heard = (sh_or[i] >> k) & 1 == 1
                        || inboxes[i].iter().any(|&(_, ann)| (ann.beeps >> k) & 1 == 1);
                    self.pexp[i] = if heard {
                        halve(self.pexp[i])
                    } else {
                        double_capped(self.pexp[i])
                    };
                    if inboxes[i].iter().any(|&(_, ann)| ann.joined_k == Some(k)) {
                        removed_k = Some(k);
                    }
                }
                if let Some(k) = removed_k {
                    self.removed_at[i] = Some(t0 + k as u64);
                    self.undecided -= 1;
                }
            }
        }

        let phase_rounds = self.engine.ledger().rounds - rounds_before;
        self.phases.push(CliquePhaseStats {
            start_iteration: t0,
            len,
            alive_at_start: alive0.iter().filter(|&&a| a).count(),
            super_heavy: super_heavy.iter().filter(|&&s| s).count(),
            sampled: in_s.iter().filter(|&&s| s).count(),
            max_s_degree,
            max_ball_edges: gather.max_ball_edges,
            gather_rounds: gather.rounds,
            phase_rounds,
        });
        self.t0 += len as u64;
    }

    /// The final step: record the residual statistics and (unless skipped)
    /// run the leader clean-up.
    fn step_cleanup(&mut self) {
        let g = self.g;
        let n = g.node_count();
        let residual: Vec<NodeId> = (0..n)
            .filter(|&i| self.removed_at[i].is_none())
            .map(|i| NodeId::new(i as u32))
            .collect();
        self.residual_edges = g
            .edges()
            .filter(|&(u, v)| {
                self.removed_at[u.index()].is_none() && self.removed_at[v.index()].is_none()
            })
            .count();
        self.residual_nodes = residual.len();

        let mut mis: Vec<NodeId> = (0..n)
            .filter(|&i| self.joined_at[i].is_some())
            .map(|i| NodeId::new(i as u32))
            .collect();
        if !self.cfg.skip_cleanup && n > 0 {
            self.engine.ledger_mut().begin_phase("cleanup");
            let mut alive = vec![false; n];
            for &v in &residual {
                alive[v.index()] = true;
            }
            let additions = leader_cleanup(&mut self.engine, g, &alive);
            mis.extend(additions);
            mis.sort_unstable();
        }
        self.mis = mis;
        self.cleanup_done = true;
    }
}

impl Execution for CliqueMisExecution<'_> {
    type Outcome = CliqueMisResult;

    fn algorithm_id(&self) -> &'static str {
        "thm11"
    }

    fn attach_observer(&mut self, observer: SharedObserver) {
        self.engine.attach_observer(observer);
    }

    fn step(&mut self) -> Status<CliqueMisResult> {
        if self.t0 < self.params.max_iterations && self.undecided > 0 {
            self.step_phase();
            return Status::Running;
        }
        if !self.cleanup_done {
            self.step_cleanup();
            return Status::Running;
        }
        let ledger = self.engine.ledger().clone();
        Status::Done(CliqueMisResult {
            mis: self.mis.clone(),
            rounds: ledger.rounds,
            ledger,
            iterations: self.t0,
            phases: self.phases.clone(),
            residual_nodes: self.residual_nodes,
            residual_edges: self.residual_edges,
            joined_at: self.joined_at.clone(),
            removed_at: self.removed_at.clone(),
            pexp: self.pexp.clone(),
        })
    }

    fn save(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.graph_fp);
        w.write_u64(self.seed);
        w.write_usize(self.params.phase_len);
        w.write_u32(self.params.super_heavy_log2);
        w.write_u64(self.params.max_iterations);
        w.write_bool(self.params.record_trace);
        w.write_bool(self.cfg.skip_cleanup);
        w.write_ledger(self.engine.ledger());
        w.write_u64(self.t0);
        w.write_vec_u32(&self.pexp);
        w.write_vec_opt_u64(&self.joined_at);
        w.write_vec_opt_u64(&self.removed_at);
        w.write_usize(self.undecided);
        write_clique_phases(w, &self.phases);
        w.write_bool(self.cleanup_done);
        let raws: Vec<u32> = self.mis.iter().map(|v| v.raw()).collect();
        w.write_vec_u32(&raws);
        w.write_usize(self.residual_nodes);
        w.write_usize(self.residual_edges);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.expect_u64("graph fingerprint", self.graph_fp)?;
        r.expect_u64("seed", self.seed)?;
        r.expect_usize("phase_len", self.params.phase_len)?;
        r.expect_u32("super_heavy_log2", self.params.super_heavy_log2)?;
        r.expect_u64("max_iterations", self.params.max_iterations)?;
        r.expect_bool("record_trace", self.params.record_trace)?;
        r.expect_bool("skip_cleanup", self.cfg.skip_cleanup)?;
        *self.engine.ledger_mut() = r.read_ledger()?;
        self.t0 = r.read_u64()?;
        self.pexp = r.read_vec_u32()?;
        self.joined_at = r.read_vec_opt_u64()?;
        self.removed_at = r.read_vec_opt_u64()?;
        self.undecided = r.read_usize()?;
        self.phases = read_clique_phases(r)?;
        self.cleanup_done = r.read_bool()?;
        self.mis = r.read_vec_u32()?.into_iter().map(NodeId::new).collect();
        self.residual_nodes = r.read_usize()?;
        self.residual_edges = r.read_usize()?;
        let n = self.g.node_count();
        check_node_vec_len("pexp vector length", self.pexp.len(), n)?;
        check_node_vec_len("joined_at vector length", self.joined_at.len(), n)?;
        check_node_vec_len("removed_at vector length", self.removed_at.len(), n)?;
        Ok(())
    }
}

/// Serializes the per-phase simulation statistics.
fn write_clique_phases(w: &mut SnapshotWriter, phases: &[CliquePhaseStats]) {
    w.write_usize(phases.len());
    for p in phases {
        w.write_u64(p.start_iteration);
        w.write_usize(p.len);
        w.write_usize(p.alive_at_start);
        w.write_usize(p.super_heavy);
        w.write_usize(p.sampled);
        w.write_usize(p.max_s_degree);
        w.write_usize(p.max_ball_edges);
        w.write_u64(p.gather_rounds);
        w.write_u64(p.phase_rounds);
    }
}

/// Mirror of [`write_clique_phases`].
fn read_clique_phases(r: &mut SnapshotReader<'_>) -> Result<Vec<CliquePhaseStats>, SnapshotError> {
    let count = r.read_usize()?;
    let mut phases = Vec::new();
    for _ in 0..count {
        phases.push(CliquePhaseStats {
            start_iteration: r.read_u64()?,
            len: r.read_usize()?,
            alive_at_start: r.read_usize()?,
            super_heavy: r.read_usize()?,
            sampled: r.read_usize()?,
            max_s_degree: r.read_usize()?,
            max_ball_edges: r.read_usize()?,
            gather_rounds: r.read_u64()?,
            phase_rounds: r.read_u64()?,
        });
    }
    Ok(phases)
}

/// Convenience wrapper returning a plain [`MisOutcome`].
pub fn run_clique_mis_outcome(g: &Graph, cfg: &CliqueMisParams, seed: u64) -> MisOutcome {
    run_clique_mis_outcome_observed(g, cfg, seed, None)
}

/// [`run_clique_mis_outcome`] with an optional per-round trace observer.
pub fn run_clique_mis_outcome_observed(
    g: &Graph,
    cfg: &CliqueMisParams,
    seed: u64,
    observer: Option<SharedObserver>,
) -> MisOutcome {
    let res = run_clique_mis_observed(g, cfg, seed, observer);
    MisOutcome {
        mis: res.mis,
        ledger: res.ledger,
        iterations: res.iterations,
    }
}

/// The earliest join offset among a node's announced neighbors.
fn earliest_neighbor_join(inbox: &[(NodeId, Announcement)]) -> Option<u8> {
    inbox.iter().filter_map(|&(_, ann)| ann.joined_k).min()
}

/// Lemma 2.13 local replay: simulates the phase on the gathered ball and
/// returns the center's realized announcement, final probability exponent,
/// and removal offset. Accurate for the center because the ball covers its
/// `len`-hop neighborhood in `G*[S]`.
fn replay_ball(
    center: usize,
    ball: &crate::exponentiation::Ball,
    pexp0: &[u32],
    sh_or: &[u64],
    rng: &SharedRandomness,
    t0: u64,
    len: usize,
) -> (Announcement, u32, Option<u8>) {
    // Local index space over the ball's nodes (plus the center, which may
    // have an empty ball).
    let mut nodes: Vec<u32> = ball
        .edges()
        .flat_map(|(a, b)| [a, b])
        .chain(std::iter::once(center as u32))
        .collect();
    nodes.sort_unstable();
    nodes.dedup();
    let local_of = |id: u32| nodes.binary_search(&id).expect("node is in the ball");
    let m = nodes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (a, b) in ball.edges() {
        let (la, lb) = (local_of(a), local_of(b));
        adj[la].push(lb);
        adj[lb].push(la);
    }

    let mut pe: Vec<u32> = nodes.iter().map(|&id| pexp0[id as usize]).collect();
    let mut removed: Vec<Option<u8>> = vec![None; m];
    let mut joined: Vec<Option<u8>> = vec![None; m];
    let c = local_of(center as u32);
    let mut center_beeps = 0u64;

    for k in 0..len as u8 {
        // Beeps of alive ball nodes (all are S-members: non-super-heavy,
        // undecided at phase start).
        let beeps: Vec<bool> = (0..m)
            .map(|u| {
                removed[u].is_none()
                    && rng.coin(Stream::Beep, NodeId::new(nodes[u]), t0 + k as u64) <= p_of(pe[u])
            })
            .collect();
        if beeps[c] {
            center_beeps |= 1 << k;
        }
        let heard: Vec<bool> = (0..m)
            .map(|u| (sh_or[nodes[u] as usize] >> k) & 1 == 1 || adj[u].iter().any(|&w| beeps[w]))
            .collect();
        let joins: Vec<usize> = (0..m)
            .filter(|&u| removed[u].is_none() && beeps[u] && !heard[u])
            .collect();
        for u in 0..m {
            if removed[u].is_none() {
                pe[u] = if heard[u] {
                    halve(pe[u])
                } else {
                    double_capped(pe[u])
                };
            }
        }
        for &u in &joins {
            joined[u] = Some(k);
            if removed[u].is_none() {
                removed[u] = Some(k);
            }
            for &w in &adj[u] {
                if removed[w].is_none() {
                    removed[w] = Some(k);
                }
            }
        }
    }

    (
        Announcement {
            beeps: center_beeps,
            joined_k: joined[c],
        },
        pe[c],
        removed[c],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparsified::run_sparsified;
    use cc_mis_graph::{checks, generators, Graph};

    #[test]
    fn clique_mis_is_mis_on_families() {
        let graphs = vec![
            generators::cycle(20),
            generators::complete(12),
            generators::star(25),
            generators::grid(5, 7),
            generators::erdos_renyi_gnp(150, 0.06, 2),
            generators::disjoint_cliques(5, 6),
            generators::barabasi_albert(120, 4, 6),
            Graph::empty(8),
        ];
        for g in &graphs {
            for seed in 0..3 {
                let out = run_clique_mis(g, &CliqueMisParams::default(), seed);
                assert!(
                    checks::is_maximal_independent_set(g, &out.mis),
                    "{g:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn simulation_matches_direct_execution_exactly() {
        // The load-bearing test of §2.4: the clique simulation reproduces
        // the direct sparsified run bit-for-bit under a shared seed.
        for seed in 0..8 {
            let g = generators::erdos_renyi_gnp(120, 0.08, 1000 + seed);
            // Explicit P > 1 to exercise the multi-iteration replay depth.
            let params = SparsifiedParams {
                phase_len: 2,
                super_heavy_log2: 4,
                max_iterations: 20,
                record_trace: false,
            };
            let direct = run_sparsified(&g, &params, seed);
            let simulated = run_clique_mis(
                &g,
                &CliqueMisParams {
                    sparsified: Some(params),
                    skip_cleanup: true,
                },
                seed,
            );
            assert_eq!(direct.joined_at, simulated.joined_at, "seed {seed}: joins");
            assert_eq!(
                direct.removed_at, simulated.removed_at,
                "seed {seed}: removals"
            );
            assert_eq!(direct.mis, simulated.mis, "seed {seed}: MIS");
            // Probability exponents must agree wherever they still matter
            // (undecided nodes) — and in fact everywhere, by construction.
            for i in 0..g.node_count() {
                if direct.removed_at[i].is_none() {
                    assert_eq!(
                        direct.pexp[i], simulated.pexp[i],
                        "seed {seed}: pexp of undecided node {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn simulation_matches_direct_on_hard_families() {
        for (name, g) in [
            ("star", generators::star(300)),
            ("cliques", generators::disjoint_cliques(10, 12)),
            (
                "power-law",
                generators::chung_lu_power_law(150, 2.3, 8.0, 4),
            ),
            ("bipartite", generators::complete_bipartite(8, 120)),
        ] {
            // Explicit P = 3 on small hard instances: deepest replay depth.
            let params = SparsifiedParams {
                phase_len: 3,
                super_heavy_log2: 6,
                max_iterations: 15,
                record_trace: false,
            };
            for seed in 0..3 {
                let direct = run_sparsified(&g, &params, seed);
                let simulated = run_clique_mis(
                    &g,
                    &CliqueMisParams {
                        sparsified: Some(params),
                        skip_cleanup: true,
                    },
                    seed,
                );
                assert_eq!(direct.mis, simulated.mis, "{name} seed {seed}");
                assert_eq!(
                    direct.removed_at, simulated.removed_at,
                    "{name} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn phase_stats_are_recorded() {
        let g = generators::erdos_renyi_gnp(100, 0.1, 5);
        let out = run_clique_mis(&g, &CliqueMisParams::default(), 1);
        assert!(!out.phases.is_empty());
        let p0 = &out.phases[0];
        assert_eq!(p0.start_iteration, 0);
        assert_eq!(p0.alive_at_start, 100);
        assert!(p0.phase_rounds >= 3, "at least 3 fixed rounds per phase");
    }

    #[test]
    fn sampled_degree_obeys_lemma_2_12_bound() {
        // Lemma 2.12: max S-degree ≤ 2^{1 + √(δ log n)/2} = 2^{1 + 5P/2}
        // w.h.p. (with our P-parameterization). Check a comfortable bound.
        let g = generators::erdos_renyi_gnp(400, 0.05, 7);
        let params = SparsifiedParams::for_graph(&g);
        let out = run_clique_mis(
            &g,
            &CliqueMisParams {
                sparsified: Some(params),
                skip_cleanup: false,
            },
            3,
        );
        // The lemma is asymptotic ("w.h.p."); at n = 400 we allow one
        // extra factor of 2 over the literal constant. E6 reports the
        // actual measured maxima across seeds.
        let bound = (2.0 + 2.5 * params.phase_len as f64).exp2() as usize;
        for (i, ph) in out.phases.iter().enumerate() {
            assert!(
                ph.max_s_degree <= bound,
                "phase {i}: S-degree {} exceeds 2^(2+5P/2) = {bound}",
                ph.max_s_degree
            );
        }
    }

    #[test]
    fn phase_round_costs_stay_bounded_with_default_params() {
        // With the paper's own constants (P = 1, L = 4 at this scale), the
        // gathered balls stay small and each phase costs a bounded number
        // of clique rounds. (Stretched P ≥ 2 leaves the n^δ capacity
        // regime at laptop scale — quantified by the ablation experiment.)
        let g = generators::erdos_renyi_gnp(500, 0.03, 9);
        let out = run_clique_mis(&g, &CliqueMisParams::default(), 2);
        for ph in &out.phases {
            assert!(
                ph.phase_rounds <= 60,
                "phase at t0={} took {} rounds",
                ph.start_iteration,
                ph.phase_rounds
            );
        }
    }

    #[test]
    fn residual_before_cleanup_is_small() {
        let g = generators::erdos_renyi_gnp(300, 0.08, 4);
        let out = run_clique_mis(&g, &CliqueMisParams::default(), 6);
        assert!(
            out.residual_edges <= g.node_count(),
            "Lemma 2.11 violated: {} residual edges",
            out.residual_edges
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::erdos_renyi_gnp(100, 0.07, 8);
        let a = run_clique_mis(&g, &CliqueMisParams::default(), 21);
        let b = run_clique_mis(&g, &CliqueMisParams::default(), 21);
        assert_eq!(a.mis, b.mis);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn single_node_graph() {
        let g = Graph::empty(1);
        let out = run_clique_mis(&g, &CliqueMisParams::default(), 0);
        assert_eq!(out.mis, vec![NodeId::new(0)]);
    }
}
