//! The low-degree fast path (§2.5, Lemma 2.15) and the Theorem 1.1
//! dispatcher.
//!
//! When `Δ ≤ 2^{c√(δ log n)}`, the `O(log Δ)`-hop neighborhood of every
//! node has at most `Δ^{O(log Δ)} = 2^{O(log² Δ)} ≤ n^δ` edges, so each node
//! can learn it directly via graph exponentiation (Lemma 2.14) in
//! `O(log log Δ)` clique rounds and replay the [Ghaffari, SODA'16] dynamic
//! locally — no sparsification needed. The remainder is solved by the
//! leader clean-up as usual.
//!
//! [`run_theorem_1_1`] implements the paper's overall case split: the fast
//! path when the degree bound holds, the §2.4 simulation otherwise.

use cc_mis_graph::{Graph, GraphBuilder, NodeId};
use cc_mis_sim::bits::{node_id_bits, standard_bandwidth, COIN_BITS};
use cc_mis_sim::clique::CliqueEngine;
use cc_mis_sim::driver::{drive_observed, Execution, Status};
use cc_mis_sim::rng::SharedRandomness;
use cc_mis_sim::snapshot::{graph_fingerprint, SnapshotError, SnapshotReader, SnapshotWriter};
use cc_mis_sim::SharedObserver;

use crate::cleanup::leader_cleanup;
use crate::clique_mis::{CliqueMisExecution, CliqueMisParams};
use crate::common::{check_node_vec_len, iterations_for_max_degree, MisOutcome};
use crate::exponentiation::{gather_balls, GatherResult};
use crate::ghaffari16::evolve;

/// Parameters for [`run_lowdeg`].
#[derive(Debug, Clone, Copy)]
pub struct LowDegParams {
    /// Iterations of the Ghaffari'16 dynamic to replay (and therefore the
    /// gather radius): `⌈factor · log₂(Δ+2)⌉`.
    pub iteration_factor: f64,
}

impl Default for LowDegParams {
    fn default() -> Self {
        // 3.0 suffices: by Theorem 2.1 nodes decide in ~C log Δ iterations
        // with small C, and whatever survives goes to the clean-up anyway;
        // a larger factor doubles the gather radius for no benefit.
        LowDegParams {
            iteration_factor: 3.0,
        }
    }
}

/// Result of the fast path.
#[derive(Debug, Clone)]
pub struct LowDegResult {
    /// The maximal independent set, sorted by id.
    pub mis: Vec<NodeId>,
    /// Total clique rounds (Lemma 2.15 bounds this by `O(log log Δ)`).
    pub rounds: u64,
    /// Full communication ledger.
    pub ledger: cc_mis_sim::RoundLedger,
    /// Replayed iterations of the inner dynamic.
    pub iterations: u64,
    /// Exponentiation rounds (the dominant term).
    pub gather_rounds: u64,
    /// Doubling steps the gather used (`O(log log Δ)` — the Lemma 2.15
    /// round-complexity *shape*, each step one routing invocation).
    pub gather_steps: u64,
    /// Largest gathered ball in edges.
    pub max_ball_edges: usize,
    /// Undecided nodes handed to the clean-up.
    pub residual_nodes: usize,
}

/// Runs the Lemma 2.15 algorithm: gather `O(log Δ)`-hop balls of `G`,
/// replay Ghaffari'16 locally, clean up at the leader.
///
/// Intended for graphs with small `Δ`; on dense graphs it still returns a
/// correct MIS but the gather honestly costs many rounds (the measured
/// count appears in the ledger). [`run_theorem_1_1`] performs the paper's
/// case split so this path is only taken when it is fast.
///
/// # Example
///
/// ```
/// use cc_mis_core::lowdeg::{run_lowdeg, LowDegParams};
/// use cc_mis_graph::{checks, generators};
///
/// let g = generators::random_regular(200, 4, 1);
/// let out = run_lowdeg(&g, &LowDegParams::default(), 5);
/// assert!(checks::is_maximal_independent_set(&g, &out.mis));
/// ```
pub fn run_lowdeg(g: &Graph, params: &LowDegParams, seed: u64) -> LowDegResult {
    run_lowdeg_observed(g, params, seed, None)
}

/// [`run_lowdeg`] with an optional per-round trace observer attached to the
/// engine. `None` is exactly the unobserved run.
pub fn run_lowdeg_observed(
    g: &Graph,
    params: &LowDegParams,
    seed: u64,
    observer: Option<SharedObserver>,
) -> LowDegResult {
    drive_observed(LowDegExecution::new(g, params, seed), observer)
}

/// Which coarse stage a [`LowDegExecution`] performs next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LowDegStage {
    /// Gather `O(log Δ)`-hop balls by exponentiation.
    Gather,
    /// Replay the Ghaffari'16 dynamic on every ball.
    Replay,
    /// Leader clean-up of the residual.
    Cleanup,
    /// Nothing left; the next step reports the outcome.
    Finished,
}

impl LowDegStage {
    fn to_u32(self) -> u32 {
        match self {
            LowDegStage::Gather => 0,
            LowDegStage::Replay => 1,
            LowDegStage::Cleanup => 2,
            LowDegStage::Finished => 3,
        }
    }

    fn from_u32(raw: u32) -> Result<Self, SnapshotError> {
        match raw {
            0 => Ok(LowDegStage::Gather),
            1 => Ok(LowDegStage::Replay),
            2 => Ok(LowDegStage::Cleanup),
            3 => Ok(LowDegStage::Finished),
            other => Err(SnapshotError::Mismatch {
                field: "lowdeg stage",
                expected: "0..=3".to_string(),
                found: other.to_string(),
            }),
        }
    }
}

/// Lemma 2.15 as a step-driven state machine with coarse steps:
/// gather → replay → clean-up → done.
///
/// The gathered balls are a pure function of the graph (the gather uses no
/// randomness), so snapshots store only the per-node fates and the ledger;
/// [`Execution::restore`] regenerates the balls against a scratch engine
/// and then overwrites the ledger with the saved one.
#[derive(Debug)]
pub struct LowDegExecution<'a> {
    g: &'a Graph,
    /// Graph fingerprint, computed once at construction so per-checkpoint
    /// `save` calls skip the O(m) edge walk.
    graph_fp: u64,
    params: LowDegParams,
    seed: u64,
    rng: SharedRandomness,
    engine: CliqueEngine,
    radius: usize,
    stage: LowDegStage,
    gather: Option<GatherResult>,
    in_mis: Vec<bool>,
    alive: Vec<bool>,
    mis: Vec<NodeId>,
    residual_nodes: usize,
}

impl<'a> LowDegExecution<'a> {
    /// Prepares a run on `g`; no rounds execute until the first step.
    pub fn new(g: &'a Graph, params: &LowDegParams, seed: u64) -> Self {
        let n = g.node_count();
        LowDegExecution {
            g,
            graph_fp: graph_fingerprint(g),
            params: *params,
            seed,
            rng: SharedRandomness::new(seed),
            engine: CliqueEngine::strict(n.max(2), standard_bandwidth(n.max(2))),
            radius: iterations_for_max_degree(g.max_degree(), params.iteration_factor) as usize,
            stage: LowDegStage::Gather,
            gather: None,
            in_mis: vec![false; n],
            alive: vec![true; n],
            mis: Vec::new(),
            residual_nodes: 0,
        }
    }

    /// Runs the exponentiation gather on `engine`, charging it for the
    /// routing. Factored out so [`Execution::restore`] can regenerate the
    /// balls against a scratch engine.
    fn run_gather(g: &Graph, engine: &mut CliqueEngine, radius: usize) -> GatherResult {
        let n = g.node_count();
        // Records carry the edge plus both endpoints' coins for the
        // replayed window.
        let id_bits = node_id_bits(n.max(2)).max(1);
        let record_bits = 2 * id_bits + 2 * radius as u64 * COIN_BITS;
        let participant = vec![true; n];
        // Radius 2·radius: removal information travels 2 hops per iteration
        // (a neighbor's join depends on *its* neighbors' marks) — see the
        // matching comment in `clique_mis`.
        gather_balls(engine, g, &participant, (2 * radius).max(1), record_bits)
    }
}

impl Execution for LowDegExecution<'_> {
    type Outcome = LowDegResult;

    fn algorithm_id(&self) -> &'static str {
        "lowdeg"
    }

    fn attach_observer(&mut self, observer: SharedObserver) {
        self.engine.attach_observer(observer);
    }

    fn step(&mut self) -> Status<LowDegResult> {
        let g = self.g;
        let n = g.node_count();
        match self.stage {
            LowDegStage::Gather => {
                // Gather O(log Δ)-hop balls of G itself.
                self.engine.ledger_mut().begin_phase("gather");
                self.gather = Some(Self::run_gather(g, &mut self.engine, self.radius));
                self.stage = LowDegStage::Replay;
                Status::Running
            }
            LowDegStage::Replay => {
                // Local replay: every node simulates the dynamic on its
                // ball and reads off its own fate. Accurate for `radius`
                // iterations because the ball covers the radius
                // (Lemma 2.13-style induction, via `ghaffari16::evolve` on
                // the ball subgraph with global coin ids).
                self.engine.ledger_mut().begin_phase("replay");
                let gather = self
                    .gather
                    .as_ref()
                    .expect("gather stage precedes the replay stage");
                let radius = self.radius;
                let rng = self.rng;
                for v in 0..n {
                    let ball = &gather.balls[v];
                    let mut nodes: Vec<u32> = ball
                        .edges()
                        .flat_map(|(a, b)| [a, b])
                        .chain(std::iter::once(v as u32))
                        .collect();
                    nodes.sort_unstable();
                    nodes.dedup();
                    let local_of = |id: u32| nodes.binary_search(&id).expect("ball node");
                    let mut builder = GraphBuilder::new(nodes.len());
                    for (a, b) in ball.edges() {
                        builder
                            .add_edge(
                                NodeId::new(local_of(a) as u32),
                                NodeId::new(local_of(b) as u32),
                            )
                            .expect("ball edge is valid");
                    }
                    let ball_graph = builder.build();
                    let coin_ids: Vec<NodeId> = nodes.iter().map(|&id| NodeId::new(id)).collect();
                    let evo = evolve(&ball_graph, &coin_ids, rng, radius as u64);
                    let me = local_of(v as u32);
                    if evo.joined_at[me].is_some() {
                        self.in_mis[v] = true;
                        self.alive[v] = false;
                    } else if evo.removed_at[me].is_some() {
                        self.alive[v] = false;
                    }
                }
                self.stage = LowDegStage::Cleanup;
                Status::Running
            }
            LowDegStage::Cleanup => {
                // Clean-up at the leader.
                self.engine.ledger_mut().begin_phase("cleanup");
                let additions = leader_cleanup(&mut self.engine, g, &self.alive);
                self.residual_nodes = self.alive.iter().filter(|&&a| a).count();
                let mut mis: Vec<NodeId> = (0..n)
                    .filter(|&i| self.in_mis[i])
                    .map(|i| NodeId::new(i as u32))
                    .collect();
                mis.extend(additions);
                mis.sort_unstable();
                self.mis = mis;
                self.stage = LowDegStage::Finished;
                Status::Running
            }
            LowDegStage::Finished => {
                let gather = self
                    .gather
                    .as_ref()
                    .expect("gather stage precedes completion");
                let ledger = self.engine.ledger().clone();
                Status::Done(LowDegResult {
                    mis: self.mis.clone(),
                    rounds: ledger.rounds,
                    ledger,
                    iterations: self.radius as u64,
                    gather_rounds: gather.rounds,
                    gather_steps: gather.steps,
                    max_ball_edges: gather.max_ball_edges,
                    residual_nodes: self.residual_nodes,
                })
            }
        }
    }

    fn save(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.graph_fp);
        w.write_u64(self.seed);
        w.write_f64(self.params.iteration_factor);
        w.write_ledger(self.engine.ledger());
        w.write_u32(self.stage.to_u32());
        w.write_vec_bool(&self.in_mis);
        w.write_vec_bool(&self.alive);
        let raws: Vec<u32> = self.mis.iter().map(|v| v.raw()).collect();
        w.write_vec_u32(&raws);
        w.write_usize(self.residual_nodes);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.expect_u64("graph fingerprint", self.graph_fp)?;
        r.expect_u64("seed", self.seed)?;
        r.expect_f64("iteration_factor", self.params.iteration_factor)?;
        let ledger = r.read_ledger()?;
        self.stage = LowDegStage::from_u32(r.read_u32()?)?;
        self.in_mis = r.read_vec_bool()?;
        self.alive = r.read_vec_bool()?;
        self.mis = r.read_vec_u32()?.into_iter().map(NodeId::new).collect();
        self.residual_nodes = r.read_usize()?;
        let n = self.g.node_count();
        check_node_vec_len("in_mis vector length", self.in_mis.len(), n)?;
        check_node_vec_len("alive vector length", self.alive.len(), n)?;
        // The balls are deterministic in the graph; regenerate them on a
        // scratch engine so its charges don't disturb the restored ledger.
        if self.stage != LowDegStage::Gather {
            let mut scratch = CliqueEngine::strict(n.max(2), standard_bandwidth(n.max(2)));
            self.gather = Some(Self::run_gather(self.g, &mut scratch, self.radius));
        }
        *self.engine.ledger_mut() = ledger;
        Ok(())
    }
}

/// Which branch [`run_theorem_1_1`] took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Lemma 2.15: `Δ ≤ 2^{c√(log₂ n)}` — gather-and-replay.
    LowDegree,
    /// §2.4: sparsified simulation plus clean-up.
    Sparsified,
}

/// The complete Theorem 1.1 algorithm: picks the Lemma 2.15 fast path when
/// `Δ ≤ 2^{c √(log₂ n)}` (with `c = 1`), and the §2.4 simulation otherwise.
///
/// # Example
///
/// ```
/// use cc_mis_core::lowdeg::{run_theorem_1_1, Strategy};
/// use cc_mis_graph::{checks, generators};
///
/// let sparse = generators::cycle(100);
/// let (out, strat) = run_theorem_1_1(&sparse, 3);
/// assert_eq!(strat, Strategy::LowDegree);
/// assert!(checks::is_maximal_independent_set(&sparse, &out.mis));
/// ```
pub fn run_theorem_1_1(g: &Graph, seed: u64) -> (MisOutcome, Strategy) {
    run_theorem_1_1_observed(g, seed, None)
}

/// [`run_theorem_1_1`] with an optional per-round trace observer threaded
/// into whichever branch runs. `None` is exactly the unobserved run.
pub fn run_theorem_1_1_observed(
    g: &Graph,
    seed: u64,
    observer: Option<SharedObserver>,
) -> (MisOutcome, Strategy) {
    drive_observed(AutoExecution::new(g, seed), observer)
}

/// The Theorem 1.1 dispatcher as a step-driven state machine: the case
/// split is decided deterministically at construction, and every call
/// delegates to the chosen branch's execution.
#[derive(Debug)]
pub struct AutoExecution<'a> {
    inner: AutoInner<'a>,
}

#[derive(Debug)]
enum AutoInner<'a> {
    LowDegree(LowDegExecution<'a>),
    Sparsified(CliqueMisExecution<'a>),
}

impl<'a> AutoExecution<'a> {
    /// Picks the branch for `g` (the paper's `Δ + 1 ≤ 2^{√(log₂ n)}` test)
    /// and prepares it; no rounds execute until the first step.
    pub fn new(g: &'a Graph, seed: u64) -> Self {
        let n = g.node_count().max(2) as f64;
        let delta = g.max_degree() as f64;
        let threshold = (n.log2().sqrt()).exp2();
        let inner = if delta + 1.0 <= threshold {
            AutoInner::LowDegree(LowDegExecution::new(g, &LowDegParams::default(), seed))
        } else {
            AutoInner::Sparsified(CliqueMisExecution::new(
                g,
                &CliqueMisParams::default(),
                seed,
            ))
        };
        AutoExecution { inner }
    }

    /// The branch this execution runs.
    pub fn strategy(&self) -> Strategy {
        match &self.inner {
            AutoInner::LowDegree(_) => Strategy::LowDegree,
            AutoInner::Sparsified(_) => Strategy::Sparsified,
        }
    }
}

impl Execution for AutoExecution<'_> {
    type Outcome = (MisOutcome, Strategy);

    fn algorithm_id(&self) -> &'static str {
        "auto"
    }

    fn attach_observer(&mut self, observer: SharedObserver) {
        match &mut self.inner {
            AutoInner::LowDegree(e) => e.attach_observer(observer),
            AutoInner::Sparsified(e) => e.attach_observer(observer),
        }
    }

    fn step(&mut self) -> Status<(MisOutcome, Strategy)> {
        match &mut self.inner {
            AutoInner::LowDegree(e) => match e.step() {
                Status::Running => Status::Running,
                Status::Done(res) => Status::Done((
                    MisOutcome {
                        mis: res.mis,
                        ledger: res.ledger,
                        iterations: res.iterations,
                    },
                    Strategy::LowDegree,
                )),
            },
            AutoInner::Sparsified(e) => match e.step() {
                Status::Running => Status::Running,
                Status::Done(res) => Status::Done((
                    MisOutcome {
                        mis: res.mis,
                        ledger: res.ledger,
                        iterations: res.iterations,
                    },
                    Strategy::Sparsified,
                )),
            },
        }
    }

    fn save(&self, w: &mut SnapshotWriter) {
        match &self.inner {
            AutoInner::LowDegree(e) => {
                w.write_u32(0);
                e.save(w);
            }
            AutoInner::Sparsified(e) => {
                w.write_u32(1);
                e.save(w);
            }
        }
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let expected = match &self.inner {
            AutoInner::LowDegree(_) => 0,
            AutoInner::Sparsified(_) => 1,
        };
        r.expect_u32("dispatcher branch", expected)?;
        match &mut self.inner {
            AutoInner::LowDegree(e) => e.restore(r),
            AutoInner::Sparsified(e) => e.restore(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ghaffari16::evolve as global_evolve;
    use cc_mis_graph::{checks, generators, Graph};

    #[test]
    fn lowdeg_is_mis_on_sparse_families() {
        let graphs = vec![
            generators::cycle(40),
            generators::grid(6, 6),
            generators::random_regular(60, 3, 2),
            generators::balanced_tree(3, 3),
            Graph::empty(9),
        ];
        for g in &graphs {
            for seed in 0..3 {
                let out = run_lowdeg(g, &LowDegParams::default(), seed);
                assert!(
                    checks::is_maximal_independent_set(g, &out.mis),
                    "{g:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn local_replay_matches_global_evolution() {
        // Every node's locally-replayed fate must equal the global run's —
        // the Lemma 2.13 induction for the Ghaffari'16 dynamic.
        let g = generators::random_regular(80, 4, 7);
        let seed = 3;
        let params = LowDegParams::default();
        let radius = iterations_for_max_degree(g.max_degree(), params.iteration_factor);
        let rng = SharedRandomness::new(seed);
        let global = global_evolve(&g, &g.nodes().collect::<Vec<_>>(), rng, radius);
        let res = run_lowdeg(&g, &params, seed);
        // Joiners of the main part are exactly the global joiners (cleanup
        // additions come from the residual, which is disjoint).
        for v in global.mis() {
            assert!(res.mis.contains(&v), "global joiner {v} missing");
        }
    }

    #[test]
    fn gather_dominates_rounds_on_bounded_degree() {
        // Lemma 2.15's round bill is O(log log Δ) *routing invocations*;
        // each invocation's measured rounds depend on how far below n^δ the
        // balls sit (at n = 200 the ratio ball_bits/(n·B) is what it is).
        // The structural claims we can check at this scale: gathering is
        // the dominant cost, the doubling step count is logarithmic, and
        // the total stays within the measured envelope.
        let g = generators::cycle(200);
        let res = run_lowdeg(&g, &LowDegParams::default(), 0);
        assert!(
            res.gather_rounds * 2 >= res.rounds,
            "gather ({}) should dominate total ({})",
            res.gather_rounds,
            res.rounds
        );
        assert!(res.rounds <= 2500, "round envelope blew up: {}", res.rounds);
    }

    #[test]
    fn dispatcher_picks_branches_correctly() {
        let sparse = generators::random_regular(300, 3, 1);
        let (_, s1) = run_theorem_1_1(&sparse, 0);
        assert_eq!(s1, Strategy::LowDegree);

        let dense = generators::erdos_renyi_gnp(300, 0.3, 1);
        let (_, s2) = run_theorem_1_1(&dense, 0);
        assert_eq!(s2, Strategy::Sparsified);
    }

    #[test]
    fn dispatcher_output_is_mis_both_ways() {
        for (g, seed) in [
            (generators::grid(7, 7), 0u64),
            (generators::erdos_renyi_gnp(150, 0.2, 2), 1),
        ] {
            let (out, _) = run_theorem_1_1(&g, seed);
            assert!(checks::is_maximal_independent_set(&g, &out.mis));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::random_regular(70, 4, 5);
        let a = run_lowdeg(&g, &LowDegParams::default(), 9);
        let b = run_lowdeg(&g, &LowDegParams::default(), 9);
        assert_eq!(a.mis, b.mis);
        assert_eq!(a.rounds, b.rounds);
    }
}
