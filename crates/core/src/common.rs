//! Shared result types and probability-exponent arithmetic.
//!
//! Every marking/beeping probability in the paper's algorithms is a power of
//! two: `p` starts at `1/2` and is only ever halved or doubled (capped at
//! `1/2`). We therefore represent probabilities by their negative exponent
//! `e` (`p = 2^{-e}`, `e ≥ 1`), which makes state exact (no floating-point
//! drift between the direct execution and the simulated replay) and makes a
//! probability message exactly [`cc_mis_sim::bits::PROBABILITY_EXPONENT_BITS`]
//! bits.

use cc_mis_graph::{Graph, NodeId};
use cc_mis_sim::bits::MAX_PROBABILITY_EXPONENT;
use cc_mis_sim::snapshot::SnapshotError;
use cc_mis_sim::RoundLedger;

/// The probability exponent at the start of every algorithm (`p = 1/2`).
pub const INITIAL_PEXP: u32 = 1;

/// Converts a probability exponent to the probability `2^{-e}` it encodes.
///
/// # Example
///
/// ```
/// use cc_mis_core::common::p_of;
/// assert_eq!(p_of(1), 0.5);
/// assert_eq!(p_of(3), 0.125);
/// ```
#[inline]
pub fn p_of(pexp: u32) -> f64 {
    (-(pexp as f64)).exp2()
}

/// Halves the probability (increments the exponent), saturating at the
/// encoding cap `2^-64`, below which a beep can no longer occur in any
/// realistic execution length.
#[inline]
pub fn halve(pexp: u32) -> u32 {
    (pexp + 1).min(MAX_PROBABILITY_EXPONENT)
}

/// Doubles the probability (decrements the exponent), capped at `1/2`
/// (`min{2 p, 1/2}` in the paper).
#[inline]
pub fn double_capped(pexp: u32) -> u32 {
    pexp.saturating_sub(1).max(INITIAL_PEXP)
}

/// The iteration budget `⌈factor · log₂(Δ + 2)⌉` used by the `O(log Δ)`
/// phases of every algorithm; `factor` plays the paper's constant `C`.
///
/// `Δ + 2` keeps the budget positive on edgeless graphs.
pub fn iterations_for_max_degree(max_degree: usize, factor: f64) -> u64 {
    (((max_degree + 2) as f64).log2() * factor).ceil() as u64
}

/// Outcome of a complete MIS computation.
#[derive(Debug, Clone)]
pub struct MisOutcome {
    /// The maximal independent set, sorted by node id.
    pub mis: Vec<NodeId>,
    /// Communication/rounds tally of the run.
    pub ledger: RoundLedger,
    /// Iterations of the underlying local process that were executed
    /// (0 for purely sequential algorithms).
    pub iterations: u64,
}

impl MisOutcome {
    /// Convenience: the number of rounds charged to the ledger.
    pub fn rounds(&self) -> u64 {
        self.ledger.rounds
    }
}

/// Collects the nodes whose membership flag is set, in ascending id order —
/// the canonical way executions turn a per-node `in_mis` vector into the
/// sorted [`MisOutcome::mis`] list.
pub(crate) fn mis_from_flags(g: &Graph, in_mis: &[bool]) -> Vec<NodeId> {
    g.nodes().filter(|v| in_mis[v.index()]).collect()
}

/// Rejects a restored per-node vector whose length does not match this
/// graph's node count. The graph fingerprint check catches every realistic
/// mismatch first; this guards the snapshot payload itself so corruption
/// surfaces as a named error instead of an index panic mid-run.
pub(crate) fn check_node_vec_len(
    field: &'static str,
    got: usize,
    n: usize,
) -> Result<(), SnapshotError> {
    if got != n {
        return Err(SnapshotError::Mismatch {
            field,
            expected: n.to_string(),
            found: got.to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_arithmetic() {
        assert_eq!(halve(1), 2);
        assert_eq!(double_capped(2), 1);
        // Cap at 1/2: doubling from 1/2 stays at 1/2.
        assert_eq!(double_capped(1), 1);
        // Saturate at the encoding floor.
        assert_eq!(halve(MAX_PROBABILITY_EXPONENT), MAX_PROBABILITY_EXPONENT);
        assert!(p_of(MAX_PROBABILITY_EXPONENT) > 0.0);
    }

    #[test]
    fn halve_then_double_is_identity_away_from_bounds() {
        for e in 2..60 {
            assert_eq!(double_capped(halve(e)), e);
            assert_eq!(halve(double_capped(e)), e);
        }
    }

    #[test]
    fn iteration_budget_grows_with_degree() {
        let small = iterations_for_max_degree(2, 4.0);
        let large = iterations_for_max_degree(1 << 16, 4.0);
        assert!(small >= 1);
        assert!(large > small);
        assert_eq!(iterations_for_max_degree(0, 1.0), 1);
    }

    #[test]
    fn p_of_matches_exponent() {
        for e in 1..30u32 {
            let expected = 1.0 / (1u64 << e) as f64;
            assert_eq!(p_of(e), expected);
        }
    }
}
