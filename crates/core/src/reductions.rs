//! The standard reductions the paper cites ([Linial, SICOMP'92], §1.1):
//! maximal matching and `(Δ+1)`-vertex-coloring via MIS.
//!
//! *"Due to well-known reductions `[28]`, these algorithms directly lead to
//! `O(log n)` round algorithms for a few other classic problems, including
//! maximal matching, `(Δ+1)`-vertex coloring, and `(2Δ-1)`-edge coloring."*
//!
//! * **Maximal matching** — an MIS of the line graph `L(G)` is exactly a
//!   maximal matching of `G`.
//! * **`(Δ+1)`-coloring** — an MIS of the product `G □ K_{Δ+1}` (per-vertex
//!   color-cliques plus per-color copies of `G`) picks exactly one color
//!   per vertex, properly: at most one per vertex by the color-clique, at
//!   least one because a vertex with all `Δ+1` colors blocked would need
//!   `Δ+1` distinctly-colored neighbors among at most `Δ`.
//!
//! Both take the MIS solver as a closure, so any algorithm in this crate
//! (Luby, Ghaffari'16, the Theorem 1.1 clique algorithm, …) inherits the
//! reduction — experiment E11 measures their round overhead.

use cc_mis_graph::ops::{coloring_product, decode_product, line_graph};
use cc_mis_graph::{Graph, NodeId};

/// Computes a maximal matching of `g` by running `mis` on the line graph.
///
/// Returns edge endpoint pairs `(u, v)` with `u < v`.
///
/// # Example
///
/// ```
/// use cc_mis_core::greedy::greedy_mis;
/// use cc_mis_core::reductions::maximal_matching_via_mis;
/// use cc_mis_graph::{checks, generators};
///
/// let g = generators::cycle(9);
/// let m = maximal_matching_via_mis(&g, |lg| greedy_mis(lg));
/// assert!(checks::is_maximal_matching(&g, &m));
/// ```
pub fn maximal_matching_via_mis<F>(g: &Graph, mis: F) -> Vec<(NodeId, NodeId)>
where
    F: FnOnce(&Graph) -> Vec<NodeId>,
{
    let (lg, edge_of) = line_graph(g);
    let independent_edges = mis(&lg);
    independent_edges
        .into_iter()
        .map(|e| edge_of[e.index()])
        .collect()
}

/// Error returned by [`coloring_via_mis`] when the palette was too small
/// for the reduction's guarantee (`palette ≥ Δ+1`) and some vertex ended up
/// uncolored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UncoloredVertex {
    /// A vertex that received no color.
    pub vertex: NodeId,
    /// The palette size that was attempted.
    pub palette: usize,
}

impl std::fmt::Display for UncoloredVertex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "vertex {} received no color from a palette of {} (palette must exceed the maximum degree)",
            self.vertex, self.palette
        )
    }
}

impl std::error::Error for UncoloredVertex {}

/// Computes a proper `palette`-coloring of `g` by running `mis` on the
/// coloring product `G □ K_palette`. Guaranteed to succeed when
/// `palette ≥ Δ+1`.
///
/// # Errors
///
/// Returns [`UncoloredVertex`] if some vertex gets no color, which can only
/// happen when `palette ≤ Δ`.
///
/// # Example
///
/// ```
/// use cc_mis_core::greedy::greedy_mis;
/// use cc_mis_core::reductions::coloring_via_mis;
/// use cc_mis_graph::{checks, generators};
///
/// let g = generators::grid(4, 4); // Δ = 4
/// let colors = coloring_via_mis(&g, 5, |p| greedy_mis(p))?;
/// assert!(checks::is_proper_coloring(&g, &colors, 5));
/// # Ok::<(), cc_mis_core::reductions::UncoloredVertex>(())
/// ```
pub fn coloring_via_mis<F>(g: &Graph, palette: usize, mis: F) -> Result<Vec<usize>, UncoloredVertex>
where
    F: FnOnce(&Graph) -> Vec<NodeId>,
{
    assert!(palette >= 1, "palette must be nonempty");
    let product = coloring_product(g, palette);
    let selected = mis(&product);
    let mut colors: Vec<Option<usize>> = vec![None; g.node_count()];
    for id in selected {
        let (v, c) = decode_product(id, palette);
        debug_assert!(colors[v.index()].is_none(), "two colors for {v}");
        colors[v.index()] = Some(c);
    }
    colors
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            c.ok_or(UncoloredVertex {
                vertex: NodeId::new(i as u32),
                palette,
            })
        })
        .collect()
}

/// Computes a proper `(2Δ-1)`-edge-coloring of `g` — the third classic
/// problem §1.1 lists — by vertex-coloring the line graph `L(G)`:
/// `Δ(L(G)) ≤ 2Δ - 2`, so a `(Δ(L)+1)`-coloring of `L(G)` uses at most
/// `2Δ - 1` colors and adjacent edges of `G` never share one.
///
/// Returns `(edge, color)` pairs covering every edge of `g`, colored with
/// colors `< max(1, 2Δ-1)`.
///
/// # Example
///
/// ```
/// use cc_mis_core::greedy::greedy_mis;
/// use cc_mis_core::reductions::edge_coloring_via_mis;
/// use cc_mis_graph::generators;
///
/// let g = generators::cycle(8); // Δ = 2 ⇒ at most 3 colors
/// let colored = edge_coloring_via_mis(&g, greedy_mis);
/// assert_eq!(colored.len(), 8);
/// assert!(colored.iter().all(|&(_, c)| c < 3));
/// ```
pub fn edge_coloring_via_mis<F>(g: &Graph, mis: F) -> Vec<((NodeId, NodeId), usize)>
where
    F: FnOnce(&Graph) -> Vec<NodeId>,
{
    let (lg, edge_of) = line_graph(g);
    let palette = (2 * g.max_degree()).saturating_sub(1).max(1);
    let colors =
        coloring_via_mis(&lg, palette, mis).expect("palette 2Δ-1 ≥ Δ(L)+1 always succeeds");
    colors
        .into_iter()
        .enumerate()
        .map(|(i, c)| (edge_of[i], c))
        .collect()
}

/// Verifies an edge coloring: covers every edge exactly once, and edges
/// sharing an endpoint have distinct colors.
pub fn is_proper_edge_coloring(
    g: &Graph,
    colored: &[((NodeId, NodeId), usize)],
    palette: usize,
) -> bool {
    if colored.len() != g.edge_count() {
        return false;
    }
    let mut seen = std::collections::BTreeSet::new();
    for &((u, v), c) in colored {
        if !g.has_edge(u, v) || c >= palette {
            return false;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if !seen.insert(key) {
            return false;
        }
    }
    // Endpoint conflicts.
    let mut at_vertex: Vec<Vec<usize>> = vec![Vec::new(); g.node_count()];
    for &((u, v), c) in colored {
        for w in [u, v] {
            if at_vertex[w.index()].contains(&c) {
                return false;
            }
            at_vertex[w.index()].push(c);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_mis;
    use crate::luby::{run_luby, LubyParams};
    use cc_mis_graph::{checks, generators, Graph};

    #[test]
    fn matching_via_greedy_on_families() {
        let graphs = vec![
            generators::cycle(10),
            generators::complete(7),
            generators::star(9),
            generators::grid(4, 4),
            generators::erdos_renyi_gnp(60, 0.1, 1),
            Graph::empty(5),
        ];
        for g in &graphs {
            let m = maximal_matching_via_mis(g, greedy_mis);
            assert!(checks::is_maximal_matching(g, &m), "{g:?}");
        }
    }

    #[test]
    fn matching_via_luby() {
        let g = generators::erdos_renyi_gnp(50, 0.12, 4);
        let m = maximal_matching_via_mis(&g, |lg| run_luby(lg, &LubyParams::for_graph(lg), 7).mis);
        assert!(checks::is_maximal_matching(&g, &m));
    }

    #[test]
    fn coloring_with_delta_plus_one_succeeds() {
        let graphs = vec![
            generators::cycle(11),
            generators::complete(6),
            generators::grid(3, 5),
            generators::erdos_renyi_gnp(40, 0.15, 2),
        ];
        for g in &graphs {
            let palette = g.max_degree() + 1;
            let colors = coloring_via_mis(g, palette, greedy_mis).expect("Δ+1 always colors");
            assert!(checks::is_proper_coloring(g, &colors, palette), "{g:?}");
        }
    }

    #[test]
    fn coloring_complete_graph_needs_full_palette() {
        // K_5 with 4 colors must fail (chromatic number 5).
        let g = generators::complete(5);
        let err = coloring_via_mis(&g, 4, greedy_mis).unwrap_err();
        assert_eq!(err.palette, 4);
        assert!(err.to_string().contains("no color"));
    }

    #[test]
    fn coloring_empty_graph_uses_one_color() {
        let g = Graph::empty(4);
        let colors = coloring_via_mis(&g, 1, greedy_mis).unwrap();
        assert_eq!(colors, vec![0, 0, 0, 0]);
    }

    #[test]
    fn edge_coloring_on_families() {
        let graphs = vec![
            generators::cycle(9),
            generators::star(8),
            generators::complete(6),
            generators::grid(3, 4),
            generators::erdos_renyi_gnp(40, 0.12, 3),
        ];
        for g in &graphs {
            let palette = (2 * g.max_degree()).saturating_sub(1).max(1);
            let colored = edge_coloring_via_mis(g, greedy_mis);
            assert!(is_proper_edge_coloring(g, &colored, palette), "{g:?}");
        }
    }

    #[test]
    fn edge_coloring_verifier_rejects_bad_inputs() {
        let g = generators::path(3); // edges {0,1},{1,2}
        let e01 = (NodeId::new(0), NodeId::new(1));
        let e12 = (NodeId::new(1), NodeId::new(2));
        // Conflicting colors at vertex 1.
        assert!(!is_proper_edge_coloring(&g, &[(e01, 0), (e12, 0)], 3));
        // Missing an edge.
        assert!(!is_proper_edge_coloring(&g, &[(e01, 0)], 3));
        // Valid.
        assert!(is_proper_edge_coloring(&g, &[(e01, 0), (e12, 1)], 3));
    }

    #[test]
    fn matching_size_on_even_cycle() {
        // A maximal matching of C_{2k} has between k/ *... at least ⌈2k/3⌉/…
        // simple sanity: nonempty and a perfect matching is possible.
        let g = generators::cycle(12);
        let m = maximal_matching_via_mis(&g, greedy_mis);
        assert!(m.len() >= 4 && m.len() <= 6);
    }
}
