//! The MIS algorithm of [Ghaffari, SODA'16] (§2.1 of the paper).
//!
//! Per iteration, each undecided node `v` gets *marked* with probability
//! `p_t(v)`; a marked node with no marked neighbor joins the MIS, and MIS
//! nodes and their neighbors leave the problem. The marking probability
//! follows the dynamic
//!
//! ```text
//! p_{t+1}(v) = p_t(v)/2          if d_t(v) = Σ_{u ∈ N(v)} p_t(u) ≥ 2
//! p_{t+1}(v) = min{2 p_t(v), 1/2} otherwise.
//! ```
//!
//! Each node decides within `O(log deg + log 1/ε)` rounds w.p. `≥ 1-ε`.
//! The paper's §2.1 explains why this dynamic is "too active" to simulate
//! fast in the congested clique — computing `d_t(v)` requires knowing every
//! neighbor's state every round — which motivates the beeping variants of
//! §2.2–2.3. We implement it both as
//!
//! * [`run_ghaffari16`] — a real message-passing CONGEST execution
//!   (2 rounds and one `(p, mark)` exchange per iteration), and
//! * [`run_ghaffari16_clique`] — the `O(log Δ)`-round congested-clique
//!   version of `[13]` cited by §1.1 (run `Θ(log Δ)` iterations, then solve
//!   the shattered remainder at a leader in `O(1)` rounds). This is the
//!   upper bound Theorem 1.1 improves on, and the head-to-head baseline of
//!   experiment E1.
//!
//! [`evolve`] exposes the iteration semantics as a pure function of the
//! shared randomness so the low-degree fast path (§2.5) can replay it
//! locally on gathered neighborhoods; `run_ghaffari16` is tested to agree
//! with it bit-for-bit.

use cc_mis_graph::{Graph, NodeId};
use cc_mis_sim::bits::{standard_bandwidth, PROBABILITY_EXPONENT_BITS};
use cc_mis_sim::clique::CliqueEngine;
use cc_mis_sim::congest::CongestEngine;
use cc_mis_sim::driver::{drive_observed, Execution, Status};
use cc_mis_sim::par_nodes::par_map_nodes;
use cc_mis_sim::rng::{SharedRandomness, Stream, StreamCursor};
use cc_mis_sim::snapshot::{graph_fingerprint, SnapshotError, SnapshotReader, SnapshotWriter};
use cc_mis_sim::SharedObserver;

use crate::cleanup;
use crate::common::{
    check_node_vec_len, double_capped, halve, iterations_for_max_degree, mis_from_flags, p_of,
    MisOutcome, INITIAL_PEXP,
};
use crate::rounds;

/// Parameters for the Ghaffari'16 runners.
#[derive(Debug, Clone, Copy)]
pub struct Ghaffari16Params {
    /// Iteration cap for the standalone CONGEST run (which must finish every
    /// node). Default via [`Ghaffari16Params::for_graph`]: `16 (log₂ n + 2)`.
    pub max_iterations: u64,
    /// Iteration budget of the congested-clique version before the clean-up
    /// step takes over: `⌈clique_factor · log₂(Δ+2)⌉` iterations.
    pub clique_factor: f64,
}

impl Ghaffari16Params {
    /// Sensible defaults for `g`.
    pub fn for_graph(g: &Graph) -> Self {
        let n = g.node_count().max(2) as f64;
        Ghaffari16Params {
            max_iterations: (16.0 * (n.log2() + 2.0)).ceil() as u64,
            clique_factor: 6.0,
        }
    }
}

/// The per-node record of one [`evolve`] execution.
#[derive(Debug, Clone, Default)]
pub struct Evolution {
    /// Iteration at which the node joined the MIS, if it did.
    pub joined_at: Vec<Option<u64>>,
    /// Iteration at which the node left the problem (by joining or by a
    /// neighbor joining), if it did.
    pub removed_at: Vec<Option<u64>>,
    /// Final probability exponents.
    pub pexp: Vec<u32>,
    /// Number of undecided nodes after the last iteration.
    pub undecided: usize,
}

impl Evolution {
    /// The set of nodes that joined the MIS, sorted by id.
    pub fn mis(&self) -> Vec<NodeId> {
        self.joined_at
            .iter()
            .enumerate()
            .filter_map(|(i, j)| j.map(|_| NodeId::new(i as u32)))
            .collect()
    }

    /// The undecided (alive, non-MIS) nodes, sorted by id.
    pub fn residual(&self) -> Vec<NodeId> {
        self.removed_at
            .iter()
            .enumerate()
            .filter(|&(_i, r)| r.is_none())
            .map(|(i, _r)| NodeId::new(i as u32))
            .collect()
    }
}

/// Runs `iterations` iterations of the Ghaffari'16 dynamic as a pure
/// function of the shared randomness. Stops early when every node has
/// decided.
///
/// `coin_ids[i]` is the global identity whose coins local node `i` uses —
/// pass `g.nodes().collect()` for a global run, or the ball's id mapping
/// when replaying a gathered neighborhood (§2.5). The mark coin of node `v`
/// at iteration `t` is `rng.coin(Stream::Beep, coin_ids[v], t)`.
///
/// # Panics
///
/// Panics if `coin_ids.len() != g.node_count()`.
pub fn evolve(g: &Graph, coin_ids: &[NodeId], rng: SharedRandomness, iterations: u64) -> Evolution {
    assert_eq!(
        coin_ids.len(),
        g.node_count(),
        "coin id mapping must cover the graph"
    );
    let n = g.node_count();
    let mut pexp = vec![INITIAL_PEXP; n];
    let mut joined_at: Vec<Option<u64>> = vec![None; n];
    let mut removed_at: Vec<Option<u64>> = vec![None; n];
    let mut undecided = n;

    for t in 0..iterations {
        if undecided == 0 {
            break;
        }
        let alive = |i: usize| removed_at[i].is_none();
        // Marks, from addressable coins.
        let marked: Vec<bool> = par_map_nodes(n, |i| {
            alive(i) && rng.coin(Stream::Beep, coin_ids[i], t) <= p_of(pexp[i])
        });
        // d_t over alive neighbors, and the join rule — per node a pure
        // function of the iteration's snapshots (neighbor order fixes the
        // f64 summation order, so results are thread-count independent).
        let updates = par_map_nodes(n, |i| {
            if !alive(i) {
                return None;
            }
            let v = NodeId::new(i as u32);
            let mut d = 0.0f64;
            let mut neighbor_marked = false;
            for &u in g.neighbors(v) {
                if alive(u.index()) {
                    d += p_of(pexp[u.index()]);
                    neighbor_marked |= marked[u.index()];
                }
            }
            let next = if d >= 2.0 {
                halve(pexp[i])
            } else {
                double_capped(pexp[i])
            };
            Some((marked[i] && !neighbor_marked, next))
        });
        let mut joins: Vec<usize> = Vec::new();
        for (i, update) in updates.into_iter().enumerate() {
            if let Some((join, next)) = update {
                if join {
                    joins.push(i);
                }
                pexp[i] = next;
            }
        }
        // Removals.
        for &i in &joins {
            joined_at[i] = Some(t);
            if removed_at[i].is_none() {
                removed_at[i] = Some(t);
                undecided -= 1;
            }
            for &u in g.neighbors(NodeId::new(i as u32)) {
                if removed_at[u.index()].is_none() {
                    removed_at[u.index()] = Some(t);
                    undecided -= 1;
                }
            }
        }
    }
    Evolution {
        joined_at,
        removed_at,
        pexp,
        undecided,
    }
}

/// Runs Ghaffari'16 to completion in the CONGEST model with real message
/// passing: per iteration, one round exchanging `(p_t, mark)` with each
/// undecided neighbor and one round announcing joins. Two rounds and at most
/// `PROBABILITY_EXPONENT_BITS + 2` bits per edge per iteration.
///
/// # Panics
///
/// Panics if the iteration cap is reached with undecided nodes remaining
/// (a `≪ 1/poly(n)` event under the default cap).
///
/// # Example
///
/// ```
/// use cc_mis_core::ghaffari16::{run_ghaffari16, Ghaffari16Params};
/// use cc_mis_graph::{checks, generators};
///
/// let g = generators::erdos_renyi_gnp(100, 0.1, 2);
/// let out = run_ghaffari16(&g, &Ghaffari16Params::for_graph(&g), 3);
/// assert!(checks::is_maximal_independent_set(&g, &out.mis));
/// ```
pub fn run_ghaffari16(g: &Graph, params: &Ghaffari16Params, seed: u64) -> MisOutcome {
    run_ghaffari16_observed(g, params, seed, None)
}

/// [`run_ghaffari16`] with an optional per-round trace observer attached to
/// the engine. `None` is exactly the unobserved run.
pub fn run_ghaffari16_observed(
    g: &Graph,
    params: &Ghaffari16Params,
    seed: u64,
    observer: Option<SharedObserver>,
) -> MisOutcome {
    drive_observed(Ghaffari16Execution::new(g, params, seed), observer)
}

/// The CONGEST Ghaffari'16 run as a step-driven state machine: one
/// [`Execution::step`] is one iteration ((p, mark) exchange + join round).
#[derive(Debug)]
pub struct Ghaffari16Execution<'a> {
    g: &'a Graph,
    /// Graph fingerprint, computed once at construction so per-checkpoint
    /// `save` calls skip the O(m) edge walk.
    graph_fp: u64,
    params: Ghaffari16Params,
    seed: u64,
    engine: CongestEngine<'a>,
    /// Mark-coin cursor; its position doubles as the iteration count `t`.
    cursor: StreamCursor,
    pexp: Vec<u32>,
    alive: Vec<bool>,
    in_mis: Vec<bool>,
    undecided: usize,
}

impl<'a> Ghaffari16Execution<'a> {
    /// Prepares a run on `g`; no rounds execute until the first step.
    pub fn new(g: &'a Graph, params: &Ghaffari16Params, seed: u64) -> Self {
        let n = g.node_count();
        Ghaffari16Execution {
            g,
            graph_fp: graph_fingerprint(g),
            params: *params,
            seed,
            engine: CongestEngine::strict(g, standard_bandwidth(n)),
            cursor: StreamCursor::new(SharedRandomness::new(seed), Stream::Beep),
            pexp: vec![INITIAL_PEXP; n],
            alive: vec![true; n],
            in_mis: vec![false; n],
            undecided: n,
        }
    }
}

impl Execution for Ghaffari16Execution<'_> {
    type Outcome = MisOutcome;

    fn algorithm_id(&self) -> &'static str {
        "ghaffari16"
    }

    fn attach_observer(&mut self, observer: SharedObserver) {
        self.engine.attach_observer(observer);
    }

    fn step(&mut self) -> Status<MisOutcome> {
        if self.undecided == 0 {
            return Status::Done(MisOutcome {
                mis: mis_from_flags(self.g, &self.in_mis),
                ledger: self.engine.ledger().clone(),
                iterations: self.cursor.position(),
            });
        }
        assert!(
            self.cursor.position() < self.params.max_iterations,
            "Ghaffari'16 failed to terminate within {} iterations",
            self.params.max_iterations
        );
        let g = self.g;
        let n = g.node_count();
        let cursor = self.cursor;
        let alive = &self.alive;
        let pexp = &self.pexp;
        let marked: Vec<bool> = par_map_nodes(n, |i| {
            alive[i] && cursor.coin(NodeId::new(i as u32)) <= p_of(pexp[i])
        });

        // Round 1: exchange (p-exponent, mark bit) with undecided neighbors.
        let mut round = self.engine.begin_round::<(u32, bool)>();
        rounds::broadcast_to_alive_neighbors(
            &mut round,
            g,
            alive,
            |v| {
                let i = v.index();
                alive[i].then(|| (PROBABILITY_EXPONENT_BITS + 1, (pexp[i], marked[i])))
            },
            "(p, mark) fits the bandwidth",
        );
        let inboxes = round.deliver();

        // Per-node update from the delivered inboxes; each inbox is sorted
        // by sender, so the f64 sum order is fixed and the results are
        // independent of the worker-thread count.
        let updates = par_map_nodes(n, |i| {
            if !alive[i] {
                return None;
            }
            let mut d = 0.0f64;
            let mut neighbor_marked = false;
            for &(_, (pe, m)) in &inboxes[i] {
                d += p_of(pe);
                neighbor_marked |= m;
            }
            let next = if d >= 2.0 {
                halve(pexp[i])
            } else {
                double_capped(pexp[i])
            };
            Some((marked[i] && !neighbor_marked, next))
        });
        let mut joins: Vec<usize> = Vec::new();
        for (i, update) in updates.into_iter().enumerate() {
            if let Some((join, next)) = update {
                if join {
                    joins.push(i);
                }
                self.pexp[i] = next;
            }
        }

        // Round 2: joiners announce; joiners and neighbors leave. (`joins`
        // is ascending by construction, so membership is binary-searchable.)
        let alive = &self.alive;
        let mut round = self.engine.begin_round::<()>();
        rounds::broadcast_to_alive_neighbors(
            &mut round,
            g,
            alive,
            |v| joins.binary_search(&v.index()).ok().map(|_| (1, ())),
            "join bit fits",
        );
        let inboxes = round.deliver();
        for &i in &joins {
            self.in_mis[i] = true;
            self.alive[i] = false;
            self.undecided -= 1;
        }
        for v in g.nodes() {
            let i = v.index();
            if self.alive[i] && !inboxes[i].is_empty() {
                self.alive[i] = false;
                self.undecided -= 1;
            }
        }
        self.cursor.advance();
        Status::Running
    }

    fn save(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.graph_fp);
        w.write_u64(self.seed);
        w.write_u64(self.params.max_iterations);
        w.write_f64(self.params.clique_factor);
        w.write_ledger(self.engine.ledger());
        w.write_u64(self.cursor.position());
        w.write_vec_u32(&self.pexp);
        w.write_vec_bool(&self.alive);
        w.write_vec_bool(&self.in_mis);
        w.write_usize(self.undecided);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.expect_u64("graph fingerprint", self.graph_fp)?;
        r.expect_u64("seed", self.seed)?;
        r.expect_u64("max_iterations", self.params.max_iterations)?;
        r.expect_f64("clique_factor", self.params.clique_factor)?;
        *self.engine.ledger_mut() = r.read_ledger()?;
        self.cursor.seek(r.read_u64()?);
        self.pexp = r.read_vec_u32()?;
        self.alive = r.read_vec_bool()?;
        self.in_mis = r.read_vec_bool()?;
        self.undecided = r.read_usize()?;
        let n = self.g.node_count();
        check_node_vec_len("pexp vector length", self.pexp.len(), n)?;
        check_node_vec_len("alive vector length", self.alive.len(), n)?;
        check_node_vec_len("in_mis vector length", self.in_mis.len(), n)?;
        Ok(())
    }
}

/// The `O(log Δ)`-round congested-clique MIS of `[13]` as described in §1.1:
/// run `Θ(log Δ)` iterations of the dynamic (2 clique rounds each), then
/// hand the shattered remainder to a leader (clean-up, `O(1)` rounds).
///
/// This is the algorithm Theorem 1.1 improves on quadratically.
pub fn run_ghaffari16_clique(g: &Graph, params: &Ghaffari16Params, seed: u64) -> MisOutcome {
    run_ghaffari16_clique_observed(g, params, seed, None)
}

/// [`run_ghaffari16_clique`] with an optional per-round trace observer
/// attached to the engine. `None` is exactly the unobserved run.
pub fn run_ghaffari16_clique_observed(
    g: &Graph,
    params: &Ghaffari16Params,
    seed: u64,
    observer: Option<SharedObserver>,
) -> MisOutcome {
    drive_observed(Ghaffari16CliqueExecution::new(g, params, seed), observer)
}

/// The congested-clique Ghaffari'16 baseline as a step-driven state
/// machine. The evolution is a pure function of `(g, seed, budget)` and is
/// recomputed at construction (snapshots never store it); one
/// [`Execution::step`] bills one replayed iteration (2 clique rounds plus
/// the per-edge exchange of that iteration), and a final step runs the
/// leader clean-up.
#[derive(Debug)]
pub struct Ghaffari16CliqueExecution<'a> {
    g: &'a Graph,
    /// Graph fingerprint, computed once at construction so per-checkpoint
    /// `save` calls skip the O(m) edge walk.
    graph_fp: u64,
    params: Ghaffari16Params,
    seed: u64,
    engine: CliqueEngine,
    evo: Evolution,
    executed: u64,
    /// Next iteration to bill; `executed` means the clean-up step is next.
    next_t: u64,
    cleanup_done: bool,
    mis: Vec<NodeId>,
}

impl<'a> Ghaffari16CliqueExecution<'a> {
    /// Prepares a run on `g`: replays the evolution analytically and opens
    /// the iterations phase. No rounds are billed until the first step.
    pub fn new(g: &'a Graph, params: &Ghaffari16Params, seed: u64) -> Self {
        let n = g.node_count();
        let rng = SharedRandomness::new(seed);
        let budget = iterations_for_max_degree(g.max_degree(), params.clique_factor);
        let evo = evolve(g, &g.nodes().collect::<Vec<_>>(), rng, budget);
        let executed = executed_iterations(&evo, budget);
        let mut engine = CliqueEngine::strict(n.max(2), standard_bandwidth(n.max(2)));
        engine.ledger_mut().begin_phase("ghaffari16 iterations");
        Ghaffari16CliqueExecution {
            g,
            graph_fp: graph_fingerprint(g),
            params: *params,
            seed,
            engine,
            evo,
            executed,
            next_t: 0,
            cleanup_done: false,
            mis: Vec::new(),
        }
    }
}

impl Execution for Ghaffari16CliqueExecution<'_> {
    type Outcome = MisOutcome;

    fn algorithm_id(&self) -> &'static str {
        "g16-clique"
    }

    fn attach_observer(&mut self, observer: SharedObserver) {
        self.engine.attach_observer(observer);
    }

    fn step(&mut self) -> Status<MisOutcome> {
        if self.next_t < self.executed {
            // Bill one replayed iteration: 2 clique rounds and one (p, mark)
            // exchange over each directed alive edge — what the CONGEST
            // execution sends at iteration `t`.
            let t = self.next_t;
            let alive_at = |i: usize, t: u64| match self.evo.removed_at[i] {
                None => true,
                Some(r) => r >= t,
            };
            let mut directed: u64 = 0;
            for (u, v) in self.g.edges() {
                if alive_at(u.index(), t) && alive_at(v.index(), t) {
                    directed += 2;
                }
            }
            let ledger = self.engine.ledger_mut();
            // conform: allow(R10) -- analytic replay accounting: bills the CONGEST execution's rounds after the fact, no live transport
            ledger.charge_rounds(2);
            // conform: allow(R10) -- analytic replay accounting: per-iteration edge exchange billed from the replayed evolution
            ledger.charge_aggregate(directed, directed * (PROBABILITY_EXPONENT_BITS + 1));
            self.next_t += 1;
            return Status::Running;
        }
        if !self.cleanup_done {
            let n = self.g.node_count();
            let mut alive = vec![false; n];
            for &v in &self.evo.residual() {
                alive[v.index()] = true;
            }
            self.engine.ledger_mut().begin_phase("cleanup");
            let extra = cleanup::leader_cleanup(&mut self.engine, self.g, &alive);
            let mut mis = self.evo.mis();
            mis.extend(extra);
            mis.sort_unstable();
            self.mis = mis;
            self.cleanup_done = true;
            return Status::Running;
        }
        Status::Done(MisOutcome {
            mis: self.mis.clone(),
            ledger: self.engine.ledger().clone(),
            iterations: self.executed,
        })
    }

    fn save(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.graph_fp);
        w.write_u64(self.seed);
        w.write_u64(self.params.max_iterations);
        w.write_f64(self.params.clique_factor);
        w.write_ledger(self.engine.ledger());
        w.write_u64(self.next_t);
        w.write_bool(self.cleanup_done);
        let raw: Vec<u32> = self.mis.iter().map(|v| v.raw()).collect();
        w.write_vec_u32(&raw);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.expect_u64("graph fingerprint", self.graph_fp)?;
        r.expect_u64("seed", self.seed)?;
        r.expect_u64("max_iterations", self.params.max_iterations)?;
        r.expect_f64("clique_factor", self.params.clique_factor)?;
        *self.engine.ledger_mut() = r.read_ledger()?;
        self.next_t = r.read_u64()?;
        self.cleanup_done = r.read_bool()?;
        self.mis = r.read_vec_u32()?.into_iter().map(NodeId::new).collect();
        Ok(())
    }
}

/// Iterations actually executed by an [`evolve`] run with the given budget
/// (it stops early once everyone has decided; the per-node removal records
/// bound when that happened).
fn executed_iterations(evo: &Evolution, budget: u64) -> u64 {
    if evo.undecided > 0 {
        budget
    } else {
        evo.removed_at
            .iter()
            .filter_map(|r| r.map(|t| t + 1))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_mis_graph::{checks, generators, Graph};

    #[test]
    fn congest_run_is_mis_on_families() {
        let graphs = vec![
            generators::cycle(12),
            generators::complete(7),
            generators::star(15),
            generators::erdos_renyi_gnp(90, 0.08, 1),
            generators::disjoint_cliques(4, 5),
            Graph::empty(4),
        ];
        for g in &graphs {
            for seed in 0..3 {
                let out = run_ghaffari16(g, &Ghaffari16Params::for_graph(g), seed);
                assert!(
                    checks::is_maximal_independent_set(g, &out.mis),
                    "{g:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn message_run_matches_pure_evolution() {
        // The CONGEST execution and the pure function must agree exactly —
        // this is the property the local replay of §2.5 relies on.
        for seed in 0..5 {
            let g = generators::erdos_renyi_gnp(60, 0.12, seed + 100);
            let out = run_ghaffari16(&g, &Ghaffari16Params::for_graph(&g), seed);
            let evo = evolve(
                &g,
                &g.nodes().collect::<Vec<_>>(),
                SharedRandomness::new(seed),
                u64::MAX,
            );
            assert_eq!(out.mis, evo.mis(), "seed {seed}");
        }
    }

    #[test]
    fn clique_variant_is_mis() {
        for seed in 0..4 {
            let g = generators::erdos_renyi_gnp(120, 0.1, seed);
            let out = run_ghaffari16_clique(&g, &Ghaffari16Params::for_graph(&g), seed);
            assert!(
                checks::is_maximal_independent_set(&g, &out.mis),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn clique_variant_rounds_scale_with_log_delta_not_n() {
        let g = generators::random_regular(500, 8, 3);
        let out = run_ghaffari16_clique(&g, &Ghaffari16Params::for_graph(&g), 0);
        // budget = 6 * log2(10) ≈ 20 iterations → ≈ 40 rounds + cleanup.
        assert!(out.ledger.rounds < 80, "rounds = {}", out.ledger.rounds);
    }

    #[test]
    fn evolve_respects_iteration_budget() {
        let g = generators::complete(30);
        let evo = evolve(
            &g,
            &g.nodes().collect::<Vec<_>>(),
            SharedRandomness::new(1),
            0,
        );
        assert_eq!(evo.undecided, 30);
        assert!(evo.mis().is_empty());
    }

    #[test]
    fn evolve_probabilities_drop_in_dense_graphs() {
        let g = generators::complete(64);
        let evo = evolve(
            &g,
            &g.nodes().collect::<Vec<_>>(),
            SharedRandomness::new(5),
            3,
        );
        // d ≈ 31.5 ≥ 2 initially, so every undecided node halves thrice.
        for v in evo.residual() {
            assert_eq!(evo.pexp[v.index()], 4, "node {v}");
        }
    }

    #[test]
    fn coin_id_mapping_changes_outcome() {
        let g = generators::cycle(9);
        let ids_a: Vec<NodeId> = g.nodes().collect();
        let ids_b: Vec<NodeId> = (100..109).map(NodeId::new).collect();
        let ea = evolve(&g, &ids_a, SharedRandomness::new(7), 50);
        let eb = evolve(&g, &ids_b, SharedRandomness::new(7), 50);
        // Different coin addresses make different executions (almost surely
        // different MIS on a cycle of 9 — checked for this seed).
        assert_ne!(ea.mis(), eb.mis());
    }
}
