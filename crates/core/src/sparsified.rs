//! The sparsified beeping MIS (§2.3, "Intermediate Algorithm (2)").
//!
//! The beeping MIS of §2.2, restructured into **phases** of
//! `P = √(δ log n)/10` iterations so that it can be simulated fast in the
//! congested clique (§2.4). At the start of each phase every node sends its
//! `p_t(v)` to its neighbors; a node with `d_t(v) ≥ 2^{√(δ log n)/5}` is
//! **super-heavy** for the whole phase. Super-heavy nodes never join the
//! MIS and halve `p` deterministically every iteration (they "hedge" —
//! §2.3's *Stabilizing Super-Heavy Neighborhoods*), which makes their beep
//! pattern predictable for the entire phase. Everyone else behaves exactly
//! as in §2.2.
//!
//! This module is the **canonical semantics**: [`run_sparsified`] executes
//! the algorithm directly (globally), and the congested-clique simulation
//! in [`crate::clique_mis`] is required — and tested — to reproduce its
//! entire state trajectory bit-for-bit under a shared seed.
//!
//! ## Canonical resolution of a paper ambiguity
//!
//! A super-heavy node whose neighbor joins the MIS mid-phase is removed
//! from the problem, yet §2.4 hands its full-phase beep vector to its
//! neighbors up front. We therefore define (see DESIGN.md §2): a super-heavy
//! node honors its beep vector **through the end of its phase**, even if
//! removed mid-phase. It can never join the MIS, so independence and
//! maximality are unaffected; only neighbors' probability updates see the
//! stale beeps, costing at most constants in the round bound.
//!
//! ## Scaling the paper's constants
//!
//! With the paper's literal `P = √(δ log n)/10`, any laptop-scale `n` gives
//! `P < 1`. The *relationships* between the parameters are what the proofs
//! use — the super-heavy threshold is `2^{2P}` and the sampling multiplier
//! is `2^P` — so we keep those exact and expose `P` itself as a parameter
//! (default `max(2, ⌈√(log₂ n)/2⌉)`). Experiment A1 sweeps `P`.

use cc_mis_graph::{Graph, NodeId};
use cc_mis_sim::beeping::BeepingEngine;
use cc_mis_sim::bits::{standard_bandwidth, PROBABILITY_EXPONENT_BITS};
use cc_mis_sim::congest::CongestEngine;
use cc_mis_sim::driver::{drive, drive_observed, Execution, Status};
use cc_mis_sim::par_nodes::par_map_nodes;
use cc_mis_sim::rng::{SharedRandomness, Stream};
use cc_mis_sim::snapshot::{graph_fingerprint, SnapshotError, SnapshotReader, SnapshotWriter};
use cc_mis_sim::{RoundLedger, SharedObserver};

use crate::beeping_mis::{GOLDEN1_D_MAX, GOLDEN2_D_MIN, HEAVY_THRESHOLD};
use crate::common::{
    check_node_vec_len, double_capped, halve, iterations_for_max_degree, p_of, MisOutcome,
    INITIAL_PEXP,
};
use crate::greedy::greedy_mis_on_residual;

/// Parameters of the sparsified algorithm (shared verbatim with the clique
/// simulation, which must match it bit-for-bit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsifiedParams {
    /// Phase length `P` (the paper's `√(δ log n)/10`).
    pub phase_len: usize,
    /// `log₂` of the super-heavy threshold `L` (the paper's `√(δ log n)/5`,
    /// i.e. exactly `2 P` — kept as a separate knob for the ablation).
    pub super_heavy_log2: u32,
    /// Total iteration budget (the paper's `Θ(log Δ)`).
    pub max_iterations: u64,
    /// Whether to record the golden-round trace.
    pub record_trace: bool,
}

impl SparsifiedParams {
    /// Paper-faithful defaults for `g`: `P = max(1, ⌊√(log₂ n)/10⌉)` (the
    /// paper's formula with `δ = 1`; note that for any feasible `n` this is
    /// 1 — the asymptotic phase length only exceeds 1 beyond `n ≈ 2^{400}`),
    /// threshold `2^{2P}`, budget `⌈6 log₂(Δ+2)⌉`.
    ///
    /// Larger `P` exercises the multi-iteration simulation machinery and is
    /// explored by the ablation experiment; it trades rounds for fewer
    /// phases and is only profitable once gathered balls stay far below
    /// `n^δ` (see EXPERIMENTS.md).
    pub fn for_graph(g: &Graph) -> Self {
        let n = g.node_count().max(2) as f64;
        let p = ((n.log2().sqrt() / 10.0).round() as usize).max(1);
        SparsifiedParams {
            phase_len: p,
            super_heavy_log2: (2 * p) as u32,
            max_iterations: iterations_for_max_degree(g.max_degree(), 6.0),
            record_trace: false,
        }
    }

    /// The super-heavy threshold `L = 2^{super_heavy_log2}`.
    pub fn super_heavy_threshold(&self) -> f64 {
        (self.super_heavy_log2 as f64).exp2()
    }
}

/// Per-phase record: who was super-heavy, who was sampled into `S`, and how
/// locally sparse `G[S]` was (the Lemma 2.12 quantity).
#[derive(Debug, Clone)]
pub struct PhaseInfo {
    /// Global iteration index at which the phase began.
    pub start_iteration: u64,
    /// Number of iterations in the phase (the last phase may be short).
    pub len: usize,
    /// Undecided nodes at phase start.
    pub alive_at_start: usize,
    /// Super-heavy nodes of the phase.
    pub super_heavy: usize,
    /// Size of the sampled superset `S`.
    pub sampled: usize,
    /// `max_{s ∈ S} |N(s) ∩ S|` among undecided nodes — Lemma 2.12 bounds
    /// this by `2^{1 + √(δ log n)/2}` w.h.p.
    pub max_s_degree: usize,
}

/// State trajectory of a sparsified run (also the reference the clique
/// simulation is compared against).
#[derive(Debug, Clone)]
pub struct SparsifiedRun {
    /// Nodes that joined the MIS within the budget, sorted by id.
    pub mis: Vec<NodeId>,
    /// Undecided nodes at the end, sorted by id.
    pub residual: Vec<NodeId>,
    /// Iteration at which each node joined, if it did.
    pub joined_at: Vec<Option<u64>>,
    /// Iteration at which each node left the problem, if it did.
    pub removed_at: Vec<Option<u64>>,
    /// Final probability exponents (meaningful for residual nodes).
    pub pexp: Vec<u32>,
    /// Iterations executed.
    pub iterations: u64,
    /// Round/bit tally: 1 exchange round per phase plus 2 beeping rounds per
    /// iteration.
    pub ledger: RoundLedger,
    /// Per-phase sampling statistics.
    pub phases: Vec<PhaseInfo>,
    /// Number of edges between residual nodes (the Lemma 2.11 quantity).
    pub residual_edge_count: usize,
    /// Golden-round / wrong-move counters (empty unless requested).
    pub trace: SparsifiedTrace,
}

/// Golden-round bookkeeping with the §2.3 redefinitions (super-heavy counts
/// as heavy; golden type-1 additionally requires `v ∉ SH_t`).
#[derive(Debug, Clone, Default)]
pub struct SparsifiedTrace {
    /// Golden type-1 rounds per node.
    pub golden1: Vec<u64>,
    /// Golden type-2 rounds per node.
    pub golden2: Vec<u64>,
    /// Iterations each node spent undecided.
    pub undecided_iterations: Vec<u64>,
    /// Iterations each node spent super-heavy.
    pub super_heavy_iterations: Vec<u64>,
}

/// Executes the sparsified algorithm directly (the global reference
/// execution).
///
/// # Example
///
/// ```
/// use cc_mis_core::sparsified::{run_sparsified, SparsifiedParams};
/// use cc_mis_graph::{checks, generators};
///
/// let g = generators::erdos_renyi_gnp(150, 0.08, 4);
/// let run = run_sparsified(&g, &SparsifiedParams::for_graph(&g), 9);
/// assert!(checks::is_independent_set(&g, &run.mis));
/// // After Θ(log Δ) iterations the residual is tiny (Lemma 2.11).
/// assert!(run.residual_edge_count <= 2 * g.node_count());
/// ```
pub fn run_sparsified(g: &Graph, params: &SparsifiedParams, seed: u64) -> SparsifiedRun {
    drive(SparsifiedExecution::new(g, params, seed))
}

/// The sparsified algorithm as a step-driven state machine over the
/// **global** (analytically-charged) execution: one [`Execution::step`] is
/// one full phase of `P` iterations, including the phase-start exchange.
///
/// This execution has no engines; the ledger is charged analytically with
/// the same totals a message-level run produces (validated by the
/// `messaged_execution_matches_global_computation` test). Observers are
/// therefore handled by [`SparsifiedMessagedExecution`] instead —
/// [`run_sparsified_with_cleanup_observed`] dispatches on the observer.
#[derive(Debug)]
pub struct SparsifiedExecution<'a> {
    g: &'a Graph,
    /// Graph fingerprint, computed once at construction so per-checkpoint
    /// `save` calls skip the O(m) edge walk.
    graph_fp: u64,
    params: SparsifiedParams,
    seed: u64,
    rng: SharedRandomness,
    ledger: RoundLedger,
    pexp: Vec<u32>,
    joined_at: Vec<Option<u64>>,
    removed_at: Vec<Option<u64>>,
    undecided: usize,
    phases: Vec<PhaseInfo>,
    trace: SparsifiedTrace,
    t0: u64,
}

impl<'a> SparsifiedExecution<'a> {
    /// Prepares a run on `g`; no phases execute until the first step.
    ///
    /// # Panics
    ///
    /// Panics if `params.phase_len` is zero.
    pub fn new(g: &'a Graph, params: &SparsifiedParams, seed: u64) -> Self {
        assert!(params.phase_len >= 1, "phase length must be at least 1");
        let n = g.node_count();
        let mut trace = SparsifiedTrace::default();
        if params.record_trace {
            trace.golden1 = vec![0; n];
            trace.golden2 = vec![0; n];
            trace.undecided_iterations = vec![0; n];
            trace.super_heavy_iterations = vec![0; n];
        }
        SparsifiedExecution {
            g,
            graph_fp: graph_fingerprint(g),
            params: *params,
            seed,
            rng: SharedRandomness::new(seed),
            ledger: RoundLedger::new(),
            pexp: vec![INITIAL_PEXP; n],
            joined_at: vec![None; n],
            removed_at: vec![None; n],
            undecided: n,
            phases: Vec::new(),
            trace,
            t0: 0,
        }
    }

    fn finish(&self) -> SparsifiedRun {
        let g = self.g;
        let n = g.node_count();
        let mis: Vec<NodeId> = (0..n)
            .filter(|&i| self.joined_at[i].is_some())
            .map(|i| NodeId::new(i as u32))
            .collect();
        let residual: Vec<NodeId> = (0..n)
            .filter(|&i| self.removed_at[i].is_none())
            .map(|i| NodeId::new(i as u32))
            .collect();
        let residual_edge_count = g
            .edges()
            .filter(|&(u, v)| {
                self.removed_at[u.index()].is_none() && self.removed_at[v.index()].is_none()
            })
            .count();
        SparsifiedRun {
            mis,
            residual,
            joined_at: self.joined_at.clone(),
            removed_at: self.removed_at.clone(),
            pexp: self.pexp.clone(),
            iterations: self.t0,
            ledger: self.ledger.clone(),
            phases: self.phases.clone(),
            residual_edge_count,
            trace: self.trace.clone(),
        }
    }
}

impl Execution for SparsifiedExecution<'_> {
    type Outcome = SparsifiedRun;

    fn algorithm_id(&self) -> &'static str {
        "sparsified"
    }

    fn attach_observer(&mut self, _observer: SharedObserver) {
        // The global execution runs no engine rounds; per-round tracing goes
        // through the messaged execution (see the dispatch in
        // `run_sparsified_with_cleanup_observed`).
    }

    fn step(&mut self) -> Status<SparsifiedRun> {
        let g = self.g;
        let n = g.node_count();
        if self.t0 >= self.params.max_iterations || self.undecided == 0 {
            return Status::Done(self.finish());
        }
        let t0 = self.t0;
        let len = (self.params.max_iterations - t0).min(self.params.phase_len as u64) as usize;

        // Phase-start exchange round: every undecided node learns its
        // undecided neighbors' p. One round, PROBABILITY_EXPONENT_BITS per
        // directed alive edge.
        // conform: allow(R10) -- analytic replay accounting per Lemma 2.12: charges computed from the direct execution, no live transport
        self.ledger.charge_round();
        let alive0: Vec<bool> = self.removed_at.iter().map(Option::is_none).collect();
        {
            let alive_directed_edges: u64 = (0..n)
                .filter(|&i| alive0[i])
                .map(|i| {
                    g.neighbors(NodeId::new(i as u32))
                        .iter()
                        .filter(|u| alive0[u.index()])
                        .count() as u64
                })
                .sum();
            // conform: allow(R10) -- analytic replay accounting per Lemma 2.12: charges computed from the direct execution, no live transport
            self.ledger.charge_aggregate(
                alive_directed_edges,
                alive_directed_edges * PROBABILITY_EXPONENT_BITS,
            );
        }
        let d0 = weighted_alive_degree(g, &self.pexp, &alive0);
        let threshold = self.params.super_heavy_threshold();
        let super_heavy: Vec<bool> = (0..n).map(|i| alive0[i] && d0[i] >= threshold).collect();

        // The sampled superset S (the clique algorithm materializes it; the
        // direct run computes it for the phase record and Lemma 2.12 stats).
        let sampled = sample_set(g, &self.rng, &self.pexp, &alive0, &super_heavy, t0, len);
        let max_s_degree = max_degree_within(g, &sampled);
        self.phases.push(PhaseInfo {
            start_iteration: t0,
            len,
            alive_at_start: alive0.iter().filter(|&&a| a).count(),
            super_heavy: super_heavy.iter().filter(|&&s| s).count(),
            sampled: sampled.iter().filter(|&&s| s).count(),
            max_s_degree,
        });

        for k in 0..len {
            let t = t0 + k as u64;
            // Beeps: super-heavy nodes follow their committed schedule for
            // the whole phase (even if removed mid-phase); others beep only
            // while undecided.
            let rng = self.rng;
            let removed_at = &self.removed_at;
            let pexp = &self.pexp;
            let sh = &super_heavy;
            let a0 = &alive0;
            let beeps: Vec<bool> = par_map_nodes(n, |i| {
                let schedule_active = sh[i] || removed_at[i].is_none();
                schedule_active
                    && a0[i]
                    && rng.coin(Stream::Beep, NodeId::new(i as u32), t) <= p_of(pexp[i])
            });
            let heard: Vec<bool> = par_map_nodes(n, |i| {
                g.neighbors(NodeId::new(i as u32))
                    .iter()
                    .any(|u| beeps[u.index()])
            });

            if self.params.record_trace {
                record_trace(
                    g,
                    &self.pexp,
                    &self.removed_at,
                    &super_heavy,
                    &heard,
                    &mut self.trace,
                );
            }

            // Joins: not super-heavy, beeping, hearing silence.
            let joins: Vec<usize> = (0..n)
                .filter(|&i| {
                    self.removed_at[i].is_none() && !super_heavy[i] && beeps[i] && !heard[i]
                })
                .collect();

            // Probability updates for nodes still on their schedule.
            for i in 0..n {
                if super_heavy[i] {
                    self.pexp[i] = halve(self.pexp[i]);
                } else if self.removed_at[i].is_none() {
                    self.pexp[i] = if heard[i] {
                        halve(self.pexp[i])
                    } else {
                        double_capped(self.pexp[i])
                    };
                }
            }

            // Beep accounting: a beep is `degree` 1-bit messages, one per
            // incident link (matching BeepingEngine's convention); R2 beeps
            // come from the joiners.
            for (i, _) in beeps.iter().enumerate().filter(|(_, &b)| b) {
                let deg = g.degree(NodeId::new(i as u32)) as u64;
                // conform: allow(R10) -- analytic replay of beep costs (Lemma 2.13), no live transport behind this charge
                self.ledger.charge_aggregate(deg, deg);
            }
            for &i in &joins {
                let deg = g.degree(NodeId::new(i as u32)) as u64;
                // conform: allow(R10) -- analytic replay of join-beep costs (Lemma 2.13), no live transport behind this charge
                self.ledger.charge_aggregate(deg, deg);
            }

            // Removals (R2).
            for &i in &joins {
                self.joined_at[i] = Some(t);
                if self.removed_at[i].is_none() {
                    self.removed_at[i] = Some(t);
                    self.undecided -= 1;
                }
                for &u in g.neighbors(NodeId::new(i as u32)) {
                    if self.removed_at[u.index()].is_none() {
                        self.removed_at[u.index()] = Some(t);
                        self.undecided -= 1;
                    }
                }
            }
            // conform: allow(R10) -- analytic replay accounting: two beeping rounds per iteration (Lemma 2.13)
            self.ledger.charge_rounds(2);
        }
        self.t0 += len as u64;
        Status::Running
    }

    fn save(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.graph_fp);
        w.write_u64(self.seed);
        w.write_usize(self.params.phase_len);
        w.write_u32(self.params.super_heavy_log2);
        w.write_u64(self.params.max_iterations);
        w.write_bool(self.params.record_trace);
        w.write_ledger(&self.ledger);
        w.write_u64(self.t0);
        w.write_vec_u32(&self.pexp);
        w.write_vec_opt_u64(&self.joined_at);
        w.write_vec_opt_u64(&self.removed_at);
        w.write_usize(self.undecided);
        write_phases(w, &self.phases);
        w.write_vec_u64(&self.trace.golden1);
        w.write_vec_u64(&self.trace.golden2);
        w.write_vec_u64(&self.trace.undecided_iterations);
        w.write_vec_u64(&self.trace.super_heavy_iterations);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.expect_u64("graph fingerprint", self.graph_fp)?;
        r.expect_u64("seed", self.seed)?;
        r.expect_usize("phase_len", self.params.phase_len)?;
        r.expect_u32("super_heavy_log2", self.params.super_heavy_log2)?;
        r.expect_u64("max_iterations", self.params.max_iterations)?;
        r.expect_bool("record_trace", self.params.record_trace)?;
        self.ledger = r.read_ledger()?;
        self.t0 = r.read_u64()?;
        self.pexp = r.read_vec_u32()?;
        self.joined_at = r.read_vec_opt_u64()?;
        self.removed_at = r.read_vec_opt_u64()?;
        self.undecided = r.read_usize()?;
        self.phases = read_phases(r)?;
        self.trace.golden1 = r.read_vec_u64()?;
        self.trace.golden2 = r.read_vec_u64()?;
        self.trace.undecided_iterations = r.read_vec_u64()?;
        self.trace.super_heavy_iterations = r.read_vec_u64()?;
        let n = self.g.node_count();
        check_node_vec_len("pexp vector length", self.pexp.len(), n)?;
        check_node_vec_len("joined_at vector length", self.joined_at.len(), n)?;
        check_node_vec_len("removed_at vector length", self.removed_at.len(), n)?;
        Ok(())
    }
}

/// Serializes the per-phase statistics (count, then each record's fields).
fn write_phases(w: &mut SnapshotWriter, phases: &[PhaseInfo]) {
    w.write_usize(phases.len());
    for p in phases {
        w.write_u64(p.start_iteration);
        w.write_usize(p.len);
        w.write_usize(p.alive_at_start);
        w.write_usize(p.super_heavy);
        w.write_usize(p.sampled);
        w.write_usize(p.max_s_degree);
    }
}

/// Mirror of [`write_phases`].
fn read_phases(r: &mut SnapshotReader<'_>) -> Result<Vec<PhaseInfo>, SnapshotError> {
    let count = r.read_usize()?;
    let mut phases = Vec::new();
    for _ in 0..count {
        phases.push(PhaseInfo {
            start_iteration: r.read_u64()?,
            len: r.read_usize()?,
            alive_at_start: r.read_usize()?,
            super_heavy: r.read_usize()?,
            sampled: r.read_usize()?,
            max_s_degree: r.read_usize()?,
        });
    }
    Ok(phases)
}

/// Runs the sparsified algorithm and finishes the residual graph with a
/// centralized greedy pass (the reference counterpart of the clique
/// algorithm's leader clean-up), yielding a complete MIS.
pub fn run_sparsified_with_cleanup(g: &Graph, params: &SparsifiedParams, seed: u64) -> MisOutcome {
    run_sparsified_with_cleanup_observed(g, params, seed, None)
}

/// [`run_sparsified_with_cleanup`] with an optional per-round trace
/// observer. With an observer attached the beeping phase runs through the
/// real engines ([`run_sparsified_messaged_observed`]) so every round is
/// traced; without one it runs the global computation, exactly as before.
/// The two are tested to produce identical trajectories and ledgers, so
/// tracing changes no reported numbers.
pub fn run_sparsified_with_cleanup_observed(
    g: &Graph,
    params: &SparsifiedParams,
    seed: u64,
    observer: Option<cc_mis_sim::SharedObserver>,
) -> MisOutcome {
    let run = match observer {
        None => run_sparsified(g, params, seed),
        Some(obs) => run_sparsified_messaged_observed(g, params, seed, Some(obs)),
    };
    finish_with_cleanup(g, run)
}

/// Finishes a completed sparsified run with the centralized greedy pass
/// over the residual (no ledger charges — the reference counterpart of the
/// clique algorithm's leader clean-up).
pub fn finish_with_cleanup(g: &Graph, run: SparsifiedRun) -> MisOutcome {
    let mut alive = vec![false; g.node_count()];
    for &v in &run.residual {
        alive[v.index()] = true;
    }
    let residual_edges: Vec<(NodeId, NodeId)> = g
        .edges()
        .filter(|&(u, v)| alive[u.index()] && alive[v.index()])
        .collect();
    let mut mis = run.mis;
    mis.extend(greedy_mis_on_residual(
        g.node_count(),
        &alive,
        &residual_edges,
    ));
    mis.sort_unstable();
    MisOutcome {
        mis,
        ledger: run.ledger,
        iterations: run.iterations,
    }
}

/// Executes the sparsified algorithm through **real engines** — a
/// [`cc_mis_sim::congest::CongestEngine`] round for each phase-start
/// `p`-exchange and a [`cc_mis_sim::beeping::BeepingEngine`] round for each
/// beep — and returns the resulting MIS trajectory.
///
/// This is the validation counterpart of [`run_sparsified`] (which computes
/// the same dynamics globally and charges a hand-written ledger): the two
/// are tested to produce identical trajectories, so the manual accounting
/// provably matches what a message-level execution does.
pub fn run_sparsified_messaged(g: &Graph, params: &SparsifiedParams, seed: u64) -> SparsifiedRun {
    run_sparsified_messaged_observed(g, params, seed, None)
}

/// [`run_sparsified_messaged`] with an optional per-round trace observer.
/// The one observer watches both engines (the CONGEST exchanges and the
/// beeping rounds), in execution order. `None` is exactly the unobserved
/// run.
pub fn run_sparsified_messaged_observed(
    g: &Graph,
    params: &SparsifiedParams,
    seed: u64,
    observer: Option<SharedObserver>,
) -> SparsifiedRun {
    drive_observed(SparsifiedMessagedExecution::new(g, params, seed), observer)
}

/// The sparsified algorithm as a step-driven state machine over **real
/// engines**: one [`Execution::step`] is one full phase (a CONGEST
/// `p`-exchange round plus `2 · P` beeping rounds).
///
/// This is the validation counterpart of [`SparsifiedExecution`]; one
/// attached observer watches both engines, in execution order.
#[derive(Debug)]
pub struct SparsifiedMessagedExecution<'a> {
    g: &'a Graph,
    /// Graph fingerprint, computed once at construction so per-checkpoint
    /// `save` calls skip the O(m) edge walk.
    graph_fp: u64,
    params: SparsifiedParams,
    seed: u64,
    rng: SharedRandomness,
    congest: CongestEngine<'a>,
    beeping: BeepingEngine<'a>,
    pexp: Vec<u32>,
    joined_at: Vec<Option<u64>>,
    removed_at: Vec<Option<u64>>,
    undecided: usize,
    phases: Vec<PhaseInfo>,
    t0: u64,
}

impl<'a> SparsifiedMessagedExecution<'a> {
    /// Prepares a run on `g`; no rounds execute until the first step.
    ///
    /// # Panics
    ///
    /// Panics if `params.phase_len` is zero.
    pub fn new(g: &'a Graph, params: &SparsifiedParams, seed: u64) -> Self {
        assert!(params.phase_len >= 1, "phase length must be at least 1");
        let n = g.node_count();
        SparsifiedMessagedExecution {
            g,
            graph_fp: graph_fingerprint(g),
            params: *params,
            seed,
            rng: SharedRandomness::new(seed),
            congest: CongestEngine::strict(g, standard_bandwidth(n.max(2))),
            beeping: BeepingEngine::new(g),
            pexp: vec![INITIAL_PEXP; n],
            joined_at: vec![None; n],
            removed_at: vec![None; n],
            undecided: n,
            phases: Vec::new(),
            t0: 0,
        }
    }
}

impl Execution for SparsifiedMessagedExecution<'_> {
    type Outcome = SparsifiedRun;

    fn algorithm_id(&self) -> &'static str {
        "sparsified-messaged"
    }

    fn attach_observer(&mut self, observer: SharedObserver) {
        self.congest.attach_observer(observer.clone());
        self.beeping.attach_observer(observer);
    }

    fn step(&mut self) -> Status<SparsifiedRun> {
        let g = self.g;
        let n = g.node_count();
        if self.t0 >= self.params.max_iterations || self.undecided == 0 {
            let mis: Vec<NodeId> = (0..n)
                .filter(|&i| self.joined_at[i].is_some())
                .map(|i| NodeId::new(i as u32))
                .collect();
            let residual: Vec<NodeId> = (0..n)
                .filter(|&i| self.removed_at[i].is_none())
                .map(|i| NodeId::new(i as u32))
                .collect();
            let residual_edge_count = g
                .edges()
                .filter(|&(u, v)| {
                    self.removed_at[u.index()].is_none() && self.removed_at[v.index()].is_none()
                })
                .count();
            let mut ledger = self.congest.ledger().clone();
            ledger.merge(self.beeping.ledger());
            return Status::Done(SparsifiedRun {
                mis,
                residual,
                joined_at: self.joined_at.clone(),
                removed_at: self.removed_at.clone(),
                pexp: self.pexp.clone(),
                iterations: self.t0,
                ledger,
                phases: self.phases.clone(),
                residual_edge_count,
                trace: SparsifiedTrace::default(),
            });
        }
        let t0 = self.t0;
        let len = (self.params.max_iterations - t0).min(self.params.phase_len as u64) as usize;
        let alive0: Vec<bool> = self.removed_at.iter().map(Option::is_none).collect();

        // Phase-start exchange over the real CONGEST engine.
        let pexp_now = &self.pexp;
        let mut round = self.congest.begin_round::<u32>();
        crate::rounds::broadcast_to_alive_neighbors(
            &mut round,
            g,
            &alive0,
            |v| alive0[v.index()].then(|| (PROBABILITY_EXPONENT_BITS, pexp_now[v.index()])),
            "p exponent fits",
        );
        let inboxes = round.deliver();
        let threshold = self.params.super_heavy_threshold();
        let super_heavy: Vec<bool> = (0..n)
            .map(|i| {
                alive0[i] && inboxes[i].iter().map(|&(_, pe)| p_of(pe)).sum::<f64>() >= threshold
            })
            .collect();
        let sampled = sample_set(g, &self.rng, &self.pexp, &alive0, &super_heavy, t0, len);
        self.phases.push(PhaseInfo {
            start_iteration: t0,
            len,
            alive_at_start: alive0.iter().filter(|&&a| a).count(),
            super_heavy: super_heavy.iter().filter(|&&s| s).count(),
            sampled: sampled.iter().filter(|&&s| s).count(),
            max_s_degree: max_degree_within(g, &sampled),
        });

        for k in 0..len {
            let t = t0 + k as u64;
            let rng = self.rng;
            let removed_at = &self.removed_at;
            let pexp = &self.pexp;
            let sh = &super_heavy;
            let a0 = &alive0;
            let beeps: Vec<bool> = par_map_nodes(n, |i| {
                let schedule_active = sh[i] || removed_at[i].is_none();
                schedule_active
                    && a0[i]
                    && rng.coin(Stream::Beep, NodeId::new(i as u32), t) <= p_of(pexp[i])
            });
            // R1 over the real beeping engine.
            let heard = self.beeping.round(&beeps);
            let joins: Vec<usize> = (0..n)
                .filter(|&i| {
                    self.removed_at[i].is_none() && !super_heavy[i] && beeps[i] && !heard[i]
                })
                .collect();
            for i in 0..n {
                if super_heavy[i] {
                    self.pexp[i] = halve(self.pexp[i]);
                } else if self.removed_at[i].is_none() {
                    self.pexp[i] = if heard[i] {
                        halve(self.pexp[i])
                    } else {
                        double_capped(self.pexp[i])
                    };
                }
            }
            // R2: new MIS members beep.
            let mut mis_beeps = vec![false; n];
            for &i in &joins {
                mis_beeps[i] = true;
            }
            self.beeping.round(&mis_beeps);
            for &i in &joins {
                self.joined_at[i] = Some(t);
                if self.removed_at[i].is_none() {
                    self.removed_at[i] = Some(t);
                    self.undecided -= 1;
                }
                for &u in g.neighbors(NodeId::new(i as u32)) {
                    if self.removed_at[u.index()].is_none() {
                        self.removed_at[u.index()] = Some(t);
                        self.undecided -= 1;
                    }
                }
            }
        }
        self.t0 += len as u64;
        Status::Running
    }

    fn save(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.graph_fp);
        w.write_u64(self.seed);
        w.write_usize(self.params.phase_len);
        w.write_u32(self.params.super_heavy_log2);
        w.write_u64(self.params.max_iterations);
        w.write_bool(self.params.record_trace);
        w.write_ledger(self.congest.ledger());
        w.write_ledger(self.beeping.ledger());
        w.write_u64(self.t0);
        w.write_vec_u32(&self.pexp);
        w.write_vec_opt_u64(&self.joined_at);
        w.write_vec_opt_u64(&self.removed_at);
        w.write_usize(self.undecided);
        write_phases(w, &self.phases);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.expect_u64("graph fingerprint", self.graph_fp)?;
        r.expect_u64("seed", self.seed)?;
        r.expect_usize("phase_len", self.params.phase_len)?;
        r.expect_u32("super_heavy_log2", self.params.super_heavy_log2)?;
        r.expect_u64("max_iterations", self.params.max_iterations)?;
        r.expect_bool("record_trace", self.params.record_trace)?;
        *self.congest.ledger_mut() = r.read_ledger()?;
        *self.beeping.ledger_mut() = r.read_ledger()?;
        self.t0 = r.read_u64()?;
        self.pexp = r.read_vec_u32()?;
        self.joined_at = r.read_vec_opt_u64()?;
        self.removed_at = r.read_vec_opt_u64()?;
        self.undecided = r.read_usize()?;
        self.phases = read_phases(r)?;
        let n = self.g.node_count();
        check_node_vec_len("pexp vector length", self.pexp.len(), n)?;
        check_node_vec_len("joined_at vector length", self.joined_at.len(), n)?;
        check_node_vec_len("removed_at vector length", self.removed_at.len(), n)?;
        Ok(())
    }
}

/// The sampled superset `S` for a phase: undecided, not super-heavy, and
/// some coin of the phase falls below `2^len · p_{t0}(v)` (the paper's
/// membership test, with the multiplier matching the possibly-truncated
/// phase length).
pub(crate) fn sample_set(
    g: &Graph,
    rng: &SharedRandomness,
    pexp: &[u32],
    alive0: &[bool],
    super_heavy: &[bool],
    t0: u64,
    len: usize,
) -> Vec<bool> {
    let n = g.node_count();
    par_map_nodes(n, |i| {
        if !alive0[i] || super_heavy[i] {
            return false;
        }
        let bound = (len as f64).exp2() * p_of(pexp[i]);
        (0..len as u64).any(|k| rng.coin(Stream::Beep, NodeId::new(i as u32), t0 + k) <= bound)
    })
}

/// `Σ_{alive u ∈ N(v)} p(u)` for every node.
///
/// Gathers per node over its (sorted) neighbor list — the same ascending
/// accumulation order a sequential scatter would produce, so the f64 sums
/// are bit-identical to it and independent of the worker-thread count.
fn weighted_alive_degree(g: &Graph, pexp: &[u32], alive: &[bool]) -> Vec<f64> {
    par_map_nodes(g.node_count(), |i| {
        g.neighbors(NodeId::new(i as u32))
            .iter()
            .filter(|u| alive[u.index()])
            .map(|u| p_of(pexp[u.index()]))
            .sum()
    })
}

/// Maximum degree of the subgraph induced by `member` (Lemma 2.12 metric).
fn max_degree_within(g: &Graph, member: &[bool]) -> usize {
    let mut best = 0;
    for i in 0..g.node_count() {
        if member[i] {
            let deg = g
                .neighbors(NodeId::new(i as u32))
                .iter()
                .filter(|u| member[u.index()])
                .count();
            best = best.max(deg);
        }
    }
    best
}

fn record_trace(
    g: &Graph,
    pexp: &[u32],
    removed_at: &[Option<u64>],
    super_heavy: &[bool],
    _heard: &[bool],
    trace: &mut SparsifiedTrace,
) {
    let n = g.node_count();
    let alive: Vec<bool> = removed_at.iter().map(Option::is_none).collect();
    let d = weighted_alive_degree(g, pexp, &alive);
    for i in 0..n {
        if !alive[i] {
            continue;
        }
        trace.undecided_iterations[i] += 1;
        if super_heavy[i] {
            trace.super_heavy_iterations[i] += 1;
        }
        // Golden type-1: p = 1/2, not super-heavy, d ≤ 0.02.
        if pexp[i] == INITIAL_PEXP && !super_heavy[i] && d[i] <= GOLDEN1_D_MAX {
            trace.golden1[i] += 1;
        }
        // Golden type-2: d > 0.01 and non-heavy contribution ≥ 0.01 d,
        // where heavy now means super-heavy or d > 10.
        if d[i] > GOLDEN2_D_MIN {
            let dp: f64 = g
                .neighbors(NodeId::new(i as u32))
                .iter()
                .filter(|u| {
                    alive[u.index()] && !super_heavy[u.index()] && d[u.index()] <= HEAVY_THRESHOLD
                })
                .map(|u| p_of(pexp[u.index()]))
                .sum();
            if dp >= GOLDEN2_D_MIN * d[i] {
                trace.golden2[i] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_mis_graph::{checks, generators, Graph};

    #[test]
    fn sparsified_with_cleanup_is_mis_on_families() {
        let graphs = vec![
            generators::cycle(18),
            generators::complete(10),
            generators::star(20),
            generators::grid(5, 6),
            generators::erdos_renyi_gnp(120, 0.07, 2),
            generators::disjoint_cliques(4, 6),
            generators::barabasi_albert(100, 4, 8),
            Graph::empty(7),
        ];
        for g in &graphs {
            for seed in 0..3 {
                let out = run_sparsified_with_cleanup(g, &SparsifiedParams::for_graph(g), seed);
                assert!(
                    checks::is_maximal_independent_set(g, &out.mis),
                    "{g:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn partial_output_is_independent_and_dominates_decided() {
        let g = generators::erdos_renyi_gnp(100, 0.1, 6);
        let run = run_sparsified(&g, &SparsifiedParams::for_graph(&g), 1);
        assert!(checks::is_independent_set(&g, &run.mis));
        // Everyone removed-but-not-joined has an MIS neighbor.
        for i in 0..100 {
            if run.removed_at[i].is_some() && run.joined_at[i].is_none() {
                let v = NodeId::new(i as u32);
                assert!(
                    g.neighbors(v)
                        .iter()
                        .any(|u| run.joined_at[u.index()].is_some()),
                    "node {i}"
                );
            }
        }
    }

    #[test]
    fn shattering_leaves_few_edges() {
        // Lemma 2.11: after Θ(log Δ) iterations, O(n) edges remain. Run on
        // a moderately dense random graph and check the residual is small.
        let n = 300;
        let g = generators::erdos_renyi_gnp(n, 0.1, 3);
        let run = run_sparsified(&g, &SparsifiedParams::for_graph(&g), 5);
        assert!(
            run.residual_edge_count <= n,
            "residual {} edges on {} nodes",
            run.residual_edge_count,
            n
        );
    }

    #[test]
    fn super_heavy_nodes_never_join_while_super_heavy() {
        // A star center with many leaves is super-heavy in phase 1
        // (d = leaves/2 ≥ 2^{2P}); it must not join during that phase.
        let g = generators::star(600);
        let params = SparsifiedParams::for_graph(&g);
        let run = run_sparsified(&g, &params, 2);
        if let Some(j) = run.joined_at[0] {
            assert!(
                j >= params.phase_len as u64,
                "center joined at {j} inside the first phase"
            );
        }
        assert_eq!(run.phases[0].super_heavy, 1);
    }

    #[test]
    fn sampled_set_is_superset_of_beepers() {
        // Every node that joined in a phase must have been in that phase's
        // sampled set S (joining requires beeping, beeping implies sampled).
        let g = generators::erdos_renyi_gnp(150, 0.08, 9);
        let params = SparsifiedParams::for_graph(&g);
        let run = run_sparsified(&g, &params, 4);
        // Recompute phase data to check: phases record sizes only, so check
        // the invariant that joiners are not super-heavy — the stronger
        // sampling invariant is tested in the clique simulation tests.
        for (i, j) in run.joined_at.iter().enumerate() {
            if j.is_some() {
                assert!(run.removed_at[i] == *j, "joiner {i} removal mismatch");
            }
        }
    }

    #[test]
    fn phase_rounds_accounting() {
        let g = generators::erdos_renyi_gnp(80, 0.05, 0);
        let params = SparsifiedParams {
            phase_len: 3,
            super_heavy_log2: 6,
            max_iterations: 7,
            record_trace: false,
        };
        let run = run_sparsified(&g, &params, 0);
        if run.iterations == 7 {
            // Phases of 3, 3, 1 → 3 exchange rounds + 2·7 beeping rounds.
            assert_eq!(run.ledger.rounds, 3 + 14);
            assert_eq!(run.phases.len(), 3);
            assert_eq!(run.phases[2].len, 1);
        }
    }

    #[test]
    fn trace_records_when_enabled() {
        let g = generators::erdos_renyi_gnp(60, 0.1, 1);
        let mut params = SparsifiedParams::for_graph(&g);
        params.record_trace = true;
        let run = run_sparsified(&g, &params, 3);
        assert_eq!(run.trace.golden1.len(), 60);
        let total_golden: u64 = run.trace.golden1.iter().chain(&run.trace.golden2).sum();
        assert!(total_golden > 0, "some golden rounds should occur");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::erdos_renyi_gnp(90, 0.08, 12);
        let p = SparsifiedParams::for_graph(&g);
        let a = run_sparsified(&g, &p, 17);
        let b = run_sparsified(&g, &p, 17);
        assert_eq!(a.mis, b.mis);
        assert_eq!(a.pexp, b.pexp);
        assert_eq!(a.removed_at, b.removed_at);
    }

    #[test]
    fn messaged_execution_matches_global_computation() {
        // The real-engine execution and the global computation must agree
        // on the full trajectory — this validates both the `heard` logic
        // (via BeepingEngine's OR semantics) and the hand-written ledger's
        // subject matter.
        for (name, g) in [
            ("gnp", generators::erdos_renyi_gnp(100, 0.08, 70)),
            ("star", generators::star(120)),
            ("cliques", generators::disjoint_cliques(6, 8)),
        ] {
            for phase_len in [1usize, 3] {
                let params = SparsifiedParams {
                    phase_len,
                    super_heavy_log2: (2 * phase_len) as u32,
                    max_iterations: 12,
                    record_trace: false,
                };
                for seed in 0..2 {
                    let global = run_sparsified(&g, &params, seed);
                    let messaged = run_sparsified_messaged(&g, &params, seed);
                    assert_eq!(global.joined_at, messaged.joined_at, "{name} P={phase_len}");
                    assert_eq!(
                        global.removed_at, messaged.removed_at,
                        "{name} P={phase_len}"
                    );
                    assert_eq!(global.pexp, messaged.pexp, "{name} P={phase_len}");
                    // The hand-written ledger must match the real-engine
                    // execution on every counter: same rounds (1 exchange +
                    // 2 per iteration), same messages, same bits.
                    assert_eq!(
                        global.ledger.rounds, messaged.ledger.rounds,
                        "{name} P={phase_len}: round accounting diverges"
                    );
                    assert_eq!(
                        global.ledger.messages, messaged.ledger.messages,
                        "{name} P={phase_len}: message accounting diverges"
                    );
                    assert_eq!(
                        global.ledger.bits, messaged.ledger.bits,
                        "{name} P={phase_len}: bit accounting diverges"
                    );
                }
            }
        }
    }

    #[test]
    fn default_params_relationships() {
        let g = generators::erdos_renyi_gnp(1000, 0.01, 0);
        let p = SparsifiedParams::for_graph(&g);
        assert!(p.phase_len >= 1);
        assert_eq!(p.super_heavy_log2 as usize, 2 * p.phase_len);
        assert!(p.max_iterations >= 1);
    }
}
