//! 2-ruling sets (related work of §1.1, [Berns–Hegeman–Pemmaraju]).
//!
//! A `k`-ruling set is an independent set such that every vertex is within
//! distance `k` of a member; an MIS is exactly a 1-ruling set. The paper's
//! related work computes 2-ruling sets in `O(log log n)` expected rounds of
//! the congested clique; we provide the clean structural reduction instead:
//! **an MIS of the square graph `G²` is a 2-ruling set of `G`** (independent
//! in `G²` ⊇ `G`, and every vertex is within `G²`-distance 1 — i.e.
//! `G`-distance 2 — of the set). In the congested clique, `G²` is
//! computable in `O(1)` rounds (each node ships each incident edge to each
//! neighbor — the Lemma 2.14 packet bound), after which any clique MIS
//! algorithm finishes the job; composing with Theorem 1.1 gives a
//! `Õ(√(log Δ))`-round 2-ruling set.

use cc_mis_graph::ops::square;
use cc_mis_graph::{Graph, NodeId};
use cc_mis_sim::bits::{node_id_bits, standard_bandwidth};
use cc_mis_sim::clique::CliqueEngine;
use cc_mis_sim::routing::{route, Packet};
use cc_mis_sim::RoundLedger;

use crate::clique_mis::{run_clique_mis, CliqueMisParams};

/// Result of [`two_ruling_set`].
#[derive(Debug, Clone)]
pub struct RulingSetResult {
    /// The 2-ruling set, sorted by id.
    pub set: Vec<NodeId>,
    /// Total clique rounds: squaring plus the MIS on `G²`.
    pub rounds: u64,
    /// Combined ledger.
    pub ledger: RoundLedger,
}

/// Computes a 2-ruling set of `g` in the congested clique: square the graph
/// (`O(1)` rounds via Lenzen routing of the per-edge packets), then run the
/// Theorem 1.1 MIS on `G²`.
///
/// # Example
///
/// ```
/// use cc_mis_core::ruling_set::two_ruling_set;
/// use cc_mis_graph::{checks, generators};
///
/// let g = generators::erdos_renyi_gnp(120, 0.05, 2);
/// let out = two_ruling_set(&g, 9);
/// assert!(checks::is_k_ruling_set(&g, &out.set, 2));
/// ```
pub fn two_ruling_set(g: &Graph, seed: u64) -> RulingSetResult {
    let n = g.node_count();
    let mut engine = CliqueEngine::strict(n.max(2), standard_bandwidth(n.max(2)));
    engine.ledger_mut().begin_phase("squaring");

    // Distributed squaring: every node ships each incident edge to each
    // neighbor; afterwards each node knows all edges at distance ≤ 1 and
    // hence its G² adjacency. We charge the packet exchange honestly and
    // build the square centrally (the information flow is what costs).
    let id_bits = node_id_bits(n.max(2)).max(1);
    let mut packets: Vec<Packet<(u32, u32)>> = Vec::new();
    for v in g.nodes() {
        for &u in g.neighbors(v) {
            for &w in g.neighbors(v) {
                if u != w {
                    packets.push(Packet {
                        src: v,
                        dst: u,
                        bits: 2 * id_bits,
                        payload: (v.raw(), w.raw()),
                    });
                }
            }
        }
    }
    let _ = route(&mut engine, packets).expect("squaring packets are well-formed");
    let g2 = square(g);

    // MIS on the square via the Theorem 1.1 algorithm.
    let mis = run_clique_mis(&g2, &CliqueMisParams::default(), seed);
    let mut ledger = engine.into_ledger();
    ledger.merge(&mis.ledger);
    RulingSetResult {
        set: mis.mis,
        rounds: ledger.rounds,
        ledger,
    }
}

/// Computes a `k`-ruling set of `g` (for `k ≥ 1`) as an MIS of the power
/// graph `G^k`, using the supplied MIS solver.
///
/// Correctness: an MIS `M` of `G^k` is independent in `G ⊆ G^k`, and every
/// vertex has a `G^k`-neighbor (or itself) in `M`, i.e. a member within
/// `G`-distance `k`. `k = 1` degenerates to plain MIS.
///
/// This generalizes the related work of §1.1 ([Berns et al.] compute
/// 2-ruling sets, [Hegeman et al.] 3-ruling sets); in the congested clique
/// `G^k` is obtainable in `O(log k)` rounds by graph exponentiation
/// (Lemma 2.14), after which any clique MIS algorithm applies.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Example
///
/// ```
/// use cc_mis_core::greedy::greedy_mis;
/// use cc_mis_core::ruling_set::k_ruling_set_via_mis;
/// use cc_mis_graph::{checks, generators};
///
/// let g = generators::path(30);
/// let set = k_ruling_set_via_mis(&g, 3, greedy_mis);
/// assert!(checks::is_k_ruling_set(&g, &set, 3));
/// ```
pub fn k_ruling_set_via_mis<F>(g: &Graph, k: usize, mis: F) -> Vec<NodeId>
where
    F: FnOnce(&Graph) -> Vec<NodeId>,
{
    assert!(k >= 1, "k must be at least 1");
    let gk = cc_mis_graph::ops::power(g, k);
    mis(&gk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_mis_graph::{checks, generators, Graph};

    #[test]
    fn two_ruling_on_families() {
        let graphs = vec![
            generators::cycle(20),
            generators::star(15),
            generators::grid(5, 5),
            generators::erdos_renyi_gnp(80, 0.06, 3),
            generators::disjoint_cliques(4, 5),
            Graph::empty(6),
        ];
        for g in &graphs {
            for seed in 0..2 {
                let out = two_ruling_set(g, seed);
                assert!(checks::is_k_ruling_set(g, &out.set, 2), "{g:?} seed {seed}");
            }
        }
    }

    #[test]
    fn ruling_set_is_sparser_than_mis() {
        // On a long path the 2-ruling set can (and typically does) use
        // fewer vertices than an MIS; at minimum it is never larger than
        // an MIS of the same graph computed greedily.
        let g = generators::path(60);
        let out = two_ruling_set(&g, 1);
        let mis = crate::greedy::greedy_mis(&g);
        assert!(out.set.len() <= mis.len());
        assert!(checks::is_k_ruling_set(&g, &out.set, 2));
        assert!(!checks::is_k_ruling_set(&g, &out.set, 0));
    }

    #[test]
    fn k_ruling_sets_verify_for_all_k() {
        let g = generators::erdos_renyi_gnp(70, 0.05, 8);
        for k in 1..=4 {
            let set = k_ruling_set_via_mis(&g, k, crate::greedy::greedy_mis);
            assert!(checks::is_k_ruling_set(&g, &set, k), "k = {k}");
        }
    }

    #[test]
    fn larger_k_never_needs_more_vertices() {
        // MIS of G^k for growing k rules larger balls; on a path the set
        // sizes are monotonically non-increasing for greedy order.
        let g = generators::path(50);
        let mut prev = usize::MAX;
        for k in 1..=4 {
            let set = k_ruling_set_via_mis(&g, k, crate::greedy::greedy_mis);
            assert!(set.len() <= prev, "k = {k}");
            prev = set.len();
        }
    }

    #[test]
    fn one_ruling_is_plain_mis() {
        let g = generators::cycle(17);
        let a = k_ruling_set_via_mis(&g, 1, crate::greedy::greedy_mis);
        let b = crate::greedy::greedy_mis(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn rounds_accounted() {
        let g = generators::cycle(30);
        let out = two_ruling_set(&g, 0);
        assert!(out.rounds > 0);
        assert_eq!(out.rounds, out.ledger.rounds);
    }
}
