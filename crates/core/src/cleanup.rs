//! The `O(1)`-round leader clean-up (second part of the §2.4 algorithm).
//!
//! After the main phase leaves a residual graph with `O(n)` edges
//! (Lemma 2.11), every undecided node ships its residual edges to a leader
//! using Lenzen routing; the leader solves the residual instance centrally
//! and informs the new MIS members. The paper: *"we make each node in B send
//! its G`[B]` edges to the leader node … At the end, the leader computes an
//! MIS S_B of G`[B]` and informs those MIS nodes."*

use cc_mis_graph::{Graph, NodeId};
use cc_mis_sim::bits::node_id_bits;
use cc_mis_sim::clique::CliqueEngine;
use cc_mis_sim::routing::{route, Packet};

use crate::greedy::greedy_mis_on_residual;

/// Runs the leader clean-up on the residual graph induced by `alive`,
/// charging the engine for every round. Returns the nodes the leader adds
/// to the MIS, sorted by id.
///
/// Round bill: 1 round for aliveness reporting, the measured Lenzen-routing
/// rounds for edge collection (`O(1)` whenever the residual has `O(n)`
/// edges), and 1 round to inform the selected nodes.
///
/// # Panics
///
/// Panics if `alive.len()` differs from the node count or the engine is
/// smaller than the graph.
pub fn leader_cleanup(engine: &mut CliqueEngine, g: &Graph, alive: &[bool]) -> Vec<NodeId> {
    let n = g.node_count();
    assert_eq!(alive.len(), n, "alive mask must cover the graph");
    assert!(
        engine.node_count() >= n.max(1),
        "engine too small for the graph"
    );
    if n == 0 {
        return Vec::new();
    }
    let leader = NodeId::new(0);

    // Round 1: every alive node reports to the leader (the leader knows its
    // own state locally).
    let mut round = engine.begin_round::<()>();
    for v in g.nodes() {
        if alive[v.index()] && v != leader {
            round.send(v, leader, 1, ()).expect("alive bit fits");
        }
    }
    round.deliver();

    // Residual edges travel to the leader via Lenzen routing; the lower
    // endpoint of each alive-alive edge is responsible for it.
    let id_bits = node_id_bits(n).max(1);
    let packets: Vec<Packet<(u32, u32)>> = g
        .edges()
        .filter(|&(u, v)| alive[u.index()] && alive[v.index()])
        .map(|(u, v)| Packet {
            src: u,
            dst: leader,
            bits: 2 * id_bits,
            payload: (u.raw(), v.raw()),
        })
        .collect();
    let (inboxes, _) = route(engine, packets).expect("cleanup packets are well-formed");
    let residual_edges: Vec<(NodeId, NodeId)> = inboxes[leader.index()]
        .iter()
        .map(|p| (NodeId::new(p.payload.0), NodeId::new(p.payload.1)))
        .collect();

    // Leader solves the residual instance centrally.
    let additions = greedy_mis_on_residual(n, alive, &residual_edges);

    // Final round: the leader informs the selected nodes.
    let mut round = engine.begin_round::<()>();
    for &v in &additions {
        if v != leader {
            round.send(leader, v, 1, ()).expect("selection bit fits");
        }
    }
    round.deliver();

    additions
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_mis_graph::{checks, generators};
    use cc_mis_sim::bits::standard_bandwidth;

    fn engine_for(n: usize) -> CliqueEngine {
        CliqueEngine::strict(n.max(2), standard_bandwidth(n.max(2)))
    }

    #[test]
    fn cleanup_solves_a_whole_graph() {
        let g = generators::erdos_renyi_gnp(50, 0.1, 1);
        let alive = vec![true; 50];
        let mut engine = engine_for(50);
        let mis = leader_cleanup(&mut engine, &g, &alive);
        assert!(checks::is_maximal_independent_set(&g, &mis));
        assert!(engine.ledger().rounds >= 2);
    }

    #[test]
    fn cleanup_respects_dead_nodes() {
        let g = generators::complete(6);
        // Only 2 and 4 are undecided; they are adjacent in K6 so exactly one
        // is chosen.
        let mut alive = vec![false; 6];
        alive[2] = true;
        alive[4] = true;
        let mut engine = engine_for(6);
        let mis = leader_cleanup(&mut engine, &g, &alive);
        assert_eq!(mis, vec![NodeId::new(2)]);
    }

    #[test]
    fn cleanup_of_empty_residual_is_cheap() {
        let g = generators::cycle(8);
        let alive = vec![false; 8];
        let mut engine = engine_for(8);
        let mis = leader_cleanup(&mut engine, &g, &alive);
        assert!(mis.is_empty());
        // Aliveness round + inform round; no routing rounds.
        assert_eq!(engine.ledger().rounds, 2);
    }

    #[test]
    fn cleanup_handles_leader_alive() {
        let g = generators::path(3);
        let alive = vec![true; 3];
        let mut engine = engine_for(3);
        let mis = leader_cleanup(&mut engine, &g, &alive);
        assert_eq!(mis, vec![NodeId::new(0), NodeId::new(2)]);
    }

    #[test]
    fn sparse_residual_routes_in_constant_rounds() {
        // O(n) residual edges → O(1) routing rounds.
        let g = generators::erdos_renyi_gnm(200, 300, 7);
        let alive = vec![true; 200];
        let mut engine = engine_for(200);
        let mis = leader_cleanup(&mut engine, &g, &alive);
        assert!(checks::is_maximal_independent_set(&g, &mis));
        assert!(
            engine.ledger().rounds <= 12,
            "expected O(1) rounds, got {}",
            engine.ledger().rounds
        );
    }
}
