//! A **local computation algorithm** (LCA) for MIS, built from the paper's
//! locality analysis.
//!
//! §1.2 of the paper points out that Theorem 2.1's *local* guarantee —
//! node `v` decides within `O(log deg(v) + log 1/ε)` iterations, depending
//! only on randomness within its 2-hop neighborhood — is exactly the
//! ingredient that turns a distributed algorithm into a *local computation
//! algorithm* in the sense of [Rubinfeld et al., ICS'11] / [Alon et al.,
//! SODA'12] (via the [Parnas–Ron, TCS'07] reduction): to answer "is `v` in
//! the MIS?", probe only `v`'s vicinity and replay the algorithm there.
//!
//! [`MisOracle`] implements that query model over the §2.2 beeping
//! dynamic: a query BFS-probes a ball of radius `2T` around `v` (removal
//! information travels 2 hops per iteration), replays `T` iterations
//! locally, and returns `v`'s fate. If `v` is still undecided — a
//! probability-`ε` event by Theorem 2.1 — the budget doubles and the query
//! retries, so answers are always decided and **globally consistent**:
//! every query agrees with the single full execution under the same seed
//! (tested below).
//!
//! The per-query probe count is `O(deg^{O(log deg + log 1/ε)})` — constant
//! for constant-degree graphs, polylogarithmic probes in favorable
//! regimes, and (as §1.2 notes) improving this in *high-degree* graphs via
//! local sparsification is exactly the open direction the paper suggests.

use std::collections::VecDeque;

use cc_mis_graph::{Graph, GraphBuilder, NodeId};
use cc_mis_sim::SharedRandomness;

use crate::beeping_mis::evolve_beeping;
use crate::common::iterations_for_max_degree;

/// The answer to an MIS membership query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisAnswer {
    /// The queried node is in the MIS.
    InMis,
    /// The queried node has an MIS neighbor.
    Dominated,
}

/// Work performed by a single query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryStats {
    /// Adjacency-list probes performed (the LCA cost measure).
    pub probes: usize,
    /// Nodes in the final gathered ball.
    pub ball_nodes: usize,
    /// Edges in the final gathered ball.
    pub ball_edges: usize,
    /// Ball radius of the final (successful) attempt.
    pub radius: usize,
    /// Replay iterations of the final attempt.
    pub iterations: u64,
    /// Number of attempts (1 unless the initial budget was insufficient).
    pub attempts: u32,
}

/// A stateless MIS membership oracle over a fixed `(graph, seed)` pair.
///
/// All queries are answered consistently with one global execution of the
/// beeping MIS under `seed`.
///
/// # Example
///
/// ```
/// use cc_mis_core::lca::{MisAnswer, MisOracle};
/// use cc_mis_graph::generators;
///
/// let g = generators::cycle(100);
/// let oracle = MisOracle::new(&g, 7);
/// let (answer, stats) = oracle.query(cc_mis_graph::NodeId::new(3));
/// assert!(matches!(answer, MisAnswer::InMis | MisAnswer::Dominated));
/// // Bounded-degree graph ⇒ the ball (and hence the probe count) is tiny
/// // compared to n.
/// assert!(stats.probes < g.node_count());
/// ```
#[derive(Debug, Clone)]
pub struct MisOracle<'g> {
    graph: &'g Graph,
    rng: SharedRandomness,
    initial_iterations: u64,
}

impl<'g> MisOracle<'g> {
    /// Creates an oracle with an adaptive starting budget
    /// `T₀ = ⌈log₂(Δ+2)⌉` that doubles until the node decides.
    ///
    /// Starting *small* is the classic LCA move: by Theorem 2.1 the
    /// decision time has an exponential tail beyond `O(log deg)`, so the
    /// expected total probe count is dominated by the first successful
    /// attempt's ball (`d^{O(log d)}`), while a conservative fixed budget
    /// of `C log Δ` would make *every* query pay the worst-case radius —
    /// on expander-like graphs that radius covers the entire graph.
    pub fn new(graph: &'g Graph, seed: u64) -> Self {
        let t = iterations_for_max_degree(graph.max_degree(), 1.0);
        Self::with_budget(graph, seed, t)
    }

    /// Creates an oracle with an explicit initial iteration budget (it
    /// still doubles on the rare undecided outcome).
    pub fn with_budget(graph: &'g Graph, seed: u64, iterations: u64) -> Self {
        MisOracle {
            graph,
            rng: SharedRandomness::new(seed),
            initial_iterations: iterations.max(1),
        }
    }

    /// Answers whether `v` is in the MIS of the global execution,
    /// probing only `v`'s vicinity.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn query(&self, v: NodeId) -> (MisAnswer, QueryStats) {
        assert!(
            v.index() < self.graph.node_count(),
            "query node out of range"
        );
        let mut iterations = self.initial_iterations;
        let mut attempts = 0u32;
        let mut total_probes = 0usize;
        loop {
            attempts += 1;
            // Fate through T iterations is determined by the 2T-hop ball
            // (join/removal information travels 2 hops per iteration).
            let radius = (2 * iterations) as usize;
            let (ball, ball_ids, probes, saturated) = self.probe_ball(v, radius);
            total_probes += probes;
            let evo = evolve_beeping(
                &ball,
                &ball_ids,
                self.rng,
                if saturated { u64::MAX } else { iterations },
            );
            let me = ball_ids.binary_search(&v).expect("center is in its ball");
            let answer = if evo.joined_at[me].is_some() {
                Some(MisAnswer::InMis)
            } else if evo.removed_at[me].is_some() {
                Some(MisAnswer::Dominated)
            } else {
                None
            };
            if let Some(answer) = answer {
                return (
                    answer,
                    QueryStats {
                        probes: total_probes,
                        ball_nodes: ball.node_count(),
                        ball_edges: ball.edge_count(),
                        radius,
                        iterations: if saturated { evo_len(&evo) } else { iterations },
                        attempts,
                    },
                );
            }
            // Theorem 2.1: undecided after T has probability ≤ ε; retry
            // with a doubled budget (and hence doubled radius).
            iterations *= 2;
        }
    }

    /// BFS-probes the `radius`-ball around `v`. Returns the ball subgraph,
    /// the sorted global ids of its nodes (the coin-id mapping), the probe
    /// count, and whether the ball saturated the whole component (in which
    /// case the replay is exact for unlimited iterations).
    fn probe_ball(&self, v: NodeId, radius: usize) -> (Graph, Vec<NodeId>, usize, bool) {
        let g = self.graph;
        // BTreeMap, not HashMap: ball probing sits on the replay path, and
        // the deterministic-replay contract (conform R1) bans unordered
        // iteration there.
        let mut dist = std::collections::BTreeMap::new();
        dist.insert(v, 0usize);
        let mut queue = VecDeque::from([v]);
        let mut probes = 0usize;
        let mut frontier_open = false;
        while let Some(u) = queue.pop_front() {
            let d = dist[&u];
            if d >= radius {
                frontier_open = true;
                continue;
            }
            probes += 1; // one adjacency-list probe per expanded node
            for &w in g.neighbors(u) {
                if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(w) {
                    e.insert(d + 1);
                    queue.push_back(w);
                }
            }
        }
        // BTreeMap iteration is already id-sorted, so this is the
        // coin-id mapping directly.
        let ids: Vec<NodeId> = dist.keys().copied().collect();
        let local_of = |id: NodeId| ids.binary_search(&id).expect("ball node");
        let mut b = GraphBuilder::new(ids.len());
        for &u in &ids {
            // Only expand edges whose lower endpoint was actually probed
            // (nodes at the boundary were not expanded).
            if dist[&u] < radius {
                for &w in g.neighbors(u) {
                    if let Some(_dw) = dist.get(&w) {
                        let (a, c) = (local_of(u).min(local_of(w)), local_of(u).max(local_of(w)));
                        if a != c {
                            b.add_edge(NodeId::new(a as u32), NodeId::new(c as u32))
                                .expect("ball edge");
                        }
                    }
                }
            }
        }
        (b.build(), ids, probes, !frontier_open)
    }
}

/// Highest decided iteration in an evolution (for stats on saturated runs).
fn evo_len(evo: &crate::beeping_mis::BeepingEvolution) -> u64 {
    evo.removed_at
        .iter()
        .filter_map(|r| r.map(|t| t + 1))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beeping_mis::{run_beeping, BeepingParams};
    use cc_mis_graph::{checks, generators};

    #[test]
    fn answers_match_the_global_execution() {
        for (name, g) in [
            ("cycle", generators::cycle(60)),
            ("regular", generators::random_regular(80, 4, 1)),
            ("gnp", generators::erdos_renyi_gnp(70, 0.06, 2)),
            ("tree", generators::balanced_tree(2, 5)),
        ] {
            let seed = 5;
            let global = run_beeping(
                &g,
                &BeepingParams {
                    max_iterations: 10_000,
                    record_trace: false,
                },
                seed,
            );
            assert!(global.residual.is_empty());
            let oracle = MisOracle::new(&g, seed);
            for v in g.nodes() {
                let (answer, _) = oracle.query(v);
                let expected = if global.joined_at[v.index()].is_some() {
                    MisAnswer::InMis
                } else {
                    MisAnswer::Dominated
                };
                assert_eq!(answer, expected, "{name}: node {v}");
            }
        }
    }

    #[test]
    fn answers_assemble_into_an_mis() {
        let g = generators::erdos_renyi_gnp(90, 0.05, 9);
        let oracle = MisOracle::new(&g, 3);
        let mis: Vec<NodeId> = g
            .nodes()
            .filter(|&v| matches!(oracle.query(v).0, MisAnswer::InMis))
            .collect();
        assert!(checks::is_maximal_independent_set(&g, &mis));
    }

    #[test]
    fn probes_are_sublinear_on_bounded_degree_graphs() {
        // The LCA selling point: per-query work independent of n for
        // bounded degree.
        let small = generators::cycle(200);
        let large = generators::cycle(4000);
        let o_small = MisOracle::new(&small, 1);
        let o_large = MisOracle::new(&large, 1);
        let p_small = o_small.query(NodeId::new(100)).1.probes;
        let p_large = o_large.query(NodeId::new(100)).1.probes;
        assert!(p_large < large.node_count() / 4, "probes {p_large}");
        // Same degree ⇒ similar ball sizes regardless of n.
        assert!(
            p_large <= 4 * p_small.max(8),
            "probes grew with n: {p_small} -> {p_large}"
        );
    }

    #[test]
    fn stats_are_internally_consistent() {
        let g = generators::random_regular(100, 3, 4);
        let oracle = MisOracle::new(&g, 2);
        let (_, stats) = oracle.query(NodeId::new(7));
        assert!(stats.ball_nodes >= 1);
        assert!(stats.attempts >= 1);
        assert!(stats.radius >= 2);
        assert!(stats.probes >= 1);
    }

    #[test]
    fn tiny_budget_still_terminates_via_doubling() {
        let g = generators::complete(20);
        let oracle = MisOracle::with_budget(&g, 8, 1);
        for v in g.nodes() {
            let (answer, stats) = oracle.query(v);
            let _ = answer;
            assert!(stats.attempts >= 1);
        }
        // Exactly one node of a clique is in the MIS.
        let in_mis = g
            .nodes()
            .filter(|&v| matches!(oracle.query(v).0, MisAnswer::InMis))
            .count();
        assert_eq!(in_mis, 1);
    }

    #[test]
    fn isolated_node_is_in_mis() {
        let g = cc_mis_graph::Graph::empty(3);
        let oracle = MisOracle::new(&g, 0);
        for v in g.nodes() {
            assert_eq!(oracle.query(v).0, MisAnswer::InMis);
        }
    }
}
