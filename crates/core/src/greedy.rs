//! Sequential greedy MIS.
//!
//! The folklore linear-time algorithm: scan vertices in a fixed order and
//! take each vertex whose neighbors are all untaken. It serves three roles
//! here: a ground-truth oracle for tests, the leader's subroutine in the
//! clean-up step of §2.4 (the leader receives the `O(n)`-edge residual graph
//! and solves it centrally), and the centralized finisher of the low-degree
//! fast path (§2.5).

use cc_mis_graph::{Graph, NodeId};

/// Greedy MIS scanning vertices in id order.
///
/// # Example
///
/// ```
/// use cc_mis_core::greedy::greedy_mis;
/// use cc_mis_graph::{checks, generators};
///
/// let g = generators::cycle(7);
/// let mis = greedy_mis(&g);
/// assert!(checks::is_maximal_independent_set(&g, &mis));
/// ```
pub fn greedy_mis(g: &Graph) -> Vec<NodeId> {
    let order: Vec<NodeId> = g.nodes().collect();
    greedy_mis_with_order(g, &order)
}

/// Greedy MIS scanning vertices in the given order (a permutation of a
/// subset of the vertices; vertices not listed are never taken but still
/// block their listed neighbors — pass a full permutation for a true MIS).
///
/// # Panics
///
/// Panics if `order` contains an out-of-range vertex.
pub fn greedy_mis_with_order(g: &Graph, order: &[NodeId]) -> Vec<NodeId> {
    let mut blocked = vec![false; g.node_count()];
    let mut mis = Vec::new();
    for &v in order {
        if !blocked[v.index()] {
            mis.push(v);
            blocked[v.index()] = true;
            for &u in g.neighbors(v) {
                blocked[u.index()] = true;
            }
        }
    }
    mis.sort_unstable();
    mis
}

/// Greedy MIS over an explicit residual instance: `alive` flags the
/// undecided vertices; `edges` are the residual edges (both endpoints
/// alive). This is exactly the input the clean-up leader of §2.4 assembles
/// from routed packets.
///
/// Vertices with `alive[v] == false` are ignored entirely.
pub fn greedy_mis_on_residual(n: usize, alive: &[bool], edges: &[(NodeId, NodeId)]) -> Vec<NodeId> {
    assert_eq!(alive.len(), n, "alive mask length must be n");
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(u, v) in edges {
        debug_assert!(alive[u.index()] && alive[v.index()]);
        adj[u.index()].push(v.raw());
        adj[v.index()].push(u.raw());
    }
    let mut blocked = vec![false; n];
    let mut mis = Vec::new();
    for v in 0..n {
        if alive[v] && !blocked[v] {
            mis.push(NodeId::new(v as u32));
            blocked[v] = true;
            for &u in &adj[v] {
                blocked[u as usize] = true;
            }
        }
    }
    mis
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_mis_graph::{checks, generators};

    #[test]
    fn greedy_is_mis_on_families() {
        let graphs = vec![
            generators::cycle(9),
            generators::complete(6),
            generators::star(8),
            generators::grid(4, 5),
            generators::erdos_renyi_gnp(80, 0.1, 3),
            generators::disjoint_cliques(4, 5),
            Graph::empty(5),
        ];
        for g in &graphs {
            let mis = greedy_mis(g);
            assert!(checks::is_maximal_independent_set(g, &mis), "{g:?}");
        }
    }

    use cc_mis_graph::Graph;

    #[test]
    fn id_order_takes_lowest_ids() {
        let g = generators::path(4);
        assert_eq!(greedy_mis(&g), vec![NodeId::new(0), NodeId::new(2)]);
    }

    #[test]
    fn custom_order_changes_selection() {
        let g = generators::path(3); // 0-1-2
        let mis = greedy_mis_with_order(&g, &[NodeId::new(1), NodeId::new(0), NodeId::new(2)]);
        assert_eq!(mis, vec![NodeId::new(1)]);
        assert!(checks::is_maximal_independent_set(&g, &mis));
    }

    #[test]
    fn residual_variant_ignores_dead_vertices() {
        // 5 vertices; 2 is dead; residual edges form 0-1 and 3-4.
        let alive = [true, true, false, true, true];
        let edges = [
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(3), NodeId::new(4)),
        ];
        let mis = greedy_mis_on_residual(5, &alive, &edges);
        assert_eq!(mis, vec![NodeId::new(0), NodeId::new(3)]);
    }

    #[test]
    fn residual_variant_takes_isolated_alive() {
        let alive = [true, false, true];
        let mis = greedy_mis_on_residual(3, &alive, &[]);
        assert_eq!(mis, vec![NodeId::new(0), NodeId::new(2)]);
    }

    #[test]
    fn clique_yields_single_vertex() {
        let g = generators::complete(10);
        assert_eq!(greedy_mis(&g).len(), 1);
    }
}
