//! The determinism contract of `cc_mis_sim::par_nodes`: for a fixed seed,
//! every algorithm that adopted `par_map_nodes` produces *bit-identical*
//! results whether the per-node steps run sequentially (the
//! `CC_MIS_THREADS=1` escape hatch) or on a real worker pool.
//!
//! Everything lives in one `#[test]` because the thread-count override is
//! process-global; a single test body keeps the forced-pool and
//! forced-sequential runs strictly ordered.

use cc_mis_core::beeping_mis::{run_beeping, BeepingParams};
use cc_mis_core::clique_mis::{run_clique_mis, CliqueMisParams};
use cc_mis_core::ghaffari16::{run_ghaffari16, run_ghaffari16_clique, Ghaffari16Params};
use cc_mis_core::sparsified::{run_sparsified_with_cleanup, SparsifiedParams};
use cc_mis_graph::generators;
use cc_mis_sim::par_nodes::set_thread_override;

fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    set_thread_override(Some(threads));
    let out = f();
    set_thread_override(None);
    out
}

#[test]
fn multithreaded_runs_are_bit_identical_to_sequential() {
    let g = generators::erdos_renyi_gnp(400, 0.035, 17);

    for seed in [1u64, 2, 3] {
        // Theorem 1.1 simulation (gather + parallel local replay).
        let params = CliqueMisParams::default();
        let seq = with_threads(1, || run_clique_mis(&g, &params, seed));
        let par = with_threads(4, || run_clique_mis(&g, &params, seed));
        assert_eq!(seq.mis, par.mis, "clique MIS diverged (seed {seed})");
        assert_eq!(
            seq.rounds, par.rounds,
            "clique rounds diverged (seed {seed})"
        );
        assert_eq!(
            seq.ledger, par.ledger,
            "clique ledger diverged (seed {seed})"
        );
        assert_eq!(seq.iterations, par.iterations);
        assert_eq!(
            seq.joined_at, par.joined_at,
            "join times diverged (seed {seed})"
        );
        assert_eq!(
            seq.removed_at, par.removed_at,
            "removal times diverged (seed {seed})"
        );
        assert_eq!(seq.residual_nodes, par.residual_nodes);
        assert_eq!(seq.residual_edges, par.residual_edges);

        // Ghaffari'16, CONGEST and clique variants (parallel mark/update).
        let gp = Ghaffari16Params::for_graph(&g);
        let seq = with_threads(1, || run_ghaffari16(&g, &gp, seed));
        let par = with_threads(4, || run_ghaffari16(&g, &gp, seed));
        assert_eq!(seq.mis, par.mis, "g16 MIS diverged (seed {seed})");
        assert_eq!(seq.ledger, par.ledger);
        assert_eq!(seq.iterations, par.iterations);
        let seq = with_threads(1, || run_ghaffari16_clique(&g, &gp, seed));
        let par = with_threads(4, || run_ghaffari16_clique(&g, &gp, seed));
        assert_eq!(seq.mis, par.mis, "g16-clique MIS diverged (seed {seed})");
        assert_eq!(seq.ledger, par.ledger);

        // Direct beeping run (parallel beep draws and d sums).
        let bp = BeepingParams::for_graph(&g);
        let seq = with_threads(1, || run_beeping(&g, &bp, seed));
        let par = with_threads(4, || run_beeping(&g, &bp, seed));
        assert_eq!(seq.mis, par.mis, "beeping MIS diverged (seed {seed})");
        assert_eq!(seq.iterations, par.iterations);

        // Sparsified beeping with cleanup (parallel sampling and degrees).
        let sp = SparsifiedParams::for_graph(&g);
        let seq = with_threads(1, || run_sparsified_with_cleanup(&g, &sp, seed));
        let par = with_threads(4, || run_sparsified_with_cleanup(&g, &sp, seed));
        assert_eq!(seq.mis, par.mis, "sparsified MIS diverged (seed {seed})");
        assert_eq!(seq.ledger, par.ledger);
        assert_eq!(seq.iterations, par.iterations);
    }
}
