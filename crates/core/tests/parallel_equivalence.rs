//! The determinism contract of `cc_mis_sim::par_nodes`: for a fixed seed,
//! every algorithm that adopted `par_map_nodes` produces *bit-identical*
//! results whether the per-node steps run sequentially (the
//! `CC_MIS_THREADS=1` escape hatch) or on a real worker pool.
//!
//! The thread-count override is process-global, so every test here takes
//! [`OVERRIDE_LOCK`] to keep the forced-pool and forced-sequential runs of
//! the different tests strictly ordered.

use std::sync::Mutex;

use cc_mis_core::beeping_mis::{run_beeping, run_beeping_to_completion, BeepingParams};
use cc_mis_core::clique_mis::{
    run_clique_mis, run_clique_mis_outcome, CliqueMisExecution, CliqueMisParams,
};
use cc_mis_core::ghaffari16::{run_ghaffari16, run_ghaffari16_clique, Ghaffari16Params};
use cc_mis_core::lowdeg::{run_lowdeg, run_theorem_1_1, LowDegParams};
use cc_mis_core::luby::{run_luby, LubyParams};
use cc_mis_core::sparsified::{run_sparsified_with_cleanup, SparsifiedParams};
use cc_mis_graph::{generators, Graph, NodeId};
use cc_mis_sim::clique::CliqueEngine;
use cc_mis_sim::congest::CongestEngine;
use cc_mis_sim::driver::{resume, snapshot};
use cc_mis_sim::par_nodes::set_thread_override;
use cc_mis_sim::{drive, drive_with_checkpoints, RoundLedger};

/// Serializes the tests of this file (the override is process-global).
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    set_thread_override(Some(threads));
    let out = f();
    set_thread_override(None);
    out
}

#[test]
fn multithreaded_runs_are_bit_identical_to_sequential() {
    let _guard = lock();
    let g = generators::erdos_renyi_gnp(400, 0.035, 17);

    for seed in [1u64, 2, 3] {
        // Theorem 1.1 simulation (gather + parallel local replay).
        let params = CliqueMisParams::default();
        let seq = with_threads(1, || run_clique_mis(&g, &params, seed));
        let par = with_threads(4, || run_clique_mis(&g, &params, seed));
        assert_eq!(seq.mis, par.mis, "clique MIS diverged (seed {seed})");
        assert_eq!(
            seq.rounds, par.rounds,
            "clique rounds diverged (seed {seed})"
        );
        assert_eq!(
            seq.ledger, par.ledger,
            "clique ledger diverged (seed {seed})"
        );
        assert_eq!(seq.iterations, par.iterations);
        assert_eq!(
            seq.joined_at, par.joined_at,
            "join times diverged (seed {seed})"
        );
        assert_eq!(
            seq.removed_at, par.removed_at,
            "removal times diverged (seed {seed})"
        );
        assert_eq!(seq.residual_nodes, par.residual_nodes);
        assert_eq!(seq.residual_edges, par.residual_edges);

        // Ghaffari'16, CONGEST and clique variants (parallel mark/update).
        let gp = Ghaffari16Params::for_graph(&g);
        let seq = with_threads(1, || run_ghaffari16(&g, &gp, seed));
        let par = with_threads(4, || run_ghaffari16(&g, &gp, seed));
        assert_eq!(seq.mis, par.mis, "g16 MIS diverged (seed {seed})");
        assert_eq!(seq.ledger, par.ledger);
        assert_eq!(seq.iterations, par.iterations);
        let seq = with_threads(1, || run_ghaffari16_clique(&g, &gp, seed));
        let par = with_threads(4, || run_ghaffari16_clique(&g, &gp, seed));
        assert_eq!(seq.mis, par.mis, "g16-clique MIS diverged (seed {seed})");
        assert_eq!(seq.ledger, par.ledger);

        // Direct beeping run (parallel beep draws and d sums).
        let bp = BeepingParams::for_graph(&g);
        let seq = with_threads(1, || run_beeping(&g, &bp, seed));
        let par = with_threads(4, || run_beeping(&g, &bp, seed));
        assert_eq!(seq.mis, par.mis, "beeping MIS diverged (seed {seed})");
        assert_eq!(seq.iterations, par.iterations);

        // Sparsified beeping with cleanup (parallel sampling and degrees).
        let sp = SparsifiedParams::for_graph(&g);
        let seq = with_threads(1, || run_sparsified_with_cleanup(&g, &sp, seed));
        let par = with_threads(4, || run_sparsified_with_cleanup(&g, &sp, seed));
        assert_eq!(seq.mis, par.mis, "sparsified MIS diverged (seed {seed})");
        assert_eq!(seq.ledger, par.ledger);
        assert_eq!(seq.iterations, par.iterations);
    }
}

/// Seed of the golden-ledger matrix (`tests/golden_ledgers.rs`).
const GOLDEN_SEED: u64 = 7;

fn golden_graph(name: &str) -> Graph {
    match name {
        "gnp80" => generators::erdos_renyi_gnp(80, 0.1, 9),
        "grid8x8" => generators::grid(8, 8),
        "cycle48" => generators::cycle(48),
        other => panic!("unknown golden graph '{other}'"),
    }
}

fn golden_run(algorithm: &str, g: &Graph) -> (Vec<NodeId>, RoundLedger) {
    match algorithm {
        "luby" => {
            let r = run_luby(g, &LubyParams::for_graph(g), GOLDEN_SEED);
            (r.mis, r.ledger)
        }
        "ghaffari16" => {
            let r = run_ghaffari16(g, &Ghaffari16Params::for_graph(g), GOLDEN_SEED);
            (r.mis, r.ledger)
        }
        "g16-clique" => {
            let r = run_ghaffari16_clique(g, &Ghaffari16Params::for_graph(g), GOLDEN_SEED);
            (r.mis, r.ledger)
        }
        "beeping" => {
            let r = run_beeping_to_completion(g, &BeepingParams::for_graph(g), GOLDEN_SEED);
            (r.mis, r.ledger)
        }
        "sparsified" => {
            let r = run_sparsified_with_cleanup(g, &SparsifiedParams::for_graph(g), GOLDEN_SEED);
            (r.mis, r.ledger)
        }
        "thm11" => {
            let r = run_clique_mis_outcome(g, &CliqueMisParams::default(), GOLDEN_SEED);
            (r.mis, r.ledger)
        }
        "auto" => {
            let r = run_theorem_1_1(g, GOLDEN_SEED).0;
            (r.mis, r.ledger)
        }
        "lowdeg" => {
            let r = run_lowdeg(g, &LowDegParams::default(), GOLDEN_SEED);
            (r.mis, r.ledger)
        }
        other => panic!("unknown golden algorithm '{other}'"),
    }
}

/// The full golden-ledger matrix at thread counts {1, 2, 7}: for every
/// algorithm/graph cell, the MIS and the *entire* `RoundLedger` (rounds,
/// messages, bits, violations, and the per-phase breakdown) must be
/// byte-identical across thread counts. Together with
/// `tests/golden_ledgers.rs` (which pins the threads-default numbers) this
/// pins the sharded delivery path to the sequential one.
#[test]
fn golden_matrix_is_thread_count_invariant() {
    let _guard = lock();
    let cases: &[(&str, &[&str])] = &[
        (
            "gnp80",
            &[
                "luby",
                "ghaffari16",
                "g16-clique",
                "beeping",
                "sparsified",
                "thm11",
                "auto",
            ],
        ),
        (
            "grid8x8",
            &[
                "luby",
                "ghaffari16",
                "g16-clique",
                "beeping",
                "sparsified",
                "thm11",
                "auto",
            ],
        ),
        (
            "cycle48",
            &[
                "luby",
                "ghaffari16",
                "g16-clique",
                "beeping",
                "sparsified",
                "thm11",
                "auto",
                "lowdeg",
            ],
        ),
    ];
    for &(gname, algorithms) in cases {
        let g = golden_graph(gname);
        for &algorithm in algorithms {
            let base = with_threads(1, || golden_run(algorithm, &g));
            for threads in [2usize, 7] {
                let run = with_threads(threads, || golden_run(algorithm, &g));
                assert_eq!(
                    run.0, base.0,
                    "{algorithm}/{gname}: MIS diverged at {threads} threads"
                );
                assert_eq!(
                    run.1, base.1,
                    "{algorithm}/{gname}: ledger diverged at {threads} threads"
                );
            }
        }
    }
}

/// Inbox *contents* (not just ledgers) are identical across thread counts,
/// both for a clique round big enough to take the sharded delivery path
/// (n = 128 all-to-all ⇒ 16k messages) and for a CONGEST broadcast round.
#[test]
fn sharded_rounds_deliver_identical_inboxes() {
    let _guard = lock();

    fn clique_round(threads: usize) -> Vec<Vec<(u32, u32)>> {
        with_threads(threads, || {
            let n = 128usize;
            let mut e = CliqueEngine::strict(n, 64);
            let mut r = e.begin_round::<u32>();
            for i in 0..n as u32 {
                for j in 0..n as u32 {
                    if i != j {
                        r.send(NodeId::new(i), NodeId::new(j), 16, i.wrapping_mul(31) ^ j)
                            .expect("one 16-bit message per pair fits the budget");
                    }
                }
            }
            r.deliver()
                .iter()
                .map(|inbox| inbox.iter().map(|&(s, p)| (s.raw(), p)).collect())
                .collect()
        })
    }

    fn congest_round(threads: usize) -> Vec<Vec<(u32, u32)>> {
        with_threads(threads, || {
            let g = generators::erdos_renyi_gnp(200, 0.08, 5);
            let mut e = CongestEngine::strict(&g, 64);
            let mut r = e.begin_round::<u32>();
            for v in g.nodes() {
                r.broadcast(v, 16, v.raw())
                    .expect("broadcast fits the budget");
            }
            r.deliver()
                .iter()
                .map(|inbox| inbox.iter().map(|&(s, p)| (s.raw(), p)).collect())
                .collect()
        })
    }

    let clique_base = clique_round(1);
    let congest_base = congest_round(1);
    for threads in [2usize, 7] {
        assert_eq!(
            clique_round(threads),
            clique_base,
            "clique inboxes diverged at {threads} threads"
        );
        assert_eq!(
            congest_round(threads),
            congest_base,
            "CONGEST inboxes diverged at {threads} threads"
        );
    }
}

/// Resume-equivalence spot-check under threading: snapshots taken by a
/// 2-thread run restore and finish identically on a 7-thread run, matching
/// the 1-thread straight run.
#[test]
fn resume_is_thread_count_invariant() {
    let _guard = lock();
    let g = golden_graph("gnp80");
    let cfg = CliqueMisParams::default();

    let straight = with_threads(1, || drive(CliqueMisExecution::new(&g, &cfg, GOLDEN_SEED)));

    let mut snaps: Vec<Vec<u8>> = vec![snapshot(&CliqueMisExecution::new(&g, &cfg, GOLDEN_SEED))];
    let checkpointed = with_threads(2, || {
        drive_with_checkpoints(
            CliqueMisExecution::new(&g, &cfg, GOLDEN_SEED),
            None,
            1,
            |_, bytes| snaps.push(bytes.to_vec()),
        )
    });
    assert_eq!(checkpointed.mis, straight.mis);
    assert_eq!(checkpointed.ledger, straight.ledger);
    assert!(snaps.len() > 1, "no step boundaries snapshotted");

    // Resume from the pristine snapshot, one mid-run boundary, and the
    // final boundary, each on a 7-thread pool.
    let picks = [0usize, snaps.len() / 2, snaps.len() - 1];
    for boundary in picks {
        let outcome = with_threads(7, || {
            let mut exec = CliqueMisExecution::new(&g, &cfg, GOLDEN_SEED);
            resume(&mut exec, &snaps[boundary])
                .unwrap_or_else(|e| panic!("resume at boundary {boundary}: {e}"));
            drive(exec)
        });
        assert_eq!(
            outcome.mis, straight.mis,
            "MIS differs after threaded resume at boundary {boundary}"
        );
        assert_eq!(
            outcome.ledger, straight.ledger,
            "ledger differs after threaded resume at boundary {boundary}"
        );
    }
}
