//! Token-tree layer over the scanner's code channel.
//!
//! The lexical rules (R1–R9) match substrings of single lines; the
//! structural rules (R10–R13) need to know *where* a token sits — which
//! `fn`, which `impl`, whether a cast is inside an index expression or a
//! loop body. This module supplies that context: it tokenizes the
//! scanner's code channel (comments and string contents are already
//! blanked, so the stream is pure code), parses balanced delimiters into
//! trees, and extracts item structure — `fn` boundaries with their
//! enclosing `impl`/`mod` scope, plus structural `#[cfg(test)]` tracking
//! that replaces the scanner's old brace-counting heuristic.
//!
//! The parser is deliberately approximate where precision would require
//! rustc: macro invocation bodies are opaque token groups (no calls are
//! extracted from them), generic angle brackets are skipped by counting
//! rather than parsed, and trait dispatch resolves by method name only.
//! DESIGN.md §8 records the approximations.

use crate::scanner::{Line, SourceFile};

/// One lexical token from the code channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier, keyword, or lifetime (lifetimes keep their leading `'`).
    Ident(String),
    /// Single punctuation character; multi-character operators arrive as
    /// consecutive puncts (`::` is two `:` tokens).
    Punct(char),
    /// Numeric literal text (float literals keep their `.`).
    Num(String),
    /// A blanked string or char literal (`""` / `''` in the code channel).
    Lit,
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: usize,
}

/// A balanced token tree: a leaf token or a delimited group.
#[derive(Debug, Clone)]
pub enum Tree {
    /// A single non-delimiter token.
    Leaf(Token),
    /// A `(…)`, `[…]`, or `{…}` group.
    Group(Group),
}

/// A delimited group of trees.
#[derive(Debug, Clone)]
pub struct Group {
    /// Opening delimiter: `(`, `[`, or `{`.
    pub delim: char,
    /// 1-based line of the opening delimiter.
    pub open_line: usize,
    /// 1-based line of the closing delimiter.
    pub close_line: usize,
    /// Child trees.
    pub children: Vec<Tree>,
}

/// A function item with a body: name, enclosing scope, span, and the
/// group-index path from the file roots to the body group.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` target type (last path segment), if any.
    pub self_type: Option<String>,
    /// True if the item is test code — under structural `#[cfg(test)]`
    /// nesting or in a test-target file.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub start_line: usize,
    /// 1-based line of the body's closing brace.
    pub end_line: usize,
    /// Group-index path from the file roots to the body group.
    pub path: Vec<usize>,
}

/// Parsed structure of one source file.
#[derive(Debug)]
pub struct FileSyntax {
    /// Effective path (same as the scanner's).
    pub effective: String,
    /// Top-level token trees.
    pub roots: Vec<Tree>,
    /// Every `fn` with a body, in source order (fns nested inside other fn
    /// bodies are attributed to the enclosing fn, not listed separately).
    pub fns: Vec<FnSpan>,
}

impl FileSyntax {
    /// The body trees of `f` (empty if the path no longer resolves).
    pub fn body_of(&self, f: &FnSpan) -> &[Tree] {
        let mut trees: &[Tree] = &self.roots;
        for &idx in &f.path {
            match trees.get(idx) {
                Some(Tree::Group(g)) => trees = &g.children,
                _ => return &[],
            }
        }
        trees
    }
}

/// Tokenizes the code channel of scanned lines.
pub fn tokenize(lines: &[Line]) -> Vec<Token> {
    let mut out: Vec<Token> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let chars: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                    line: lineno,
                });
            } else if c.is_ascii_digit() {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // Float literal (`1.5`, `0.25e3`) — but not a tuple index
                // (`pair.0`) or a range bound (`0..n`).
                let after_dot = matches!(
                    out.last(),
                    Some(Token {
                        tok: Tok::Punct('.'),
                        ..
                    })
                );
                if !after_dot
                    && chars.get(i) == Some(&'.')
                    && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                out.push(Token {
                    tok: Tok::Num(chars[start..i].iter().collect()),
                    line: lineno,
                });
            } else if c == '"' {
                // Blanked string literal: the closing quote is adjacent.
                i += 1;
                if chars.get(i) == Some(&'"') {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Lit,
                    line: lineno,
                });
            } else if c == '\'' {
                if chars.get(i + 1) == Some(&'\'') {
                    // Blanked char literal.
                    out.push(Token {
                        tok: Tok::Lit,
                        line: lineno,
                    });
                    i += 2;
                } else {
                    // Lifetime: keep the quote in the identifier.
                    let start = i;
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    out.push(Token {
                        tok: Tok::Ident(chars[start..i].iter().collect()),
                        line: lineno,
                    });
                }
            } else {
                out.push(Token {
                    tok: Tok::Punct(c),
                    line: lineno,
                });
                i += 1;
            }
        }
    }
    out
}

thread_local! {
    static PARSE_CALLS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Number of [`parse`] invocations on the current thread. The single-parse
/// perf contract — [`crate::check`] lexes and parses each file exactly once
/// into the shared [`crate::FileIndex`] — is pinned by a test over this
/// counter.
pub fn parse_invocations() -> usize {
    PARSE_CALLS.with(std::cell::Cell::get)
}

/// Parses tokens into balanced trees. Tolerant of malformed input: stray
/// closers are dropped and unclosed groups are closed at end of input.
pub fn parse(tokens: Vec<Token>) -> Vec<Tree> {
    PARSE_CALLS.with(|c| c.set(c.get() + 1));
    struct OpenGroup {
        delim: char,
        open_line: usize,
        parent: Vec<Tree>,
    }
    let mut stack: Vec<OpenGroup> = Vec::new();
    let mut cur: Vec<Tree> = Vec::new();
    let mut last_line = 1usize;
    for t in tokens {
        last_line = t.line;
        match t.tok {
            Tok::Punct(c @ ('(' | '[' | '{')) => {
                stack.push(OpenGroup {
                    delim: c,
                    open_line: t.line,
                    parent: std::mem::take(&mut cur),
                });
            }
            Tok::Punct(c @ (')' | ']' | '}')) => {
                let _ = c;
                if let Some(open) = stack.pop() {
                    let children = std::mem::replace(&mut cur, open.parent);
                    cur.push(Tree::Group(Group {
                        delim: open.delim,
                        open_line: open.open_line,
                        close_line: t.line,
                        children,
                    }));
                }
            }
            _ => cur.push(Tree::Leaf(t)),
        }
    }
    while let Some(open) = stack.pop() {
        let children = std::mem::replace(&mut cur, open.parent);
        cur.push(Tree::Group(Group {
            delim: open.delim,
            open_line: open.open_line,
            close_line: last_line,
            children,
        }));
    }
    cur
}

/// Rust keywords (and reserved words) that can precede a parenthesized
/// expression without forming a call.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "fn", "pub", "use", "mod", "impl", "trait", "struct", "enum",
    "union", "where", "unsafe", "async", "await", "dyn", "crate", "super", "self", "Self", "const",
    "static", "type", "extern", "box", "yield",
];

/// True if `s` is a Rust keyword.
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// The identifier text of a leaf, if it is one.
pub fn ident_of(tree: &Tree) -> Option<&str> {
    match tree {
        Tree::Leaf(Token {
            tok: Tok::Ident(s), ..
        }) => Some(s.as_str()),
        _ => None,
    }
}

/// The punctuation character of a leaf, if it is one.
pub fn punct_of(tree: &Tree) -> Option<char> {
    match tree {
        Tree::Leaf(Token {
            tok: Tok::Punct(c), ..
        }) => Some(*c),
        _ => None,
    }
}

/// The group behind a tree, if it is one.
pub fn group_of(tree: &Tree) -> Option<&Group> {
    match tree {
        Tree::Group(g) => Some(g),
        _ => None,
    }
}

/// The 1-based line a tree starts on.
pub fn line_of(tree: &Tree) -> usize {
    match tree {
        Tree::Leaf(t) => t.line,
        Tree::Group(g) => g.open_line,
    }
}

/// True if the bracket group is exactly `[cfg(test)]` — structural parity
/// with the old lexical `#[cfg(test)]` match: `cfg(not(test))` and
/// `cfg(all(test, …))` do not qualify.
fn attr_is_cfg_test(g: &Group) -> bool {
    if g.delim != '[' || g.children.len() != 2 || ident_of(&g.children[0]) != Some("cfg") {
        return false;
    }
    match group_of(&g.children[1]) {
        Some(args) if args.delim == '(' => {
            args.children.len() == 1 && ident_of(&args.children[0]) == Some("test")
        }
        _ => false,
    }
}

/// Skips a balanced `<…>` generic run starting at `i` (which must point at
/// the `<`). Returns the index just past the matching `>`. A `>` preceded
/// by `-` (the `->` arrow inside `Fn(…) -> T` bounds) does not close.
fn skip_angles(trees: &[Tree], mut i: usize) -> usize {
    let mut depth = 0i32;
    let mut prev = ' ';
    while i < trees.len() {
        match punct_of(&trees[i]) {
            Some('<') => depth += 1,
            Some('>') if prev != '-' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        prev = punct_of(&trees[i]).unwrap_or(' ');
        i += 1;
    }
    i
}

struct ItemCtx {
    self_type: Option<String>,
    in_test: bool,
}

/// Walks item structure at one nesting level, collecting `fn` spans and
/// `#[cfg(test)]` item line spans; descends into `mod`/`impl`/`trait`
/// bodies (not into `fn` bodies or macro groups).
fn walk_items(
    trees: &[Tree],
    ctx: &ItemCtx,
    path: &mut Vec<usize>,
    fns: &mut Vec<FnSpan>,
    spans: &mut Vec<(usize, usize)>,
) {
    let mut i = 0usize;
    // Start line of a pending `#[cfg(test)]` attribute awaiting its item.
    let mut pending: Option<usize> = None;
    while i < trees.len() {
        // Outer attributes `#[…]` (inner `#![…]` attrs are skipped without
        // affecting the pending state).
        if punct_of(&trees[i]) == Some('#') {
            let attr_line = line_of(&trees[i]);
            let mut j = i + 1;
            let inner = j < trees.len() && punct_of(&trees[j]) == Some('!');
            if inner {
                j += 1;
            }
            if let Some(g) = trees.get(j).and_then(group_of) {
                if g.delim == '[' {
                    if !inner && attr_is_cfg_test(g) {
                        pending.get_or_insert(attr_line);
                    }
                    i = j + 1;
                    continue;
                }
            }
        }
        match ident_of(&trees[i]) {
            Some("fn") => {
                i = parse_fn(trees, i, ctx, &mut pending, path, fns, spans);
            }
            Some("mod") => {
                i = parse_mod(trees, i, ctx, &mut pending, path, fns, spans);
            }
            Some(kw @ ("impl" | "trait")) => {
                i = parse_impl_like(trees, i, kw, ctx, &mut pending, path, fns, spans);
            }
            Some("macro_rules") => {
                // `macro_rules! name { … }` — the body is opaque.
                let mut j = i + 1;
                while j < trees.len() && group_of(&trees[j]).is_none() {
                    j += 1;
                }
                if let Some(start) = pending.take() {
                    let end = trees.get(j).map_or(line_of(&trees[i]), |t| match t {
                        Tree::Group(g) => g.close_line,
                        Tree::Leaf(t) => t.line,
                    });
                    spans.push((start, end));
                }
                i = j + 1;
            }
            Some("struct" | "enum" | "union" | "use" | "static" | "type" | "extern")
                if pending.is_some() =>
            {
                i = consume_plain_item(trees, i, &mut pending, spans);
            }
            _ => {
                // `pub`, `unsafe`, `async`, `const`, visibility groups, and
                // stray tokens: keep any pending attribute alive — it still
                // belongs to the upcoming item.
                i += 1;
            }
        }
    }
}

/// Consumes a non-descending item (`struct`/`use`/`static`/…) under a
/// pending `#[cfg(test)]`: the item ends at the first top-level `;` or the
/// first brace group. Aborts (leaving `pending` set) if an item keyword
/// that has its own handler shows up first.
fn consume_plain_item(
    trees: &[Tree],
    i: usize,
    pending: &mut Option<usize>,
    spans: &mut Vec<(usize, usize)>,
) -> usize {
    let mut j = i + 1;
    while j < trees.len() {
        if matches!(ident_of(&trees[j]), Some("fn" | "mod" | "impl" | "trait")) {
            // `#[cfg(test)] use` never reaches here, but `type`-like
            // keywords can prefix handled items in odd grammars; let the
            // dedicated handler consume from its keyword.
            return i + 1;
        }
        if punct_of(&trees[j]) == Some(';') {
            if let Some(start) = pending.take() {
                spans.push((start, line_of(&trees[j])));
            }
            return j + 1;
        }
        if let Some(g) = group_of(&trees[j]) {
            if g.delim == '{' {
                if let Some(start) = pending.take() {
                    spans.push((start, g.close_line));
                }
                return j + 1;
            }
        }
        j += 1;
    }
    trees.len()
}

#[allow(clippy::too_many_arguments)]
fn parse_fn(
    trees: &[Tree],
    at: usize,
    ctx: &ItemCtx,
    pending: &mut Option<usize>,
    path: &[usize],
    fns: &mut Vec<FnSpan>,
    spans: &mut Vec<(usize, usize)>,
) -> usize {
    let fn_line = line_of(&trees[at]);
    let mut i = at + 1;
    let Some(name) = trees.get(i).and_then(ident_of).map(str::to_string) else {
        return at + 1;
    };
    i += 1;
    if punct_of(trees.get(i).unwrap_or(&trees[at])) == Some('<') {
        i = skip_angles(trees, i);
    }
    // Parameter list.
    match trees.get(i).and_then(group_of) {
        Some(g) if g.delim == '(' => i += 1,
        _ => return at + 1,
    }
    // Body: the first top-level brace group; `;` means a bodyless decl.
    while i < trees.len() {
        if punct_of(&trees[i]) == Some(';') {
            if let Some(start) = pending.take() {
                spans.push((start, line_of(&trees[i])));
            }
            return i + 1;
        }
        if let Some(g) = group_of(&trees[i]) {
            if g.delim == '{' {
                let is_test = ctx.in_test || pending.is_some();
                if let Some(start) = pending.take() {
                    spans.push((start, g.close_line));
                }
                let mut body_path = path.to_vec();
                body_path.push(i);
                fns.push(FnSpan {
                    name,
                    self_type: ctx.self_type.clone(),
                    is_test,
                    start_line: fn_line,
                    end_line: g.close_line,
                    path: body_path,
                });
                return i + 1;
            }
        }
        i += 1;
    }
    trees.len()
}

#[allow(clippy::too_many_arguments)]
fn parse_mod(
    trees: &[Tree],
    at: usize,
    ctx: &ItemCtx,
    pending: &mut Option<usize>,
    path: &mut Vec<usize>,
    fns: &mut Vec<FnSpan>,
    spans: &mut Vec<(usize, usize)>,
) -> usize {
    let mut i = at + 1;
    if trees.get(i).and_then(ident_of).is_some() {
        i += 1;
    }
    while i < trees.len() {
        if punct_of(&trees[i]) == Some(';') {
            if let Some(start) = pending.take() {
                spans.push((start, line_of(&trees[i])));
            }
            return i + 1;
        }
        if let Some(g) = group_of(&trees[i]) {
            if g.delim == '{' {
                let in_test = ctx.in_test || pending.is_some();
                if let Some(start) = pending.take() {
                    spans.push((start, g.close_line));
                }
                let child_ctx = ItemCtx {
                    self_type: None,
                    in_test,
                };
                path.push(i);
                walk_items(&g.children, &child_ctx, path, fns, spans);
                path.pop();
                return i + 1;
            }
        }
        i += 1;
    }
    trees.len()
}

#[allow(clippy::too_many_arguments)]
fn parse_impl_like(
    trees: &[Tree],
    at: usize,
    kw: &str,
    ctx: &ItemCtx,
    pending: &mut Option<usize>,
    path: &mut Vec<usize>,
    fns: &mut Vec<FnSpan>,
    spans: &mut Vec<(usize, usize)>,
) -> usize {
    let mut i = at + 1;
    if punct_of(trees.get(i).unwrap_or(&trees[at])) == Some('<') {
        i = skip_angles(trees, i);
    }
    // `impl [Trait for] Type` → last path segment of the target type;
    // `trait Name[: Super]` → the first identifier.
    let mut ty: Option<String> = None;
    let mut collecting = true;
    while i < trees.len() {
        if let Some(g) = group_of(&trees[i]) {
            if g.delim == '{' {
                let in_test = ctx.in_test || pending.is_some();
                if let Some(start) = pending.take() {
                    spans.push((start, g.close_line));
                }
                let child_ctx = ItemCtx {
                    self_type: ty.clone(),
                    in_test,
                };
                path.push(i);
                walk_items(&g.children, &child_ctx, path, fns, spans);
                path.pop();
                return i + 1;
            }
            i += 1;
            continue;
        }
        match ident_of(&trees[i]) {
            Some("for") if kw == "impl" => {
                ty = None;
                collecting = true;
            }
            Some("where") => collecting = false,
            Some(id) if collecting && !is_keyword(id) => {
                ty = Some(id.to_string());
                if kw == "trait" {
                    collecting = false;
                }
            }
            _ => {}
        }
        if punct_of(&trees[i]) == Some('<') {
            i = skip_angles(trees, i);
            continue;
        }
        if punct_of(&trees[i]) == Some(';') {
            if let Some(start) = pending.take() {
                spans.push((start, line_of(&trees[i])));
            }
            return i + 1;
        }
        i += 1;
    }
    trees.len()
}

/// Parses one scanned file into its token-tree structure.
pub fn parse_file(file: &SourceFile) -> FileSyntax {
    let roots = parse(tokenize(&file.lines));
    let mut fns = Vec::new();
    let mut spans = Vec::new();
    let ctx = ItemCtx {
        self_type: None,
        in_test: false,
    };
    walk_items(&roots, &ctx, &mut Vec::new(), &mut fns, &mut spans);
    for f in &mut fns {
        // Whole-file test targets: the scanner marked every line.
        if file.lines.get(f.start_line - 1).is_some_and(|l| l.in_test) {
            f.is_test = true;
        }
    }
    FileSyntax {
        effective: file.effective.clone(),
        roots,
        fns,
    }
}

/// Lexed-lines → (test-marked [`SourceFile`], [`FileSyntax`]) in a single
/// tokenize+parse — the engine behind [`crate::index_str`]. Equivalent to
/// `scan_str` followed by `parse_file`, which cost two parses per file.
pub(crate) fn index_file(
    effective: String,
    mut lines: Vec<Line>,
    whole_file_test: bool,
) -> (SourceFile, FileSyntax) {
    if whole_file_test {
        for line in &mut lines {
            line.in_test = true;
        }
    }
    let roots = parse(tokenize(&lines));
    let mut fns = Vec::new();
    let mut spans = Vec::new();
    let ctx = ItemCtx {
        self_type: None,
        in_test: false,
    };
    walk_items(&roots, &ctx, &mut Vec::new(), &mut fns, &mut spans);
    let n = lines.len();
    for (start, end) in spans {
        for line in lines[start.saturating_sub(1)..end.min(n)].iter_mut() {
            line.in_test = true;
        }
    }
    for f in &mut fns {
        // Whole-file test targets: every line is marked.
        if lines.get(f.start_line - 1).is_some_and(|l| l.in_test) {
            f.is_test = true;
        }
    }
    let source = SourceFile {
        effective: effective.clone(),
        lines,
    };
    let syntax = FileSyntax {
        effective,
        roots,
        fns,
    };
    (source, syntax)
}

/// Marks lines inside structurally-`#[cfg(test)]` items. Called by the
/// scanner in place of its old brace-counting heuristic.
pub(crate) fn mark_cfg_test(lines: &mut [Line]) {
    let roots = parse(tokenize(lines));
    let mut fns = Vec::new();
    let mut spans = Vec::new();
    let ctx = ItemCtx {
        self_type: None,
        in_test: false,
    };
    walk_items(&roots, &ctx, &mut Vec::new(), &mut fns, &mut spans);
    let n = lines.len();
    for (start, end) in spans {
        for line in lines[start.saturating_sub(1)..end.min(n)].iter_mut() {
            line.in_test = true;
        }
    }
}

/// Context carried through [`walk_exprs`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ExprCtx {
    /// Inside the body of a `for`/`while`/`loop`.
    pub in_loop: bool,
    /// Directly inside an index-bracket group (`expr[…]`).
    pub in_index: bool,
    /// Inside a macro invocation's token group.
    pub in_macro: bool,
}

/// Pre-order walk over every tree position; `f` receives the sibling
/// slice, the index within it, and the structural context.
pub fn walk_exprs<F: FnMut(&[Tree], usize, ExprCtx)>(trees: &[Tree], ctx: ExprCtx, f: &mut F) {
    let mut pending_loop = false;
    for i in 0..trees.len() {
        f(trees, i, ctx);
        match &trees[i] {
            Tree::Leaf(t) => {
                if let Tok::Ident(s) = &t.tok {
                    if matches!(s.as_str(), "for" | "while" | "loop") {
                        pending_loop = true;
                    }
                }
                if t.tok == Tok::Punct(';') {
                    pending_loop = false;
                }
            }
            Tree::Group(g) => {
                let after_bang = i > 0 && punct_of(&trees[i - 1]) == Some('!');
                let indexes_expr = g.delim == '['
                    && i > 0
                    && match &trees[i - 1] {
                        Tree::Group(_) => true,
                        Tree::Leaf(Token {
                            tok: Tok::Ident(s), ..
                        }) => !is_keyword(s) || matches!(s.as_str(), "self" | "Self"),
                        Tree::Leaf(Token {
                            tok: Tok::Lit | Tok::Num(_),
                            ..
                        }) => true,
                        _ => false,
                    };
                let child_ctx = ExprCtx {
                    in_loop: ctx.in_loop || (g.delim == '{' && pending_loop),
                    in_index: indexes_expr,
                    in_macro: ctx.in_macro || after_bang,
                };
                if g.delim == '{' {
                    pending_loop = false;
                }
                walk_exprs(&g.children, child_ctx, f);
            }
        }
    }
}

/// An approximate call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Called identifier (method name or last path segment).
    pub name: String,
    /// `Qual::` path segment immediately before the name, if any.
    pub qual: Option<String>,
    /// True for `.name(…)` method calls.
    pub method: bool,
    /// 1-based line of the call.
    pub line: usize,
}

/// Extracts approximate call sites from `trees`: an identifier directly
/// followed by a paren group. Macro bodies are skipped (conservative), as
/// are keywords and `fn` definitions.
pub fn calls_in(trees: &[Tree]) -> Vec<CallSite> {
    let mut out = Vec::new();
    walk_exprs(trees, ExprCtx::default(), &mut |sibs, i, ctx| {
        if ctx.in_macro {
            return;
        }
        let Some(name) = ident_of(&sibs[i]) else {
            return;
        };
        if is_keyword(name) || name.starts_with('\'') {
            return;
        }
        // Must be followed by `(` (a call), not `!` (a macro).
        match sibs.get(i + 1) {
            Some(Tree::Group(g)) if g.delim == '(' => {}
            _ => return,
        }
        // `fn name(` is a definition, not a call.
        if i > 0 && ident_of(&sibs[i - 1]) == Some("fn") {
            return;
        }
        let method = i > 0 && punct_of(&sibs[i - 1]) == Some('.');
        let qual =
            if i >= 3 && punct_of(&sibs[i - 1]) == Some(':') && punct_of(&sibs[i - 2]) == Some(':')
            {
                sibs.get(i - 3).and_then(ident_of).map(str::to_string)
            } else {
                None
            };
        out.push(CallSite {
            name: name.to_string(),
            qual,
            method,
            line: line_of(&sibs[i]),
        });
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_str;

    fn syntax(src: &str) -> FileSyntax {
        parse_file(&scan_str("crates/core/src/x.rs", src))
    }

    #[test]
    fn balanced_groups_with_raw_strings() {
        // The raw string contains unbalanced braces and quotes — the
        // scanner blanks them, so the tree stays balanced.
        let fs = syntax("fn f() { let s = r#\"} } { \"unbalanced\" \"#; g(s); }\n");
        assert_eq!(fs.fns.len(), 1);
        assert_eq!(fs.fns[0].name, "f");
        let calls = calls_in(fs.body_of(&fs.fns[0]));
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].name, "g");
    }

    #[test]
    fn nested_block_comments_are_invisible() {
        let fs = syntax("fn f() { /* { /* nested } */ still comment { */ h(); }\n");
        assert_eq!(fs.fns.len(), 1);
        assert_eq!(fs.fns[0].end_line, 1);
        let calls = calls_in(fs.body_of(&fs.fns[0]));
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].name, "h");
    }

    #[test]
    fn macro_bodies_are_opaque_to_call_extraction() {
        let fs = syntax("fn f() { assert_eq!(charge(), 1); vec![g()]; real(); }\n");
        let calls = calls_in(fs.body_of(&fs.fns[0]));
        let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["real"], "macro arguments are not resolved");
    }

    #[test]
    fn nested_cfg_test_modules_mark_structurally() {
        let src = "fn lib() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       mod inner {\n\
                           fn t() { helper(); }\n\
                       }\n\
                   }\n\
                   fn lib2() {}\n";
        let fs = syntax(src);
        let by_name: Vec<(&str, bool)> = fs
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_test))
            .collect();
        assert_eq!(
            by_name,
            vec![("lib", false), ("t", true), ("lib2", false)],
            "cfg(test) nesting is tracked through nested modules"
        );
    }

    #[test]
    fn multi_line_generics_do_not_break_fn_parsing() {
        let src = "fn frob<\n\
                       F: Fn(u32) -> u32,\n\
                       T: Into<String>,\n\
                   >(f: F, t: T) -> Result<u32, String>\n\
                   where\n\
                       T: Clone,\n\
                   {\n\
                       f(7)\n\
                   }\n";
        let fs = syntax(src);
        assert_eq!(fs.fns.len(), 1);
        assert_eq!(fs.fns[0].name, "frob");
        assert_eq!(fs.fns[0].start_line, 1);
        assert_eq!(fs.fns[0].end_line, 9);
    }

    #[test]
    fn impl_scope_attaches_self_type() {
        let src = "impl<'a, T: Ord> fmt::Display for Round<'a, T> {\n\
                       fn fmt(&self) -> u32 { 0 }\n\
                   }\n\
                   impl Ledger {\n\
                       fn charge(&mut self) {}\n\
                   }\n\
                   trait Transport {\n\
                       fn node_count(&self) -> usize { 0 }\n\
                   }\n";
        let fs = syntax(src);
        let scopes: Vec<(&str, Option<&str>)> = fs
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_type.as_deref()))
            .collect();
        assert_eq!(
            scopes,
            vec![
                ("fmt", Some("Round")),
                ("charge", Some("Ledger")),
                ("node_count", Some("Transport")),
            ]
        );
    }

    #[test]
    fn call_sites_carry_method_and_qualifier() {
        let fs = syntax(
            "fn f() { ledger.charge_round(); RoundLedger::new(); Self::helper(); plain(); }\n",
        );
        let calls = calls_in(fs.body_of(&fs.fns[0]));
        assert_eq!(calls.len(), 4);
        assert!(calls[0].method && calls[0].name == "charge_round");
        assert_eq!(calls[1].qual.as_deref(), Some("RoundLedger"));
        assert_eq!(calls[2].qual.as_deref(), Some("Self"));
        assert!(!calls[3].method && calls[3].qual.is_none());
    }

    #[test]
    fn loop_and_index_context_reach_the_walker() {
        let fs = syntax("fn f() { for i in 0..n { spawn(i); } let x = arr[i as usize]; }\n");
        let mut in_loop_calls = Vec::new();
        let mut saw_index_cast = false;
        walk_exprs(
            fs.body_of(&fs.fns[0]),
            ExprCtx::default(),
            &mut |sibs, i, ctx| {
                if let Tree::Leaf(Token {
                    tok: Tok::Ident(s), ..
                }) = &sibs[i]
                {
                    if ctx.in_loop
                        && matches!(sibs.get(i + 1), Some(Tree::Group(g)) if g.delim == '(')
                    {
                        in_loop_calls.push(s.clone());
                    }
                    if s == "as" && ctx.in_index {
                        saw_index_cast = true;
                    }
                }
            },
        );
        assert_eq!(in_loop_calls, vec!["spawn".to_string()]);
        assert!(saw_index_cast);
    }

    #[test]
    fn float_literals_tokenize_distinctly_from_tuple_indexes() {
        let toks =
            tokenize(&scan_str("x.rs", "let a = 1.5; let b = pair.0; let c = 0..n;\n").lines);
        let nums: Vec<String> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["1.5", "0", "0"]);
    }
}
