//! Determinism-taint rules R21–R24.
//!
//! The bit-determinism story says a run is a pure function of
//! `(seed, graph, params)`. Scheduling identity — how many worker threads
//! ran, which shard a value landed in, what `CC_MIS_*` knobs the process
//! environment carried — is explicitly allowed to vary between runs, so it
//! must never reach the three places where it would become observable:
//! ledger charges, RNG seeding, and snapshot bytes.
//!
//! * **R21** tracks that taint intraprocedurally over the token-tree layer:
//!   sources are `thread_count()` / `available_parallelism()` /
//!   `std::env` reads (and the `config::env_*` accessors wrapping them),
//!   plus the shard-index parameter of closures handed to
//!   `par_zip_shards` / `par_scatter_shards`. `let`-bindings propagate
//!   taint to a fixpoint; sinks are `.charge_*` arguments,
//!   `SplitMix64`/`SharedRandomness` constructor arguments, and
//!   `SnapshotWriter` `.write_*` arguments. The lattice is the trivial
//!   clean < tainted, with no kills — a value once derived from scheduling
//!   identity stays suspect for the rest of the function.
//! * **R22** pins the snapshot wire format: the ordered `write_*` sequence
//!   of every non-test `Execution::save` (extracted with the same machinery
//!   R17 uses for save/restore parity) is compared against the committed
//!   manifest `crates/conform/snapshot_manifest.txt`. R17 cannot catch a
//!   save+restore pair that drifts *together*; R22 can, because the
//!   manifest is a third copy under version control. A mismatch is
//!   tolerated only while the recorded snapshot VERSION differs from the
//!   current one (a sanctioned format bump); regenerate with
//!   `--update-snapshot-manifest`.
//! * **R23** confines `std::env` reads in crates/core and crates/sim to
//!   the central config module, so R21's env-source list stays auditable.
//! * **R24** confines raw `std::process` and socket APIs in crates/core
//!   and crates/sim to the sharded-transport module, so every process
//!   boundary speaks the checksummed frame codec and sits behind the
//!   checkpoint-recovery machinery the fault matrix exercises.

use std::collections::{BTreeMap, BTreeSet};

use crate::dataflow::{
    call_at, contains_ident, extract_ops, fn_param_names, normalize, split_commas, trait_impls,
    OpNode,
};
use crate::diag::Finding;
use crate::rules::in_sim_core;
use crate::scanner::SourceFile;
use crate::syntax::{group_of, ident_of, punct_of, FileSyntax, Tree};

/// The path every core/sim env read must live in (R23), and the one module
/// whose env sources R21 treats as its own.
const CONFIG_MODULE: &str = "crates/sim/src/config.rs";

/// The file a `snapshot_manifest.txt` input pins (R22 runs only when the
/// manifest is among the inputs).
const SNAPSHOT_MODULE: &str = "crates/sim/src/snapshot.rs";

/// The one core/sim module sanctioned to spawn worker processes and open
/// sockets (R24): the sharded transport, whose FrameLink backends own the
/// frame codec and the checkpoint-recovery protocol.
const SHARD_MODULE: &str = "crates/sim/src/shard.rs";

/// Runs the taint phase. `manifest` is the `(path, text)` of the committed
/// snapshot manifest when one is among the inputs; without it R22 is
/// skipped (explicit-path lint runs of single files stay meaningful).
pub fn check(
    sources: &[SourceFile],
    syntaxes: &[FileSyntax],
    manifest: Option<(&str, &str)>,
    findings: &mut Vec<Finding>,
) {
    check_r21(syntaxes, findings);
    if let Some((mpath, mtext)) = manifest {
        check_r22(sources, syntaxes, mpath, mtext, findings);
    }
    check_r23(sources, findings);
    check_r24(sources, findings);
}

// ---------------------------------------------------------------------------
// R21 — scheduling identity must not reach charges, RNG seeds, or snapshots
// ---------------------------------------------------------------------------

/// Calls whose results carry scheduling identity. `thread_count` and the
/// `config::env_*` accessors are name-based (the call graph's resolution is
/// overkill here: the names are unique in-tree and the rule is
/// intraprocedural by design).
const SOURCE_CALLS: &[&str] = &[
    "thread_count",
    "available_parallelism",
    "env_threads",
    "env_dense_pair_max",
    "env_shards",
    "env_shard_backend",
    "env_worker_bin",
    "env_worker_log_dir",
];

/// Helpers whose closure's first parameter is a shard index.
const SHARD_HELPERS: &[&str] = &["par_zip_shards", "par_scatter_shards"];

fn check_r21(syntaxes: &[FileSyntax], findings: &mut Vec<Finding>) {
    for fs in syntaxes {
        let path = fs.effective.as_str();
        if !in_sim_core(path) {
            continue;
        }
        for f in &fs.fns {
            if f.is_test {
                continue;
            }
            let body = fs.body_of(f);
            let mut tainted: BTreeSet<String> = BTreeSet::new();
            collect_shard_params(body, &mut tainted);
            // `let` propagation to a fixpoint (no kills: rebinding a name
            // to a clean value later is rare enough to not carve out).
            loop {
                let before = tainted.len();
                collect_let_taint(body, &mut tainted);
                if tainted.len() == before {
                    break;
                }
            }
            let mut seen: BTreeSet<(usize, &'static str)> = BTreeSet::new();
            scan_sinks(body, &tainted, path, &f.name, &mut seen, findings);
        }
    }
}

/// True if the expression slice derives from scheduling identity: it names
/// a tainted binding or contains a source call.
fn slice_tainted(trees: &[Tree], tainted: &BTreeSet<String>) -> bool {
    slice_has_source(trees) || tainted.iter().any(|t| contains_ident(trees, t))
}

/// True if the slice contains a call to one of the taint sources.
fn slice_has_source(trees: &[Tree]) -> bool {
    for (i, t) in trees.iter().enumerate() {
        if let Some(g) = group_of(t) {
            if slice_has_source(&g.children) {
                return true;
            }
            continue;
        }
        let Some(id) = ident_of(t) else { continue };
        let called = matches!(trees.get(i + 1), Some(Tree::Group(g)) if g.delim == '(');
        if !called {
            continue;
        }
        if SOURCE_CALLS.contains(&id) {
            return true;
        }
        // `env::var(…)` / `env::var_os(…)` / `env::vars(…)`.
        if matches!(id, "var" | "var_os" | "vars")
            && i >= 3
            && punct_of(&trees[i - 1]) == Some(':')
            && punct_of(&trees[i - 2]) == Some(':')
            && ident_of(&trees[i - 3]) == Some("env")
        {
            return true;
        }
    }
    false
}

/// Taints the first (shard-index) parameter of closures passed to the
/// shard-parallel helpers.
fn collect_shard_params(trees: &[Tree], tainted: &mut BTreeSet<String>) {
    let mut i = 0;
    while i < trees.len() {
        if let Some(g) = group_of(&trees[i]) {
            collect_shard_params(&g.children, tainted);
            i += 1;
            continue;
        }
        if let Some(call) = call_at(trees, i) {
            if SHARD_HELPERS.contains(&call.name) {
                if let Some(first) = closure_first_param(&call.args.children) {
                    tainted.insert(first);
                }
            }
        }
        i += 1;
    }
}

/// The first parameter name of the first top-level closure in an argument
/// slice (`|shard, chunk, row| …` → `shard`).
fn closure_first_param(args: &[Tree]) -> Option<String> {
    let open = args.iter().position(|t| punct_of(t) == Some('|'))?;
    let close = open
        + 1
        + args[open + 1..]
            .iter()
            .position(|t| punct_of(t) == Some('|'))?;
    let params = &args[open + 1..close];
    let first = split_commas(params).first().copied()?;
    let mut ids = Vec::new();
    crate::dataflow::pattern_idents(first, &mut ids);
    ids.into_iter().next()
}

/// One pass of `let` propagation: any binding whose initializer is tainted
/// taints its pattern identifiers. Recurses into every group, so closure
/// and block bodies are covered.
fn collect_let_taint(trees: &[Tree], tainted: &mut BTreeSet<String>) {
    let mut i = 0;
    while i < trees.len() {
        if let Some(g) = group_of(&trees[i]) {
            collect_let_taint(&g.children, tainted);
            i += 1;
            continue;
        }
        if ident_of(&trees[i]) == Some("let") {
            // Find the initializer `=` (skipping `==` and `=>`), then the
            // terminating `;` at this nesting level.
            let mut j = i + 1;
            let mut eq = None;
            while j < trees.len() {
                match punct_of(&trees[j]) {
                    Some(';') => break,
                    Some('=') => {
                        let next = trees.get(j + 1).and_then(punct_of);
                        if matches!(next, Some('=' | '>')) {
                            j += 2;
                            continue;
                        }
                        eq = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(eq) = eq {
                let mut end = eq + 1;
                while end < trees.len() && punct_of(&trees[end]) != Some(';') {
                    end += 1;
                }
                if slice_tainted(&trees[eq + 1..end], tainted) {
                    let mut ids = Vec::new();
                    crate::dataflow::pattern_idents(&trees[i + 1..eq], &mut ids);
                    for id in ids {
                        tainted.insert(id);
                    }
                }
            }
        }
        i += 1;
    }
}

/// Flags every sink whose arguments are tainted: ledger charges, RNG
/// constructors, snapshot writes.
fn scan_sinks(
    trees: &[Tree],
    tainted: &BTreeSet<String>,
    path: &str,
    fn_name: &str,
    seen: &mut BTreeSet<(usize, &'static str)>,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < trees.len() {
        if let Some(g) = group_of(&trees[i]) {
            scan_sinks(&g.children, tainted, path, fn_name, seen, findings);
            i += 1;
            continue;
        }
        if let Some(call) = call_at(trees, i) {
            let args = &call.args.children;
            let rng_ctor = i >= 3
                && punct_of(&trees[i - 1]) == Some(':')
                && punct_of(&trees[i - 2]) == Some(':')
                && matches!(
                    ident_of(&trees[i - 3]),
                    Some("SplitMix64" | "SharedRandomness")
                );
            let sink: Option<(&'static str, &'static str)> =
                if call.method && call.name.starts_with("charge_") {
                    Some((
                        "charge",
                        "bills a ledger with it — totals would depend on the machine, \
                         not on (seed, graph, params)",
                    ))
                } else if call.method && call.name.starts_with("write_") {
                    Some((
                        "write",
                        "writes it into a snapshot — checkpoints taken on different \
                         machines (or thread counts) would diverge byte-wise, voiding \
                         resume equivalence",
                    ))
                } else if rng_ctor {
                    Some((
                        "seed",
                        "seeds an RNG stream with it — the coin sequence would change \
                         with the thread count, which no replay can reproduce",
                    ))
                } else {
                    None
                };
            if let Some((kind, why)) = sink {
                if slice_tainted(args, tainted) && seen.insert((call.line, kind)) {
                    findings.push(Finding::new(
                        path,
                        call.line,
                        "R21",
                        format!(
                            "`{fn_name}` derives a value from scheduling identity (thread \
                             count, shard index, or env read) and {why}; derive it from \
                             simulation state instead — scheduling identity may steer \
                             scheduling only"
                        ),
                    ));
                }
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// R22 — snapshot-format pinning against the committed manifest
// ---------------------------------------------------------------------------

/// The canonical save-sequence fingerprints of every non-test
/// `impl Execution` in the parsed inputs, sorted by (path, type).
fn save_fingerprints(
    sources: &[SourceFile],
    syntaxes: &[FileSyntax],
) -> Vec<(String, String, String, usize)> {
    let mut out = Vec::new();
    for (fi, fs) in syntaxes.iter().enumerate() {
        let impls = trait_impls(fs, "Execution");
        if impls.is_empty() {
            continue;
        }
        let src = &sources[fi];
        for im in &impls {
            let save = fs.fns.iter().find(|f| {
                f.name == "save"
                    && !f.is_test
                    && f.self_type.as_deref() == Some(im.self_type.as_str())
                    && f.start_line >= im.open_line
                    && f.end_line <= im.close_line
            });
            let Some(save) = save else { continue };
            let seq = normalize(extract_ops(
                fs.body_of(save),
                &fn_param_names(fs, save),
                fs,
                src,
                1,
            ));
            out.push((
                fs.effective.clone(),
                im.self_type.clone(),
                render_seq(&seq),
                save.start_line,
            ));
        }
    }
    out.sort();
    out
}

/// Renders an op sequence as the canonical manifest string. Order-sensitive
/// and expression-sensitive: a same-width reorder of two `write_u64` fields
/// still changes the string.
fn render_seq(nodes: &[OpNode]) -> String {
    let parts: Vec<String> = nodes.iter().map(render_node).collect();
    parts.join(" ")
}

fn render_node(n: &OpNode) -> String {
    match n {
        OpNode::Op { raw, expr, .. } => match expr {
            Some(e) => format!("{raw}({e})"),
            None => format!("{raw}()"),
        },
        OpNode::Opaque { .. } => "<opaque>".to_string(),
        OpNode::Loop { body, .. } => format!("loop{{{}}}", render_seq(body)),
        OpNode::Branch { arms, .. } => {
            let rendered: Vec<String> = arms.iter().map(|a| render_seq(a)).collect();
            format!("branch{{{}}}", rendered.join(" | "))
        }
    }
}

/// The current `snapshot::VERSION`, read off the snapshot module when it is
/// among the inputs.
fn current_version(sources: &[SourceFile]) -> Option<u32> {
    let snap = sources.iter().find(|s| s.effective == SNAPSHOT_MODULE)?;
    for line in &snap.lines {
        let Some(at) = line.code.find("const VERSION") else {
            continue;
        };
        let after_eq = line.code[at..].split('=').nth(1)?;
        let digits: String = after_eq
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        return digits.parse().ok();
    }
    None
}

/// Parses the committed manifest: a `version N` line plus
/// `path<TAB>type<TAB>sequence` entries (`#` lines are comments).
fn parse_manifest(text: &str) -> (Option<u32>, BTreeMap<(String, String), String>) {
    let mut version = None;
    let mut entries = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(v) = line.strip_prefix("version ") {
            version = v.trim().parse().ok();
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        if let (Some(p), Some(t), Some(s)) = (parts.next(), parts.next(), parts.next()) {
            entries.insert((p.to_string(), t.to_string()), s.to_string());
        }
    }
    (version, entries)
}

/// Renders the manifest for the current inputs (`--update-snapshot-manifest`).
pub fn render_manifest(sources: &[SourceFile], syntaxes: &[FileSyntax]) -> String {
    let mut out = String::new();
    out.push_str(
        "# cc-mis-conform snapshot manifest — ordered `Execution::save` write sequences.\n\
         # One entry per impl: <file>\\t<type>\\t<sequence>. R22 fails the lint when a\n\
         # sequence changes under an unchanged snapshot VERSION. Regenerate after a\n\
         # deliberate format change with:\n\
         #   cargo run -p cc-mis-conform -- --update-snapshot-manifest\n",
    );
    out.push_str(&format!(
        "version {}\n",
        current_version(sources).unwrap_or(0)
    ));
    for (path, ty, seq, _) in save_fingerprints(sources, syntaxes) {
        out.push_str(&format!("{path}\t{ty}\t{seq}\n"));
    }
    out
}

fn check_r22(
    sources: &[SourceFile],
    syntaxes: &[FileSyntax],
    manifest_path: &str,
    manifest_text: &str,
    findings: &mut Vec<Finding>,
) {
    let (recorded_version, entries) = parse_manifest(manifest_text);
    let cur = current_version(sources);
    // A differing VERSION is the sanctioned way to change the format; the
    // next manifest regeneration re-pins under the new version.
    let version_bumped = matches!((recorded_version, cur), (Some(a), Some(b)) if a != b);
    for (path, ty, seq, line) in save_fingerprints(sources, syntaxes) {
        match entries.get(&(path.clone(), ty.clone())) {
            None => findings.push(Finding::new(
                &path,
                line,
                "R22",
                format!(
                    "`impl Execution for {ty}` has no entry in {manifest_path}: every \
                     save() write sequence must be pinned — run \
                     `conform --update-snapshot-manifest` and commit the result"
                ),
            )),
            Some(recorded) if *recorded != seq && !version_bumped => {
                findings.push(Finding::new(
                    &path,
                    line,
                    "R22",
                    format!(
                        "`{ty}::save` write sequence changed without a snapshot VERSION \
                         bump (manifest has `{recorded}`, code has `{seq}`): old \
                         checkpoints would restore garbage without a SnapshotError — \
                         bump snapshot::VERSION or regenerate the manifest"
                    ),
                ));
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// R23 — env reads live only in the config module
// ---------------------------------------------------------------------------

fn check_r23(sources: &[SourceFile], findings: &mut Vec<Finding>) {
    for f in sources {
        let path = f.effective.as_str();
        if !in_sim_core(path) || path == CONFIG_MODULE {
            continue;
        }
        for (idx, line) in f.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let code = line.code.as_str();
            let Some(at) = code.find("env::var") else {
                continue;
            };
            // Reject `my_env::var`-style matches: the char before `env`
            // must not be part of an identifier.
            let pre = code[..at].chars().next_back();
            if pre.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                continue;
            }
            findings.push(Finding::new(
                path,
                idx + 1,
                "R23",
                format!(
                    "environment read outside the config module: every std::env read in \
                     crates/core and crates/sim belongs in {CONFIG_MODULE}, so the full \
                     set of ambient knobs stays auditable in one place"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// R24 — process and socket APIs live only in the sharded-transport module
// ---------------------------------------------------------------------------

/// Tokens that open a process or byte-stream boundary. `Command::new` (not
/// the bare path `std::process`) keeps `ExitCode`-style uses clean; `.kill()`
/// catches hand-rolled child teardown outside the recovery protocol.
const PROCESS_TOKENS: &[&str] = &[
    "UnixListener",
    "UnixStream",
    "TcpListener",
    "TcpStream",
    "Command::new",
    "Stdio::",
    ".kill()",
];

fn check_r24(sources: &[SourceFile], findings: &mut Vec<Finding>) {
    for f in sources {
        let path = f.effective.as_str();
        if !in_sim_core(path) || path == SHARD_MODULE {
            continue;
        }
        for (idx, line) in f.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let code = line.code.as_str();
            let Some(pat) = PROCESS_TOKENS.iter().find(|p| code.contains(*p)) else {
                continue;
            };
            findings.push(Finding::new(
                path,
                idx + 1,
                "R24",
                format!(
                    "`{pat}` outside the sharded-transport module: process spawns and \
                     sockets in crates/core and crates/sim belong in {SHARD_MODULE}, \
                     behind the frame codec and checkpoint recovery"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_str;
    use crate::syntax::parse_file;

    fn indexed(path: &str, src: &str) -> (Vec<SourceFile>, Vec<FileSyntax>) {
        let file = scan_str(path, src);
        let fs = parse_file(&file);
        (vec![file], vec![fs])
    }

    #[test]
    fn r21_flags_tainted_charge_and_clean_pool_use() {
        let (src, fs) = indexed(
            "crates/sim/src/demo.rs",
            "pub fn run(ledger: &mut RoundLedger) {\n\
             \x20   let threads = thread_count();\n\
             \x20   let pool = threads.min(8);\n\
             \x20   let salt = pool + 1;\n\
             \x20   ledger.charge_bits(salt as u64);\n\
             }\n",
        );
        let mut findings = Vec::new();
        check(&src, &fs, None, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "R21");
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn r21_allows_scheduling_only_use() {
        let (src, fs) = indexed(
            "crates/sim/src/demo.rs",
            "pub fn run(ledger: &mut RoundLedger, n: u64) {\n\
             \x20   let threads = thread_count();\n\
             \x20   let _chunk = n as usize / threads.max(1);\n\
             \x20   ledger.charge_bits(n);\n\
             }\n",
        );
        let mut findings = Vec::new();
        check(&src, &fs, None, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn r21_flags_shard_index_seeding_an_rng() {
        let (src, fs) = indexed(
            "crates/sim/src/demo.rs",
            "pub fn run(outs: &mut [u64], rows: &mut [u64]) {\n\
             \x20   par_zip_shards(outs, rows, 4, |shard, chunk, row| {\n\
             \x20       let rng = SplitMix64::new(shard as u64);\n\
             \x20       let _ = rng;\n\
             \x20       let _ = (chunk, row);\n\
             \x20   });\n\
             }\n",
        );
        let mut findings = Vec::new();
        check(&src, &fs, None, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "R21");
    }

    #[test]
    fn r23_confines_env_reads_to_the_config_module() {
        let (src, fs) = indexed(
            "crates/sim/src/worker.rs",
            "pub fn knob() -> bool {\n    std::env::var(\"CC_MIS_X\").is_ok()\n}\n",
        );
        let mut findings = Vec::new();
        check(&src, &fs, None, &mut findings);
        // The env read itself is an R21 *source*, not a sink — only R23 fires.
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "R23");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn manifest_round_trips_and_pins_reorders() {
        let code = "struct Demo;\n\
                    impl Execution for Demo {\n\
                    \x20   fn save(&self, w: &mut SnapshotWriter) {\n\
                    \x20       w.write_u64(self.steps);\n\
                    \x20       w.write_bool(self.done);\n\
                    \x20   }\n\
                    \x20   fn restore(&mut self, r: &mut SnapshotReader) {\n\
                    \x20       self.steps = r.read_u64();\n\
                    \x20       self.done = r.read_bool();\n\
                    \x20   }\n\
                    }\n";
        let (src, fs) = indexed("crates/core/src/demo_snap.rs", code);
        let manifest = render_manifest(&src, &fs);
        assert!(manifest.contains("crates/core/src/demo_snap.rs\tDemo\t"));
        // Matching manifest: clean.
        let mut findings = Vec::new();
        check_r22(&src, &fs, "m.txt", &manifest, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
        // Reordered code vs. recorded manifest, no version bump: fires.
        let reordered = code.replace(
            "w.write_u64(self.steps);\n\x20       w.write_bool(self.done);",
            "w.write_bool(self.done);\n\x20       w.write_u64(self.steps);",
        );
        let (src2, fs2) = indexed("crates/core/src/demo_snap.rs", &reordered);
        let mut findings = Vec::new();
        check_r22(&src2, &fs2, "m.txt", &manifest, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "R22");
    }
}
