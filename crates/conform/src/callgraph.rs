//! Approximate workspace call graph over the token-tree layer.
//!
//! Nodes are the `fn` items [`crate::syntax`] extracts; edges come from
//! name resolution by identifier: a call site `name(…)` links to every
//! workspace `fn name`, narrowed by the qualifier when one is present
//! (`Type::name` links only to fns in an `impl Type`, `Self::name` stays
//! within the caller's impl, and `.name(…)` method calls link only to fns
//! that have a self type). This over-approximates trait dispatch and
//! under-approximates macro-generated calls (macro bodies are opaque) —
//! both deliberate: the interprocedural rules R10/R12 use the graph for
//! reachability closures where over-approximation is the safe direction,
//! and the misses are recorded in DESIGN.md §8.

use std::collections::{BTreeMap, BTreeSet};

use crate::syntax::{calls_in, CallSite, FileSyntax};

/// One function node.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the owning file in the slice passed to [`build`].
    pub file: usize,
    /// Index of the originating [`crate::syntax::FnSpan`] within that
    /// file's `fns` list (for body re-resolution).
    pub item: usize,
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, if any.
    pub self_type: Option<String>,
    /// True for test code (structural `cfg(test)` or test-target file).
    pub is_test: bool,
    /// 1-based `fn`-keyword line.
    pub start_line: usize,
    /// 1-based body-close line.
    pub end_line: usize,
    /// Raw call sites extracted from the body.
    pub calls: Vec<CallSite>,
}

/// The resolved graph.
#[derive(Debug)]
pub struct CallGraph {
    /// All function nodes, in (file, source) order.
    pub nodes: Vec<FnNode>,
    /// Resolved callee node ids per node (deduplicated, sorted).
    pub callees: Vec<Vec<usize>>,
    /// Resolved caller node ids per node (deduplicated, sorted).
    pub callers: Vec<Vec<usize>>,
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Builds the graph from parsed files. `files` must stay index-aligned
/// with whatever source list the caller scopes findings against.
pub fn build(files: &[FileSyntax]) -> CallGraph {
    let mut nodes = Vec::new();
    for (fi, fs) in files.iter().enumerate() {
        for (si, span) in fs.fns.iter().enumerate() {
            nodes.push(FnNode {
                file: fi,
                item: si,
                name: span.name.clone(),
                self_type: span.self_type.clone(),
                is_test: span.is_test,
                start_line: span.start_line,
                end_line: span.end_line,
                calls: calls_in(fs.body_of(span)),
            });
        }
    }
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(n.name.clone()).or_default().push(i);
    }
    let mut graph = CallGraph {
        callees: vec![Vec::new(); nodes.len()],
        callers: vec![Vec::new(); nodes.len()],
        nodes,
        by_name,
    };
    for i in 0..graph.nodes.len() {
        let mut targets = BTreeSet::new();
        for call in &graph.nodes[i].calls {
            for t in graph.resolve(i, call) {
                targets.insert(t);
            }
        }
        for t in targets {
            graph.callees[i].push(t);
            graph.callers[t].push(i);
        }
    }
    for v in &mut graph.callers {
        v.sort_unstable();
        v.dedup();
    }
    graph
}

impl CallGraph {
    /// Resolves one call site from node `caller` to candidate definitions.
    pub fn resolve(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let Some(cands) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        let me = &self.nodes[caller];
        cands
            .iter()
            .copied()
            .filter(|&j| {
                let def = &self.nodes[j];
                match call.qual.as_deref() {
                    Some("Self") | Some("self") => def.self_type == me.self_type,
                    Some(q) => def.self_type.as_deref() == Some(q),
                    None if call.method => def.self_type.is_some(),
                    None => true,
                }
            })
            .collect()
    }

    /// Reachability closure from `seeds`: repeatedly adds callers (if
    /// `up`) and callees (if `down`) of members, admitting only nodes for
    /// which `admit` holds. Seeds are included unconditionally.
    pub fn closure(
        &self,
        seeds: impl IntoIterator<Item = usize>,
        up: bool,
        down: bool,
        admit: impl Fn(&FnNode) -> bool,
    ) -> BTreeSet<usize> {
        let mut set: BTreeSet<usize> = seeds.into_iter().collect();
        let mut work: Vec<usize> = set.iter().copied().collect();
        while let Some(i) = work.pop() {
            let mut neighbors = Vec::new();
            if up {
                neighbors.extend_from_slice(&self.callers[i]);
            }
            if down {
                neighbors.extend_from_slice(&self.callees[i]);
            }
            for n in neighbors {
                if !set.contains(&n) && admit(&self.nodes[n]) {
                    set.insert(n);
                    work.push(n);
                }
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_str;
    use crate::syntax::parse_file;

    fn graph_of(srcs: &[(&str, &str)]) -> CallGraph {
        let files: Vec<FileSyntax> = srcs
            .iter()
            .map(|(p, s)| parse_file(&scan_str(p, s)))
            .collect();
        build(&files)
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.name == name)
            .unwrap_or_else(|| panic!("no fn named {name}"))
    }

    #[test]
    fn free_function_calls_resolve_across_files() {
        let g = graph_of(&[
            ("crates/a/src/lib.rs", "pub fn helper() {}\n"),
            ("crates/b/src/lib.rs", "pub fn driver() { helper(); }\n"),
        ]);
        let (h, d) = (idx(&g, "helper"), idx(&g, "driver"));
        assert_eq!(g.callees[d], vec![h]);
        assert_eq!(g.callers[h], vec![d]);
    }

    #[test]
    fn qualified_calls_narrow_to_the_impl_type() {
        let src = "struct A; struct B;\n\
                   impl A { fn make() {} }\n\
                   impl B { fn make() {} }\n\
                   fn f() { A::make(); }\n";
        let g = graph_of(&[("crates/a/src/lib.rs", src)]);
        let f = idx(&g, "f");
        assert_eq!(g.callees[f].len(), 1);
        let target = g.callees[f][0];
        assert_eq!(g.nodes[target].self_type.as_deref(), Some("A"));
    }

    #[test]
    fn method_calls_link_only_to_methods() {
        let src = "fn send() {}\n\
                   impl Round { fn send(&mut self) {} }\n\
                   fn f(r: &mut Round) { r.send(); }\n";
        let g = graph_of(&[("crates/a/src/lib.rs", src)]);
        let f = idx(&g, "f");
        assert_eq!(g.callees[f].len(), 1);
        assert_eq!(
            g.nodes[g.callees[f][0]].self_type.as_deref(),
            Some("Round"),
            "the free fn `send` is not a method-call candidate"
        );
    }

    #[test]
    fn closure_walks_callers_transitively() {
        let src = "fn sink() {}\n\
                   fn mid() { sink(); }\n\
                   fn top() { mid(); }\n\
                   fn unrelated() {}\n";
        let g = graph_of(&[("crates/a/src/lib.rs", src)]);
        let reach = g.closure([idx(&g, "sink")], true, false, |_| true);
        let names: Vec<&str> = reach.iter().map(|&i| g.nodes[i].name.as_str()).collect();
        assert_eq!(names, vec!["sink", "mid", "top"]);
    }

    #[test]
    fn closure_admit_gate_blocks_expansion() {
        let src = "fn sink() {}\n\
                   #[cfg(test)]\n\
                   mod tests { fn t() { sink(); } }\n";
        let g = graph_of(&[("crates/a/src/lib.rs", src)]);
        let reach = g.closure([idx(&g, "sink")], true, false, |n| !n.is_test);
        assert_eq!(reach.len(), 1, "test callers are not admitted");
    }
}
