//! The conformance rule set.
//!
//! Each rule enforces one contract the reproduction's guarantees rest on
//! (see DESIGN.md §8 for the rule ↔ contract table). Rules are lexical:
//! they run over the scanner's code channel, so comments, doc-examples,
//! and string contents never trip them, and most rules skip test code
//! (the contracts bind the simulation, not its assertions).

use crate::diag::Finding;
use crate::scanner::{Line, SourceFile};

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable id used in diagnostics and pragmas.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// All rules, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "R1",
        summary: "no HashMap/HashSet in node-simulation library code (crates/core, crates/sim): \
                  unordered iteration breaks deterministic replay",
    },
    RuleInfo {
        id: "R2",
        summary: "no std::thread outside crates/sim/src/par_nodes.rs: all parallelism flows \
                  through the deterministic node pool",
    },
    RuleInfo {
        id: "R3",
        summary: "no ambient nondeterminism (thread_rng, SystemTime::now, Instant::now, \
                  RandomState) in library code: randomness must flow through seeded rng modules",
    },
    RuleInfo {
        id: "R4",
        summary: "every crate root (src/lib.rs, src/main.rs) carries #![forbid(unsafe_code)]",
    },
    RuleInfo {
        id: "R5",
        summary: "no unwrap()/short expect() in crates/core and crates/sim library code: \
                  panics must name the violated invariant",
    },
    RuleInfo {
        id: "R6",
        summary: "ledger charges go through counters declared in crates/sim/src/metrics.rs; \
                  no direct += on ledger counter fields elsewhere",
    },
    RuleInfo {
        id: "R7",
        summary: "engine bandwidth arguments in library code reference the named O(log n) \
                  word-size constants (cc_mis_sim::bits), never magic literals",
    },
    RuleInfo {
        id: "R8",
        summary: "no registry dependencies in any Cargo.toml: every entry must be a path or \
                  workspace dependency (offline-build guard)",
    },
    RuleInfo {
        id: "R9",
        summary: "in crates/sim, RoundLedger charge calls appear only in runtime.rs and \
                  metrics.rs: every engine bills through the unified round core",
    },
    RuleInfo {
        id: "P1",
        summary: "conform pragmas must be well-formed, name known rules, and carry a \
                  justification",
    },
];

/// True if `id` names a rule (usable in a pragma).
pub fn rule_exists(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

fn in_sim_core(path: &str) -> bool {
    path.starts_with("crates/core/src") || path.starts_with("crates/sim/src")
}

fn is_metrics(path: &str) -> bool {
    path == "crates/sim/src/metrics.rs"
}

fn is_par_nodes(path: &str) -> bool {
    path == "crates/sim/src/par_nodes.rs"
}

fn is_runtime(path: &str) -> bool {
    path == "crates/sim/src/runtime.rs"
}

fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs") || path.ends_with("src/main.rs")
}

/// Extracts the `charge_*` counter names declared (`fn charge_x`) in
/// `metrics.rs`-scanned files.
pub fn declared_counters(files: &[SourceFile]) -> Vec<String> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| is_metrics(&f.effective)) {
        for line in &f.lines {
            let mut rest = line.code.as_str();
            while let Some(at) = rest.find("fn charge_") {
                let ident_start = at + "fn ".len();
                let name: String = rest[ident_start..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() && !out.contains(&name) {
                    out.push(name);
                }
                rest = &rest[ident_start..];
            }
        }
    }
    out.sort();
    out
}

/// Runs rules R1–R7 over one scanned file, appending findings.
pub fn check_file(file: &SourceFile, counters: &[String], findings: &mut Vec<Finding>) {
    let path = file.effective.as_str();
    let mut has_forbid = false;
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();
        if code.contains("#![forbid(unsafe_code)]") {
            has_forbid = true;
        }
        if line.in_test {
            continue;
        }

        // R1 — deterministic collections in simulation code.
        if in_sim_core(path) {
            for pat in ["HashMap", "HashSet", "hash_map::", "hash_set::"] {
                if code.contains(pat) {
                    findings.push(Finding::new(
                        path,
                        lineno,
                        "R1",
                        format!(
                            "`{pat}` in node-simulation code: unordered iteration breaks the \
                             deterministic-replay contract; use BTreeMap/BTreeSet or an \
                             index-based Vec"
                        ),
                    ));
                    break;
                }
            }
        }

        // R2 — parallelism flows through the deterministic node pool.
        if !is_par_nodes(path) {
            for pat in [
                "std::thread",
                "thread::spawn(",
                "thread::scope(",
                "thread::Builder",
            ] {
                if code.contains(pat) {
                    findings.push(Finding::new(
                        path,
                        lineno,
                        "R2",
                        format!(
                            "`{pat}` outside crates/sim/src/par_nodes.rs: all parallelism must \
                             go through par_map_nodes so runs stay bit-identical to sequential"
                        ),
                    ));
                    break;
                }
            }
        }

        // R3 — no ambient nondeterminism in library code.
        for pat in [
            "thread_rng",
            "SystemTime::now",
            "Instant::now",
            "rand::random",
            "RandomState",
            "from_entropy",
        ] {
            if code.contains(pat) {
                findings.push(Finding::new(
                    path,
                    lineno,
                    "R3",
                    format!(
                        "`{pat}` is ambient nondeterminism: all randomness and time must flow \
                         through the seeded rng modules so (seed, graph, params) fixes the run"
                    ),
                ));
                break;
            }
        }

        // R5 — panics must state the violated invariant.
        if in_sim_core(path) {
            if code.contains(".unwrap()") {
                findings.push(Finding::new(
                    path,
                    lineno,
                    "R5",
                    "bare `unwrap()` in library code: use `expect(\"<invariant>\")` or a typed \
                     error so a panic names the broken invariant",
                ));
            }
            if let Some(msg) = short_expect_message(line) {
                findings.push(Finding::new(
                    path,
                    lineno,
                    "R5",
                    format!("`expect(\"{msg}\")` message too short to state an invariant"),
                ));
            }
        }

        // R6 — charges go through declared counters; no direct field bumps.
        if !is_metrics(path) {
            if !counters.is_empty() {
                for name in charge_calls(code) {
                    if !counters.contains(&name) {
                        findings.push(Finding::new(
                            path,
                            lineno,
                            "R6",
                            format!(
                                "`{name}()` is not declared in crates/sim/src/metrics.rs: \
                                 stale or ad-hoc counter (declared: {})",
                                counters.join(", ")
                            ),
                        ));
                    }
                }
            }
            if in_sim_core(path) {
                for pat in [".rounds +=", ".messages +=", ".bits +=", ".violations +="] {
                    if code.contains(pat) {
                        findings.push(Finding::new(
                            path,
                            lineno,
                            "R6",
                            format!(
                                "direct `{pat}` on a ledger counter bypasses the charge_* API; \
                                 add or use a RoundLedger method so charges stay byte-identical \
                                 and auditable"
                            ),
                        ));
                        break;
                    }
                }
            }
        }

        // R9 — in the simulator crate, ledger charging is the round core's
        // job: engines describe transports, the core bills them.
        if path.starts_with("crates/sim/src") && !is_metrics(path) && !is_runtime(path) {
            for name in charge_calls(code) {
                findings.push(Finding::new(
                    path,
                    lineno,
                    "R9",
                    format!(
                        "`{name}()` charges a ledger outside the round core: in crates/sim \
                         all RoundLedger charging lives in runtime.rs (or metrics.rs itself) \
                         so every engine bills through one audited path"
                    ),
                ));
            }
        }

        // R7 — engine bandwidth must reference named constants.
        check_bandwidth_literals(file, idx, findings);
    }

    // R4 — crate roots forbid unsafe code.
    if is_crate_root(path) && !has_forbid && !file.lines.is_empty() {
        findings.push(Finding::new(
            path,
            1,
            "R4",
            "crate root is missing `#![forbid(unsafe_code)]`",
        ));
    }
}

/// Yields the names of `.charge_*()` method calls in `code`.
fn charge_calls(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = code;
    while let Some(at) = rest.find(".charge_") {
        let ident_start = at + 1;
        let name: String = rest[ident_start..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if rest[ident_start + name.len()..].starts_with('(') {
            out.push(name);
        }
        rest = &rest[ident_start..];
    }
    out
}

/// If the line calls `.expect("...")` with a string literal shorter than 4
/// characters, returns the literal (from the raw channel, where string
/// contents survive).
fn short_expect_message(line: &Line) -> Option<String> {
    let at = line.code.find(".expect(\"")?;
    // The code channel blanks string contents, so the literal must be read
    // from the raw text at its own offset.
    let raw_at = line.raw.find(".expect(\"")?;
    let _ = at;
    let msg_start = raw_at + ".expect(\"".len();
    let rest = &line.raw[msg_start..];
    let close = rest.find('"')?;
    let msg = &rest[..close];
    (msg.chars().count() < 4).then(|| msg.to_string())
}

const ENGINE_CTORS: &[&str] = &[
    "CliqueEngine::strict(",
    "CliqueEngine::audit(",
    "CliqueEngine::new(",
    "CongestEngine::strict(",
    "CongestEngine::audit(",
    "CongestEngine::new(",
];

/// R7: flags engine constructions whose bandwidth argument is a bare
/// integer literal (library code in crates/core and crates/sim only).
fn check_bandwidth_literals(file: &SourceFile, idx: usize, findings: &mut Vec<Finding>) {
    let path = file.effective.as_str();
    if !in_sim_core(path) {
        return;
    }
    let code = file.lines[idx].code.as_str();
    for pat in ENGINE_CTORS {
        let Some(at) = code.find(pat) else { continue };
        // Join up to 3 following lines so multi-line constructor calls
        // still parse; the args end at the matching close paren.
        let mut text = code[at + pat.len()..].to_string();
        for follow in file.lines.iter().skip(idx + 1).take(3) {
            text.push(' ');
            text.push_str(&follow.code);
        }
        let Some(args) = top_level_args(&text) else {
            continue;
        };
        if let Some(bandwidth) = args.get(1) {
            let b = bandwidth
                .trim()
                .trim_end_matches("u64")
                .trim_end_matches('_');
            if !b.is_empty() && b.chars().all(|c| c.is_ascii_digit() || c == '_') {
                findings.push(Finding::new(
                    path,
                    idx + 1,
                    "R7",
                    format!(
                        "magic bandwidth literal `{b}` in `{}`: reference the named O(log n) \
                         word-size constants (cc_mis_sim::bits::standard_bandwidth and friends) \
                         so the Lemma 2.12/2.14 bounds stay auditable",
                        pat.trim_end_matches('(')
                    ),
                ));
            }
        }
    }
}

/// Splits the text of an argument list (starting just after the opening
/// paren) at top-level commas; returns `None` if the close paren is never
/// found in the provided text.
fn top_level_args(text: &str) -> Option<Vec<String>> {
    let mut depth = 0i32;
    let mut args = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        match c {
            '(' | '[' | '{' => {
                depth += 1;
                cur.push(c);
            }
            ')' | ']' | '}' if depth > 0 => {
                depth -= 1;
                cur.push(c);
            }
            ')' => {
                args.push(cur);
                return Some(args);
            }
            ',' if depth == 0 => args.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    None
}

/// R8: checks one `Cargo.toml` for registry dependencies. Every entry in a
/// dependency table must resolve in-tree (`path = …` or `workspace = true`).
pub fn check_manifest(path: &str, text: &str, findings: &mut Vec<Finding>) {
    #[derive(PartialEq)]
    enum Section {
        Deps,
        /// `[dependencies.foo]` — judged when the section closes.
        DepEntry {
            name: String,
            line: usize,
            ok: bool,
        },
        Other,
    }
    let mut section = Section::Other;
    let close_entry = |section: &Section, findings: &mut Vec<Finding>| {
        if let Section::DepEntry { name, line, ok } = section {
            if !ok {
                findings.push(registry_finding(path, *line, name));
            }
        }
    };
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            close_entry(&section, findings);
            let name = line.trim_start_matches('[').trim_end_matches(']');
            section = if let Some(entry) = name
                .strip_prefix("dependencies.")
                .or_else(|| name.strip_prefix("dev-dependencies."))
                .or_else(|| name.strip_prefix("build-dependencies."))
                .or_else(|| name.strip_prefix("workspace.dependencies."))
            {
                Section::DepEntry {
                    name: entry.to_string(),
                    line: lineno,
                    ok: false,
                }
            } else if name.ends_with("dependencies") {
                Section::Deps
            } else {
                Section::Other
            };
            continue;
        }
        match &mut section {
            Section::Deps => {
                let Some((key, value)) = line.split_once('=') else {
                    continue;
                };
                let value = value.trim();
                if !value.contains("path") && !value.contains("workspace = true") {
                    findings.push(registry_finding(path, lineno, key.trim()));
                }
            }
            Section::DepEntry { ok, .. } => {
                let key = line.split('=').next().unwrap_or("").trim();
                if key == "path" || (key == "workspace" && line.contains("true")) {
                    *ok = true;
                }
            }
            Section::Other => {}
        }
    }
    close_entry(&section, findings);
}

fn registry_finding(path: &str, line: usize, name: &str) -> Finding {
    Finding::new(
        path,
        line,
        "R8",
        format!(
            "dependency `{name}` resolves to a registry crate: the workspace must build fully \
             offline — use a path/workspace dependency or vendor the code in-tree"
        ),
    )
}
