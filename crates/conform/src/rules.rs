//! The conformance rule set.
//!
//! Each rule enforces one contract the reproduction's guarantees rest on
//! (see DESIGN.md §8 for the rule ↔ contract table). Rules are lexical:
//! they run over the scanner's code channel, so comments, doc-examples,
//! and string contents never trip them, and most rules skip test code
//! (the contracts bind the simulation, not its assertions).

use std::collections::BTreeSet;

use crate::callgraph::{CallGraph, FnNode};
use crate::diag::Finding;
use crate::fixes::{self, Edit, Fix};
use crate::pragma::{self, Pragma};
use crate::scanner::{Line, SourceFile};
use crate::syntax::{
    self, ident_of, line_of, punct_of, walk_exprs, ExprCtx, FileSyntax, Tok, Token, Tree,
};

/// Static description of one rule, including the `--explain` material.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable id used in diagnostics and pragmas.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// The contract the rule enforces, stated as an invariant.
    pub contract: &'static str,
    /// Why the reproduction needs the contract.
    pub rationale: &'static str,
    /// Recipe for fixing a finding (or justifying a pragma).
    pub fix: &'static str,
}

/// All rules, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "R1",
        summary: "no HashMap/HashSet in node-simulation library code (crates/core, crates/sim): \
                  unordered iteration breaks deterministic replay",
        contract: "library code under crates/core/src and crates/sim/src never names \
                   HashMap/HashSet or their module paths",
        rationale: "hash iteration order depends on RandomState; any node loop over a hash \
                    collection makes (seed, graph, params) stop fixing the run, breaking \
                    replay and the golden-ledger pins",
        fix: "use BTreeMap/BTreeSet, or an index-based Vec keyed by dense node ids",
    },
    RuleInfo {
        id: "R2",
        summary: "no std::thread outside crates/sim/src/par_nodes.rs: all parallelism flows \
                  through the deterministic node pool",
        contract: "std::thread (spawn/scope/Builder) appears only in \
                   crates/sim/src/par_nodes.rs",
        rationale: "par_map_nodes is the one parallel primitive proven bit-identical to \
                    sequential execution; ad-hoc threads reintroduce scheduling \
                    nondeterminism the equivalence tests cannot see",
        fix: "express the parallel loop as par_map_nodes over a node range",
    },
    RuleInfo {
        id: "R3",
        summary: "no ambient nondeterminism (thread_rng, SystemTime::now, Instant::now, \
                  RandomState) in library code: randomness must flow through seeded rng modules",
        contract: "library code draws randomness and time only through the seeded rng \
                   modules (SplitMix64, SharedRandomness)",
        rationale: "the paper's guarantees are statements about seeded executions; an \
                    ambient source anywhere in a charged path makes runs unreproducible",
        fix: "thread a seed or a SharedRandomness stream down to the call site; bench \
              timing belongs in test/bench targets (which the rule skips)",
    },
    RuleInfo {
        id: "R4",
        summary: "every crate root (src/lib.rs, src/main.rs) carries #![forbid(unsafe_code)]",
        contract: "each crate root declares #![forbid(unsafe_code)]",
        rationale: "forbid (not deny) means no module can opt back in; the simulators have \
                    no business with unsafe and the audit surface stays zero",
        fix: "add `#![forbid(unsafe_code)]` at the top of src/lib.rs / src/main.rs",
    },
    RuleInfo {
        id: "R5",
        summary: "no unwrap()/short expect() in crates/core and crates/sim library code: \
                  panics must name the violated invariant",
        contract: "library panics in crates/core and crates/sim carry an \
                   expect(\"<invariant>\") message of at least 4 characters",
        rationale: "a bare unwrap in a charged path turns a model violation into an \
                    anonymous panic; naming the invariant makes ledger-corrupting states \
                    diagnosable from the panic alone",
        fix: "replace `.unwrap()` with `.expect(\"<which invariant holds and why>\")` or \
              return a typed error",
    },
    RuleInfo {
        id: "R6",
        summary: "ledger charges go through counters declared in crates/sim/src/metrics.rs; \
                  no direct += on ledger counter fields elsewhere",
        contract: "every charge_* call names a method declared in metrics.rs, and no code \
                   outside metrics.rs mutates ledger counter fields directly",
        rationale: "the E-series tables are read straight off the ledger; an ad-hoc \
                    counter or direct field bump silently forks the accounting model",
        fix: "add the counter as a RoundLedger method in metrics.rs and call it",
    },
    RuleInfo {
        id: "R7",
        summary: "engine bandwidth arguments in library code reference the named O(log n) \
                  word-size constants (cc_mis_sim::bits), never magic literals",
        contract: "engine constructors receive bandwidth expressions built from \
                   cc_mis_sim::bits constants, not integer literals",
        rationale: "the Lemma 2.12/2.14 bounds are stated in O(log n)-bit words; a magic \
                    literal hides whether an experiment ran in the model or beside it",
        fix: "use standard_bandwidth(n) (or a named constant derived from it)",
    },
    RuleInfo {
        id: "R8",
        summary: "no registry dependencies in any Cargo.toml: every entry must be a path or \
                  workspace dependency (offline-build guard)",
        contract: "every dependency entry in every manifest resolves in-tree (path = … or \
                   workspace = true)",
        rationale: "the workspace builds fully offline; one registry entry breaks the \
                    build everywhere the registry is unreachable",
        fix: "vendor the code in-tree as a workspace crate, or drop the dependency",
    },
    RuleInfo {
        id: "R9",
        summary: "in crates/sim, RoundLedger charge calls appear only in runtime.rs and \
                  metrics.rs: every engine bills through the unified round core",
        contract: "within crates/sim, .charge_*() call sites exist only in runtime.rs and \
                   metrics.rs",
        rationale: "PR 3 unified all engine billing in RoundCore so charges are \
                    byte-identical across engines; a charge elsewhere in the simulator \
                    forks that single audited path",
        fix: "route the charge through RoundCore (emit/record_schedule/finish_round) or \
              add a RoundLedger method and bill from the core",
    },
    RuleInfo {
        id: "R10",
        summary: "every call path that reaches a RoundLedger charge or Transport send stays \
                  inside RoundCore round execution (interprocedural closure of R9)",
        contract: "no library function in crates/core or crates/sim outside \
                   runtime.rs/metrics.rs charges a ledger, directly or through any chain \
                   of calls that reaches an unsanctioned charge site",
        rationale: "R9 pins charge call sites path-wise inside crates/sim; R10 closes the \
                    interprocedural gap — a core-side helper that bills a ledger it owns \
                    bypasses the round core just as surely, and so does any caller of such \
                    a helper",
        fix: "drive the communication through an engine round (RoundCore charges it), or — \
              for analytic replay accounting in crates/core — keep the charge and justify \
              it with `// conform: allow(R10) -- <which lemma the replay implements>`; a \
              justified site stops the caller-side propagation",
    },
    RuleInfo {
        id: "R11",
        summary: "RNG-stream discipline: seeded per-node streams are never .clone()d, and \
                  never re-seeded inside loops in library code",
        contract: "library code does not clone RNG stream state and does not construct \
                   SplitMix64/SharedRandomness inside a loop body; inside the rng modules \
                   themselves no .clone() appears at all without a pragma",
        rationale: "a cloned or re-seeded stream silently replays the same coins, which \
                    breaks the independence assumptions behind every concentration bound \
                    in the paper (and is invisible to the golden-ledger tests, which pin \
                    totals, not distributions)",
        fix: "pass `&mut` to the one stream, or derive an independent per-node stream \
              through the Stream enum / mix3 keying; hoist constructors out of the loop",
    },
    RuleInfo {
        id: "R12",
        summary: "panic/overflow audit on charged paths: no truncating `as` casts, no \
                  64-bit→usize index casts, no bare +/* on ledger counters",
        contract: "inside functions on a charge path in crates/sim: no `as \
                   u8/u16/u32/i8/i16/i32` casts, no `as usize` cast whose operand names a \
                   64-bit type (unchecked index truncation), and no bare `+`/`*` on a \
                   ledger counter field",
        rationale: "ledger math must be provably non-truncating: a silent cast wrap or \
                    counter overflow corrupts the Theorem 1.1 numbers without failing any \
                    test; a checked conversion turns the same bug into a named panic",
        fix: "use the width-safe helpers (cc_mis_sim::bits::idx_u32/idx_usize) or \
              TryFrom with an invariant-naming expect; use \
              checked_add(...).expect(\"<invariant>\") for counter arithmetic",
    },
    RuleInfo {
        id: "R13",
        summary: "no floating point in the accounting modules (metrics.rs, runtime.rs, \
                  routing.rs): ledger bookkeeping is integer-exact",
        contract: "library code in the accounting modules contains no f32/f64 tokens and \
                   no float literals",
        rationale: "float accumulation is rounding-order dependent, so one reassociated \
                    sum would make ledgers diverge across refactors; probability math in \
                    crates/core is exempt — it never writes a ledger",
        fix: "keep counters u64 and compare via cross-multiplication instead of ratios; \
              floats belong in analysis/reporting crates",
    },
    RuleInfo {
        id: "R14",
        summary: "in crates/core, engine rounds are opened only by step-driven runner \
                  modules (files with an `impl Execution for`) or the sanctioned round \
                  substrate: ad-hoc round loops bypass the driver",
        contract: "every non-test `begin_round` call site in crates/core/src sits in a \
                   module that implements the `Execution` trait, or in the round \
                   substrate (cleanup.rs)",
        rationale: "checkpoint/resume is sound only if all round progress flows through \
                    `Execution::step`, where the driver counts steps and snapshots at \
                    boundaries; a round opened outside a runner module advances engine \
                    and ledger state the snapshot layer never sees",
        fix: "move the round loop into an `Execution::step` implementation (driving it \
              via `drive`/`drive_observed`), or — for shared leader-election style \
              subroutines called from `step` — house it in the round substrate module",
    },
    RuleInfo {
        id: "R15",
        summary: "the round hot paths (`Round::send` / `Round::deliver`) are \
                  allocation-free: no `Vec::new` / `with_capacity` / `vec!` / `to_vec` \
                  outside the RoundBuffers pool",
        contract: "in crates/sim/src/runtime.rs, the bodies of non-test `send` and \
                   `deliver` functions on `Round` contain no allocation constructors \
                   (`Vec::new`, `with_capacity`, `vec!`, `to_vec`)",
        rationale: "a per-call or per-round allocation on the send/deliver path turns \
                    the O(n^2)-messages clique round into an allocator benchmark; the \
                    pooled RoundBuffers make steady-state rounds allocation-free, and \
                    this rule keeps refactors from quietly reintroducing the cost",
        fix: "route the buffer through crates/sim/src/pool.rs (take_*/retire_* on \
              RoundBuffers) or hoist the allocation out of the hot path (e.g. into an \
              observer-gated diagnostics helper)",
    },
    RuleInfo {
        id: "R16",
        summary: "pooled buffers are paired: every `RoundBuffers::take_*` / \
                  `take_arena_parts` is retired (or moved out) on every exit path",
        contract: "in crates/core and crates/sim non-test code, a binding holding the \
                   result of `take_dense` / `take_sparse` / `take_outbox` / \
                   `take_arena_parts` is passed to the matching `retire_*` (or `retire`), \
                   returned, stored into a struct/field, before any early `return` or \
                   `?` exit and before the function ends",
        rationale: "a leaked pool buffer silently degrades PR 6's allocation-free \
                    steady state back to per-round allocation — the runs stay correct, \
                    so nothing but this rule would ever notice",
        fix: "retire the buffer on the early-exit path (or restructure so ownership \
              moves into the returned value), or carry a justified allow(R16) if the \
              leak is deliberate (e.g. teardown)",
    },
    RuleInfo {
        id: "R17",
        summary: "snapshot parity: each `impl Execution` writes and reads the same \
                  field sequence (names, widths, order) in `save` and `restore`",
        contract: "for every `impl Execution for T`, the ordered sequence of \
                   `SnapshotWriter` calls in `save` structurally matches the ordered \
                   `read_*` / `expect_*` calls in `restore` — same widths in the same \
                   order, loops and conditionals mirrored, and `expect_*` identity \
                   expressions equal to what `save` wrote",
        rationale: "checkpoint-format drift is the worst failure mode of PR 5: a \
                    same-width reorder restores without any `SnapshotError` and \
                    silently diverges from the straight run, voiding the \
                    resume-equivalence guarantee",
        fix: "make `restore` read exactly what `save` writes, in order; grow the \
              format only by appending fields to both sides",
    },
    RuleInfo {
        id: "R18",
        summary: "observers are diagnostics-only: `RoundObserver` impls never reach \
                  ledger charging or round mutation",
        contract: "no method of a `RoundObserver` impl reaches, through the call \
                   graph, a `.charge_*` call or a `Round`/`RoundCore` mutator in \
                   crates/sim/src/runtime.rs",
        rationale: "the traced and untraced runs are pinned to identical ledgers; an \
                    observer that charges or mutates rounds would make `--trace` \
                    perturb the golden numbers it exists to explain",
        fix: "keep observers to recording (own fields, sinks); move any accounting \
              into the round core where R9/R10 govern it",
    },
    RuleInfo {
        id: "R19",
        summary: "shard isolation: closures given to the `par_nodes` helpers index \
                  captured state only through their shard arguments",
        contract: "a closure passed to `par_zip_shards` / `par_scatter_shards` indexes \
                   mutable state only via its shard-slice parameters (any captured \
                   indexing is flagged); a `par_map_nodes` closure may read captured \
                   slices but not index-write them",
        rationale: "the deterministic thread pool only guarantees bit-identical runs \
                    because shards own disjoint slices; one captured `&mut` index \
                    crossing a shard boundary is a data race the tests can't reliably \
                    catch",
        fix: "pass the state in as a sharded argument, or carry a justified \
              allow(R19) citing the disjointness argument (as the audited scatter \
              core does)",
    },
    RuleInfo {
        id: "R20",
        summary: "executions are driven, not hand-stepped: outside the driver and the \
                  batch scheduler, library code never calls `.step()` directly",
        contract: "in crates/core and crates/sim non-test code, a `.step()` call \
                   appears only in crates/sim/src/driver.rs, in \
                   crates/sim/src/scheduler.rs, or inside a function itself named \
                   `step` (an `Execution` delegating to an inner execution)",
        rationale: "the scheduler's preemption accounting and the driver's \
                    checkpoint cadence both hinge on owning every step boundary; a \
                    hand-rolled `while let Status::Running = exec.step()` loop \
                    advances an execution the step counters and snapshot policy \
                    never see, so batch runs would silently drift from solo runs",
        fix: "drive the execution through `drive`/`drive_observed`/\
              `drive_with_checkpoints` or submit it to `BatchScheduler`; wrappers \
              that forward to an inner execution belong in their own `fn step`",
    },
    RuleInfo {
        id: "R21",
        summary: "determinism taint: shard indices, thread counts, and CC_MIS_* env reads \
                  never flow into ledger charges, RNG seeding, or snapshot writes",
        contract: "in crates/core and crates/sim library code, no value derived from a \
                   par_nodes shard index, thread_count()/available_parallelism(), or a \
                   std::env read appears as an argument to a .charge_* call, a \
                   SplitMix64/SharedRandomness constructor, or a SnapshotWriter write_*",
        rationale: "scheduling identity is the one input allowed to vary between runs of \
                    the same (seed, graph, params); the moment it seeds a stream, bills \
                    a ledger, or lands in a checkpoint, bit-determinism and \
                    resume-equivalence silently depend on the machine",
        fix: "derive the value from simulation state (node ids, round numbers, the \
              seed) instead; thread counts and shard indices may steer scheduling only",
    },
    RuleInfo {
        id: "R22",
        summary: "snapshot-format pinning: each `impl Execution` save() write sequence is \
                  fingerprinted against crates/conform/snapshot_manifest.txt",
        contract: "the ordered SnapshotWriter call sequence of every non-test \
                   `Execution::save` matches the committed manifest entry for that impl; \
                   changing a sequence requires bumping the snapshot VERSION or \
                   regenerating the manifest (conform --update-snapshot-manifest)",
        rationale: "checkpoint fault tolerance depends on old snapshots restoring \
                    byte-exactly; a silent field reorder under an unchanged VERSION \
                    restores garbage without a SnapshotError, and R17 cannot see it \
                    because save and restore drift together",
        fix: "bump `snapshot::VERSION` for a deliberate format change, then run \
              `conform --update-snapshot-manifest` to re-pin the sequences",
    },
    RuleInfo {
        id: "R23",
        summary: "env-read discipline: std::env reads in crates/core and crates/sim live \
                  only in crates/sim/src/config.rs",
        contract: "library code in crates/core/src and crates/sim/src calls \
                   env::var/env::var_os/env::vars only inside the central config module",
        rationale: "environment variables are ambient per-process state; funneling every \
                    read through one module keeps the full set of knobs auditable and \
                    lets R21 verify each one is scheduling-only",
        fix: "add an accessor to crates/sim/src/config.rs and call that",
    },
    RuleInfo {
        id: "R24",
        summary: "process/socket confinement: raw std::process and socket APIs in \
                  crates/core and crates/sim live only in crates/sim/src/shard.rs",
        contract: "library code in crates/core/src and crates/sim/src names \
                   UnixListener/UnixStream/TcpListener/TcpStream, Command::new, \
                   Stdio::, or .kill() only inside the sharded-transport module",
        rationale: "worker processes and byte links are scheduling machinery: every \
                    serialization boundary must speak the checksummed frame codec and \
                    every child must be covered by checkpoint recovery; a stray socket \
                    or spawn elsewhere is a side channel the fault matrix never kills \
                    and the determinism story cannot audit",
        fix: "route the spawn or connection through the FrameLink backends in \
              crates/sim/src/shard.rs",
    },
    RuleInfo {
        id: "P1",
        summary: "conform pragmas must be well-formed, name known rules, and carry a \
                  justification",
        contract: "every `conform: allow(...)` pragma parses, names existing rules, and \
                   ends with `-- <justification>`",
        rationale: "the escape hatch is part of the audit trail: an unjustified allow is \
                    indistinguishable from a silenced bug",
        fix: "write `// conform: allow(Rn) -- <why this site is sound>`",
    },
    RuleInfo {
        id: "P2",
        summary: "stale pragmas: a justified allow(RN) that no longer suppresses any \
                  finding at its site is reported so pragma debt cannot accrete",
        contract: "every rule named by a conform pragma actually fires (and is \
                   suppressed) at the pragma's site during the run",
        rationale: "a pragma that outlives its finding is pure audit noise: it documents \
                    a waiver for a hazard that no longer exists, and it would silently \
                    re-arm if the hazard ever returned in a different shape",
        fix: "delete the pragma (or the rule id within it) once the code it excused \
              has been fixed or removed",
    },
];

/// True if `id` names a rule (usable in a pragma).
pub fn rule_exists(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

pub(crate) fn in_sim_core(path: &str) -> bool {
    path.starts_with("crates/core/src") || path.starts_with("crates/sim/src")
}

fn is_metrics(path: &str) -> bool {
    path == "crates/sim/src/metrics.rs"
}

fn is_par_nodes(path: &str) -> bool {
    path == "crates/sim/src/par_nodes.rs"
}

fn is_runtime(path: &str) -> bool {
    path == "crates/sim/src/runtime.rs"
}

fn is_routing(path: &str) -> bool {
    path == "crates/sim/src/routing.rs"
}

/// The two seeded-stream modules, where R11 forbids any `.clone()`.
fn is_rng_module(path: &str) -> bool {
    path == "crates/sim/src/rng.rs" || path == "crates/graph/src/rng.rs"
}

/// The files where ledger charging is sanctioned (the round core and the
/// ledger itself).
fn is_charge_barrier(path: &str) -> bool {
    is_metrics(path) || is_runtime(path)
}

/// The crates/core round substrate: shared subroutines (leader-election
/// clean-up) that open engine rounds on behalf of a runner's `step`.
fn is_round_substrate(path: &str) -> bool {
    path == "crates/core/src/cleanup.rs"
}

fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs") || path.ends_with("src/main.rs")
}

/// Extracts the `charge_*` counter names declared (`fn charge_x`) in
/// `metrics.rs`-scanned files.
pub fn declared_counters(files: &[SourceFile]) -> Vec<String> {
    let mut out = Vec::new();
    for f in files.iter().filter(|f| is_metrics(&f.effective)) {
        for line in &f.lines {
            let mut rest = line.code.as_str();
            while let Some(at) = rest.find("fn charge_") {
                let ident_start = at + "fn ".len();
                let name: String = rest[ident_start..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() && !out.contains(&name) {
                    out.push(name);
                }
                rest = &rest[ident_start..];
            }
        }
    }
    out.sort();
    out
}

/// Runs rules R1–R7 over one scanned file, appending findings.
pub fn check_file(file: &SourceFile, counters: &[String], findings: &mut Vec<Finding>) {
    let path = file.effective.as_str();
    // R14 marker: a file that implements the `Execution` trait is a
    // driver-sanctioned runner module and may open engine rounds.
    let is_runner_module = file
        .lines
        .iter()
        .any(|l| l.code.contains("impl Execution for"));
    let mut has_forbid = false;
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();
        if code.contains("#![forbid(unsafe_code)]") {
            has_forbid = true;
        }
        if line.in_test {
            continue;
        }

        // R1 — deterministic collections in simulation code.
        if in_sim_core(path) {
            for pat in ["HashMap", "HashSet", "hash_map::", "hash_set::"] {
                if code.contains(pat) {
                    let finding = Finding::new(
                        path,
                        lineno,
                        "R1",
                        format!(
                            "`{pat}` in node-simulation code: unordered iteration breaks the \
                             deterministic-replay contract; use BTreeMap/BTreeSet or an \
                             index-based Vec"
                        ),
                    );
                    findings.push(match r1_fix(line, lineno) {
                        Some(fix) => finding.with_fix(fix),
                        None => finding,
                    });
                    break;
                }
            }
        }

        // R2 — parallelism flows through the deterministic node pool.
        if !is_par_nodes(path) {
            for pat in [
                "std::thread",
                "thread::spawn(",
                "thread::scope(",
                "thread::Builder",
            ] {
                if code.contains(pat) {
                    findings.push(Finding::new(
                        path,
                        lineno,
                        "R2",
                        format!(
                            "`{pat}` outside crates/sim/src/par_nodes.rs: all parallelism must \
                             go through par_map_nodes so runs stay bit-identical to sequential"
                        ),
                    ));
                    break;
                }
            }
        }

        // R3 — no ambient nondeterminism in library code.
        for pat in [
            "thread_rng",
            "SystemTime::now",
            "Instant::now",
            "rand::random",
            "RandomState",
            "from_entropy",
        ] {
            if code.contains(pat) {
                findings.push(Finding::new(
                    path,
                    lineno,
                    "R3",
                    format!(
                        "`{pat}` is ambient nondeterminism: all randomness and time must flow \
                         through the seeded rng modules so (seed, graph, params) fixes the run"
                    ),
                ));
                break;
            }
        }

        // R5 — panics must state the violated invariant.
        if in_sim_core(path) {
            if code.contains(".unwrap()") {
                let finding = Finding::new(
                    path,
                    lineno,
                    "R5",
                    "bare `unwrap()` in library code: use `expect(\"<invariant>\")` or a typed \
                     error so a panic names the broken invariant",
                );
                findings.push(match r5_unwrap_fix(line, lineno) {
                    Some(fix) => finding.with_fix(fix),
                    None => finding,
                });
            }
            if let Some(msg) = short_expect_message(line) {
                let finding = Finding::new(
                    path,
                    lineno,
                    "R5",
                    format!("`expect(\"{msg}\")` message too short to state an invariant"),
                );
                findings.push(match r5_expect_fix(line, lineno, &msg) {
                    Some(fix) => finding.with_fix(fix),
                    None => finding,
                });
            }
        }

        // R6 — charges go through declared counters; no direct field bumps.
        if !is_metrics(path) {
            if !counters.is_empty() {
                for name in charge_calls(code) {
                    if !counters.contains(&name) {
                        findings.push(Finding::new(
                            path,
                            lineno,
                            "R6",
                            format!(
                                "`{name}()` is not declared in crates/sim/src/metrics.rs: \
                                 stale or ad-hoc counter (declared: {})",
                                counters.join(", ")
                            ),
                        ));
                    }
                }
            }
            if in_sim_core(path) {
                for pat in [".rounds +=", ".messages +=", ".bits +=", ".violations +="] {
                    if code.contains(pat) {
                        findings.push(Finding::new(
                            path,
                            lineno,
                            "R6",
                            format!(
                                "direct `{pat}` on a ledger counter bypasses the charge_* API; \
                                 add or use a RoundLedger method so charges stay byte-identical \
                                 and auditable"
                            ),
                        ));
                        break;
                    }
                }
            }
        }

        // R9 — in the simulator crate, ledger charging is the round core's
        // job: engines describe transports, the core bills them.
        if path.starts_with("crates/sim/src") && !is_metrics(path) && !is_runtime(path) {
            for name in charge_calls(code) {
                findings.push(Finding::new(
                    path,
                    lineno,
                    "R9",
                    format!(
                        "`{name}()` charges a ledger outside the round core: in crates/sim \
                         all RoundLedger charging lives in runtime.rs (or metrics.rs itself) \
                         so every engine bills through one audited path"
                    ),
                ));
            }
        }

        // R14 — in crates/core, engine rounds open only under the driver:
        // inside a runner module (one with an `impl Execution for`) or the
        // sanctioned round substrate. Anywhere else, round progress would
        // escape step counting and checkpoint boundaries.
        if path.starts_with("crates/core/src")
            && !is_round_substrate(path)
            && !is_runner_module
            && code.contains("begin_round")
        {
            findings.push(Finding::new(
                path,
                lineno,
                "R14",
                "`begin_round` outside a runner module: rounds in crates/core must be \
                 opened from an `Execution::step` implementation (or the round \
                 substrate) so the driver sees every step boundary for \
                 checkpoint/resume",
            ));
        }

        // R7 — engine bandwidth must reference named constants.
        check_bandwidth_literals(file, idx, findings);
    }

    // R4 — crate roots forbid unsafe code.
    if is_crate_root(path) && !has_forbid && !file.lines.is_empty() {
        findings.push(Finding::new(
            path,
            1,
            "R4",
            "crate root is missing `#![forbid(unsafe_code)]`",
        ));
    }
}

/// Yields the names of `.charge_*()` method calls in `code`.
fn charge_calls(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = code;
    while let Some(at) = rest.find(".charge_") {
        let ident_start = at + 1;
        let name: String = rest[ident_start..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if rest[ident_start + name.len()..].starts_with('(') {
            out.push(name);
        }
        rest = &rest[ident_start..];
    }
    out
}

/// If the line calls `.expect("...")` with a string literal shorter than 4
/// characters, returns the literal (from the raw channel, where string
/// contents survive).
fn short_expect_message(line: &Line) -> Option<String> {
    let at = line.code.find(".expect(\"")?;
    // The code channel blanks string contents, so the literal must be read
    // from the raw text at its own offset.
    let raw_at = line.raw.find(".expect(\"")?;
    let _ = at;
    let msg_start = raw_at + ".expect(\"".len();
    let rest = &line.raw[msg_start..];
    let close = rest.find('"')?;
    let msg = &rest[..close];
    (msg.chars().count() < 4).then(|| msg.to_string())
}

/// R1 autofix: swap every hash-collection token on the line for its ordered
/// counterpart. All four patterns are rewritten at once (one finding per
/// line, but the fix must leave the line clean), via the code channel so
/// strings and comments are untouched.
fn r1_fix(line: &Line, lineno: usize) -> Option<Fix> {
    const SWAPS: &[(&str, &str)] = &[
        ("HashMap", "BTreeMap"),
        ("HashSet", "BTreeSet"),
        ("hash_map::", "btree_map::"),
        ("hash_set::", "btree_set::"),
    ];
    let chars: Vec<char> = line.code.chars().collect();
    let mut edits = Vec::new();
    for (pat, repl) in SWAPS {
        for at in fixes::find_all(&chars, pat) {
            let span = fixes::code_span(line, lineno, at, at + pat.chars().count())?;
            edits.push(Edit {
                span,
                replacement: repl.to_string(),
            });
        }
    }
    (!edits.is_empty()).then(|| Fix {
        title: "replace hash collections with BTree counterparts".to_string(),
        edits,
    })
}

/// R5 autofix for bare `.unwrap()`: rewrite every occurrence on the line to
/// an invariant-naming `.expect` (the placeholder message passes the rule
/// and tells the reader exactly what to refine).
fn r5_unwrap_fix(line: &Line, lineno: usize) -> Option<Fix> {
    let chars: Vec<char> = line.code.chars().collect();
    let pat = ".unwrap()";
    let edits: Vec<Edit> = fixes::find_all(&chars, pat)
        .into_iter()
        .filter_map(|at| {
            Some(Edit {
                span: fixes::code_span(line, lineno, at, at + pat.len())?,
                replacement: ".expect(\"invariant violated\")".to_string(),
            })
        })
        .collect();
    (!edits.is_empty()).then(|| Fix {
        title: "replace bare unwrap() with an invariant-naming expect".to_string(),
        edits,
    })
}

/// R5 autofix for a too-short `expect("…")` message: prefix it with
/// `invariant: ` (spans computed on the raw channel, where string contents
/// survive — the string literal is exactly what changes).
fn r5_expect_fix(line: &Line, lineno: usize, msg: &str) -> Option<Fix> {
    let raw_at = line.raw.find(".expect(\"")?;
    let open = raw_at + ".expect(".len();
    let close = open + 1 + msg.len();
    if line.raw.as_bytes().get(close) != Some(&b'"') {
        return None;
    }
    let start_col = line.raw[..open].chars().count() + 1;
    let end_col = line.raw[..=close].chars().count() + 1;
    Some(Fix {
        title: "prefix the expect message with the invariant marker".to_string(),
        edits: vec![Edit {
            span: fixes::Span {
                line: lineno,
                start_col,
                end_col,
            },
            replacement: format!("\"invariant: {msg}\""),
        }],
    })
}

const ENGINE_CTORS: &[&str] = &[
    "CliqueEngine::strict(",
    "CliqueEngine::audit(",
    "CliqueEngine::new(",
    "CongestEngine::strict(",
    "CongestEngine::audit(",
    "CongestEngine::new(",
];

/// R7: flags engine constructions whose bandwidth argument is a bare
/// integer literal (library code in crates/core and crates/sim only).
fn check_bandwidth_literals(file: &SourceFile, idx: usize, findings: &mut Vec<Finding>) {
    let path = file.effective.as_str();
    if !in_sim_core(path) {
        return;
    }
    let code = file.lines[idx].code.as_str();
    for pat in ENGINE_CTORS {
        let Some(at) = code.find(pat) else { continue };
        // Join up to 3 following lines so multi-line constructor calls
        // still parse; the args end at the matching close paren.
        let mut text = code[at + pat.len()..].to_string();
        for follow in file.lines.iter().skip(idx + 1).take(3) {
            text.push(' ');
            text.push_str(&follow.code);
        }
        let Some(args) = top_level_args(&text) else {
            continue;
        };
        if let Some(bandwidth) = args.get(1) {
            let b = bandwidth
                .trim()
                .trim_end_matches("u64")
                .trim_end_matches('_');
            if !b.is_empty() && b.chars().all(|c| c.is_ascii_digit() || c == '_') {
                let finding = Finding::new(
                    path,
                    idx + 1,
                    "R7",
                    format!(
                        "magic bandwidth literal `{b}` in `{}`: reference the named O(log n) \
                         word-size constants (cc_mis_sim::bits::standard_bandwidth and friends) \
                         so the Lemma 2.12/2.14 bounds stay auditable",
                        pat.trim_end_matches('(')
                    ),
                );
                let fix = r7_fix(&file.lines[idx], idx + 1, at, pat, &args);
                findings.push(match fix {
                    Some(fix) => finding.with_fix(fix),
                    None => finding,
                });
            }
        }
    }
}

/// R7 autofix: replace the magic bandwidth literal with the named O(log n)
/// constant derived from the constructor's own node-count argument.
/// Attached only when the whole argument list sits on the call line, so the
/// span is a plain single-line replacement.
fn r7_fix(line: &Line, lineno: usize, at: usize, pat: &str, args: &[String]) -> Option<Fix> {
    let tail = &line.code[at + pat.len()..];
    let line_args = top_level_args(tail)?;
    if line_args.len() < 2 || line_args.get(1) != args.get(1) {
        return None;
    }
    let n_expr = line_args[0].trim();
    if n_expr.is_empty() {
        return None;
    }
    let lead = line_args[1]
        .chars()
        .take_while(|c| c.is_whitespace())
        .count();
    let start =
        line.code[..at + pat.len()].chars().count() + line_args[0].chars().count() + 1 + lead;
    let end = start + line_args[1].chars().count() - lead;
    Some(Fix {
        title: "derive the bandwidth from the named O(log n) constant".to_string(),
        edits: vec![Edit {
            span: fixes::code_span(line, lineno, start, end)?,
            replacement: format!("cc_mis_sim::bits::standard_bandwidth({n_expr})"),
        }],
    })
}

/// Splits the text of an argument list (starting just after the opening
/// paren) at top-level commas; returns `None` if the close paren is never
/// found in the provided text.
fn top_level_args(text: &str) -> Option<Vec<String>> {
    let mut depth = 0i32;
    let mut args = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        match c {
            '(' | '[' | '{' => {
                depth += 1;
                cur.push(c);
            }
            ')' | ']' | '}' if depth > 0 => {
                depth -= 1;
                cur.push(c);
            }
            ')' => {
                args.push(cur);
                return Some(args);
            }
            ',' if depth == 0 => args.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    None
}

/// R8: checks one `Cargo.toml` for registry dependencies. Every entry in a
/// dependency table must resolve in-tree (`path = …` or `workspace = true`).
pub fn check_manifest(path: &str, text: &str, findings: &mut Vec<Finding>) {
    #[derive(PartialEq)]
    enum Section {
        Deps,
        /// `[dependencies.foo]` — judged when the section closes.
        DepEntry {
            name: String,
            line: usize,
            ok: bool,
        },
        Other,
    }
    let mut section = Section::Other;
    let close_entry = |section: &Section, findings: &mut Vec<Finding>| {
        if let Section::DepEntry { name, line, ok } = section {
            if !ok {
                findings.push(registry_finding(path, *line, name));
            }
        }
    };
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            close_entry(&section, findings);
            let name = line.trim_start_matches('[').trim_end_matches(']');
            section = if let Some(entry) = name
                .strip_prefix("dependencies.")
                .or_else(|| name.strip_prefix("dev-dependencies."))
                .or_else(|| name.strip_prefix("build-dependencies."))
                .or_else(|| name.strip_prefix("workspace.dependencies."))
            {
                Section::DepEntry {
                    name: entry.to_string(),
                    line: lineno,
                    ok: false,
                }
            } else if name.ends_with("dependencies") {
                Section::Deps
            } else {
                Section::Other
            };
            continue;
        }
        match &mut section {
            Section::Deps => {
                let Some((key, value)) = line.split_once('=') else {
                    continue;
                };
                let value = value.trim();
                if !value.contains("path") && !value.contains("workspace = true") {
                    findings.push(registry_finding(path, lineno, key.trim()));
                }
            }
            Section::DepEntry { ok, .. } => {
                let key = line.split('=').next().unwrap_or("").trim();
                if key == "path" || (key == "workspace" && line.contains("true")) {
                    *ok = true;
                }
            }
            Section::Other => {}
        }
    }
    close_entry(&section, findings);
}

fn registry_finding(path: &str, line: usize, name: &str) -> Finding {
    Finding::new(
        path,
        line,
        "R8",
        format!(
            "dependency `{name}` resolves to a registry crate: the workspace must build fully \
             offline — use a path/workspace dependency or vendor the code in-tree"
        ),
    )
}

/// Runs the structural rules R10–R13, R15, and R20 over the whole parsed
/// workspace.
///
/// `syntaxes`, `pragmas`, and `hits` must be index-aligned with the `.rs`
/// sources the call graph was built from. Pragmas are consulted here (not
/// only in the caller's final filter) because a justified `allow(R10)` on a
/// charge site must also stop the caller-side propagation; every
/// suppression is recorded in `hits` as `(pragma_line, rule)` so the P2
/// stale-pragma pass can see which pragmas earned their keep.
pub fn check_structural(
    sources: &[SourceFile],
    syntaxes: &[FileSyntax],
    graph: &CallGraph,
    pragmas: &[Vec<Pragma>],
    hits: &mut [Vec<(usize, String)>],
    findings: &mut Vec<Finding>,
) {
    check_r10(syntaxes, graph, pragmas, hits, findings);
    check_r11(syntaxes, findings);
    check_r12(syntaxes, graph, findings);
    check_r13(sources, syntaxes, findings);
    check_r15(sources, syntaxes, findings);
    check_r20(sources, syntaxes, findings);
}

/// R10: interprocedural closure of R9 — any library function outside the
/// round core that charges a ledger is flagged, and so is every library
/// caller that can reach it.
fn check_r10(
    syntaxes: &[FileSyntax],
    graph: &CallGraph,
    pragmas: &[Vec<Pragma>],
    hits: &mut [Vec<(usize, String)>],
    findings: &mut Vec<Finding>,
) {
    let admit = |n: &FnNode| {
        let p = syntaxes[n.file].effective.as_str();
        !n.is_test && in_sim_core(p) && !is_charge_barrier(p)
    };
    // Seeds: admitted fns with at least one unsuppressed direct charge.
    let mut seeds = BTreeSet::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if !admit(node) {
            continue;
        }
        for call in &node.calls {
            if call.method && call.name.starts_with("charge_") {
                if let Some(pline) = pragma::suppressing(&pragmas[node.file], "R10", call.line) {
                    hits[node.file].push((pline, "R10".to_string()));
                    continue;
                }
                findings.push(Finding::new(
                    &syntaxes[node.file].effective,
                    call.line,
                    "R10",
                    format!(
                        "`{}` calls `.{}()` outside RoundCore round execution: library \
                         charges must flow through the round core, or carry a justified \
                         allow(R10) for analytic replay accounting",
                        node.name, call.name
                    ),
                ));
                seeds.insert(i);
            }
        }
    }
    if seeds.is_empty() {
        return;
    }
    // Every admitted caller that can reach a dirty fn is itself dirty: the
    // charge happens whenever the caller runs, still outside the core.
    let reach = graph.closure(seeds.iter().copied(), true, false, admit);
    for &c in &reach {
        if seeds.contains(&c) {
            continue;
        }
        let node = &graph.nodes[c];
        let mut seen: BTreeSet<(usize, &str)> = BTreeSet::new();
        for call in &node.calls {
            if graph.resolve(c, call).iter().any(|t| reach.contains(t))
                && seen.insert((call.line, call.name.as_str()))
            {
                findings.push(Finding::new(
                    &syntaxes[node.file].effective,
                    call.line,
                    "R10",
                    format!(
                        "`{}` calls `{}`, which reaches a ledger charge outside the round \
                         core: the whole chain must run under RoundCore round execution",
                        node.name, call.name
                    ),
                ));
            }
        }
    }
}

/// R11: RNG-stream discipline — no `.clone()` on stream state, no stream
/// construction inside loops, in library code. Inside the rng modules
/// themselves, any `.clone()` (test code included) needs a pragma.
fn check_r11(syntaxes: &[FileSyntax], findings: &mut Vec<Finding>) {
    for fs in syntaxes {
        let path = fs.effective.as_str();
        let strict = is_rng_module(path);
        if !strict && !path.contains("/src/") {
            continue;
        }
        for span in &fs.fns {
            if span.is_test && !strict {
                continue;
            }
            let in_lib = !span.is_test;
            walk_exprs(fs.body_of(span), ExprCtx::default(), &mut |sibs, i, ctx| {
                if ctx.in_macro {
                    return;
                }
                // `.clone()` on a receiver that names an RNG stream (any
                // receiver at all inside the rng modules).
                if ident_of(&sibs[i]) == Some("clone")
                    && i >= 2
                    && punct_of(&sibs[i - 1]) == Some('.')
                    && matches!(sibs.get(i + 1), Some(Tree::Group(g)) if g.delim == '(')
                {
                    let receiver = sibs.get(i - 2).and_then(ident_of).unwrap_or("");
                    let lower = receiver.to_ascii_lowercase();
                    let rng_ish = lower.contains("rng") || lower.contains("rand");
                    if (in_lib && rng_ish) || strict {
                        findings.push(Finding::new(
                            path,
                            line_of(&sibs[i]),
                            "R11",
                            format!(
                                "`{}.clone()` duplicates seeded stream state: a cloned \
                                 stream replays the same coins, breaking independence; \
                                 pass `&mut` to the one stream or derive a keyed substream",
                                if receiver.is_empty() {
                                    "<expr>"
                                } else {
                                    receiver
                                }
                            ),
                        ));
                    }
                }
                // `SplitMix64::…` / `SharedRandomness::…` inside a loop body
                // re-seeds a stream per iteration.
                if in_lib
                    && ctx.in_loop
                    && matches!(ident_of(&sibs[i]), Some("SplitMix64" | "SharedRandomness"))
                    && punct_of(sibs.get(i + 1).unwrap_or(&sibs[i])) == Some(':')
                {
                    findings.push(Finding::new(
                        path,
                        line_of(&sibs[i]),
                        "R11",
                        format!(
                            "`{}` constructed inside a loop: re-seeding per iteration \
                             correlates draws across iterations; hoist the stream out of \
                             the loop or key a substream per index (mix3)",
                            ident_of(&sibs[i]).unwrap_or("stream")
                        ),
                    ));
                }
            });
        }
    }
}

/// Ledger counter field names (RoundLedger and PhaseRecord).
const LEDGER_FIELDS: &[&str] = &["rounds", "messages", "bits", "violations"];

/// R12: panic/overflow audit of functions on a charge path in crates/sim.
///
/// The charge-path set is computed in two stages: the caller closure of
/// every charge site (who can trigger a charge), intersected with
/// crates/sim, then the callee closure of that set within crates/sim
/// (everything such a function runs on the way). Core algorithm code is
/// deliberately out of scope — its arithmetic is probability math, not
/// ledger bookkeeping.
fn check_r12(syntaxes: &[FileSyntax], graph: &CallGraph, findings: &mut Vec<Finding>) {
    let mut seeds = BTreeSet::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if node.is_test {
            continue;
        }
        if node.name.starts_with("charge_")
            || node
                .calls
                .iter()
                .any(|c| c.method && c.name.starts_with("charge_"))
        {
            seeds.insert(i);
        }
    }
    let callers = graph.closure(seeds.iter().copied(), true, false, |n| !n.is_test);
    let in_sim =
        |n: &FnNode| !n.is_test && syntaxes[n.file].effective.starts_with("crates/sim/src");
    let sim_roots: Vec<usize> = callers
        .iter()
        .copied()
        .filter(|&i| in_sim(&graph.nodes[i]))
        .collect();
    let charged = graph.closure(sim_roots, false, true, in_sim);
    for &i in &charged {
        let node = &graph.nodes[i];
        if !in_sim(node) {
            continue;
        }
        let fs = &syntaxes[node.file];
        let path = fs.effective.as_str();
        let body = fs.body_of(&fs.fns[node.item]);
        let mut seen: BTreeSet<(usize, &'static str)> = BTreeSet::new();
        walk_exprs(body, ExprCtx::default(), &mut |sibs, j, ctx| {
            if ctx.in_macro {
                return;
            }
            let line = line_of(&sibs[j]);
            // (a)/(b): `as` casts.
            if ident_of(&sibs[j]) == Some("as") {
                match sibs.get(j + 1).and_then(ident_of) {
                    Some(t @ ("u8" | "u16" | "u32" | "i8" | "i16" | "i32"))
                        if seen.insert((line, "cast")) =>
                    {
                        findings.push(Finding::new(
                            path,
                            line,
                            "R12",
                            format!(
                                "truncating `as {t}` in `{}`, which is on a charge \
                                 path: a silent wrap corrupts ledger math; use \
                                 cc_mis_sim::bits::idx_u32 or TryFrom with an \
                                 invariant-naming expect",
                                node.name
                            ),
                        ));
                    }
                    Some("usize")
                        if operand_mentions_64bit(sibs, j) && seen.insert((line, "idx")) =>
                    {
                        let where_ = if ctx.in_index {
                            "an index expression"
                        } else {
                            "a charge path"
                        };
                        findings.push(Finding::new(
                            path,
                            line,
                            "R12",
                            format!(
                                "`as usize` on a 64-bit operand in `{}` (inside \
                                 {where_}): on 32-bit targets this truncates; use \
                                 cc_mis_sim::bits::idx_usize or usize::try_from",
                                node.name
                            ),
                        ));
                    }
                    _ => {}
                }
            }
            // (c): bare `+`/`*` on a ledger counter field (`+=` is R6's
            // business; this closes the `x = x + y` loophole).
            if let Some(field) = ident_of(&sibs[j]).filter(|f| LEDGER_FIELDS.contains(f)) {
                let dotted = j > 0 && punct_of(&sibs[j - 1]) == Some('.');
                let op = sibs.get(j + 1).and_then(punct_of);
                let compound = sibs.get(j + 2).and_then(punct_of) == Some('=');
                if dotted
                    && matches!(op, Some('+' | '*'))
                    && !compound
                    && seen.insert((line, "arith"))
                {
                    findings.push(Finding::new(
                        path,
                        line,
                        "R12",
                        format!(
                            "bare `{}` on ledger counter `.{field}` in `{}`: counter \
                             arithmetic on a charge path must be \
                             checked_add(...).expect(\"<invariant>\") so overflow panics \
                             instead of corrupting the ledger",
                            op.unwrap_or('+'),
                            node.name
                        ),
                    ));
                }
            }
        });
    }
}

/// True if the expression ending just before the `as` at `sibs[as_at]`
/// mentions a 64-bit integer type. Token-level: walks backwards over the
/// operand trees (including group contents) looking for `u64`/`i64`.
/// Misses variables whose 64-bit type is only in a declaration elsewhere —
/// a documented approximation (DESIGN.md §8).
fn operand_mentions_64bit(sibs: &[Tree], as_at: usize) -> bool {
    let mut j = as_at;
    while j > 0 {
        let prev = &sibs[j - 1];
        let expr_ish = match prev {
            Tree::Group(_) => true,
            Tree::Leaf(Token {
                tok: Tok::Ident(s), ..
            }) => !syntax::is_keyword(s) || matches!(s.as_str(), "self" | "Self" | "as"),
            Tree::Leaf(Token {
                tok: Tok::Num(_) | Tok::Lit,
                ..
            }) => true,
            Tree::Leaf(Token {
                tok: Tok::Punct(c), ..
            }) => matches!(c, '.' | ':' | '?'),
        };
        if !expr_ish {
            return false;
        }
        if tree_mentions_64bit(prev) {
            return true;
        }
        j -= 1;
    }
    false
}

fn tree_mentions_64bit(tree: &Tree) -> bool {
    match tree {
        Tree::Leaf(Token {
            tok: Tok::Ident(s), ..
        }) => s == "u64" || s == "i64",
        Tree::Leaf(Token {
            tok: Tok::Num(s), ..
        }) => s.contains("u64") || s.contains("i64"),
        Tree::Leaf(_) => false,
        Tree::Group(g) => g.children.iter().any(tree_mentions_64bit),
    }
}

/// R13: the accounting modules are integer-exact — no float types or
/// literals in library lines of metrics.rs, runtime.rs, or routing.rs.
fn check_r13(sources: &[SourceFile], syntaxes: &[FileSyntax], findings: &mut Vec<Finding>) {
    for (fi, fs) in syntaxes.iter().enumerate() {
        let path = fs.effective.as_str();
        if !(is_metrics(path) || is_runtime(path) || is_routing(path)) {
            continue;
        }
        let lines = &sources[fi].lines;
        // Per offending line: the first offense description, and whether a
        // float *literal* appears (which blocks the mechanical type fix).
        let mut offenses: Vec<(usize, String, bool)> = Vec::new();
        visit_float_tokens(&fs.roots, &mut |line, what| {
            let lit = what == "float literal";
            match offenses.iter_mut().find(|(l, _, _)| *l == line) {
                Some(slot) => slot.2 |= lit,
                None => offenses.push((line, what.to_string(), lit)),
            }
        });
        offenses.sort_by_key(|&(l, _, _)| l);
        for (lineno, what, has_literal) in offenses {
            let Some(line) = lines.get(lineno - 1) else {
                continue;
            };
            if line.in_test {
                continue;
            }
            let finding = Finding::new(
                path,
                lineno,
                "R13",
                format!(
                    "{what} in an accounting module: ledger bookkeeping must be \
                     integer-exact (float accumulation is rounding-order dependent); \
                     keep counters u64 and compare via cross-multiplication"
                ),
            );
            // Fix only when every offense on the line is a type token: a
            // width swap (f64→u64, f32→u32) is mechanical, a literal is not.
            let fix = (!has_literal).then(|| r13_fix(line, lineno)).flatten();
            findings.push(match fix {
                Some(fix) => finding.with_fix(fix),
                None => finding,
            });
        }
    }
}

/// R13 autofix: rewrite every standalone `f64`/`f32` type token on the line
/// to the matching integer width.
fn r13_fix(line: &Line, lineno: usize) -> Option<Fix> {
    let chars: Vec<char> = line.code.chars().collect();
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut edits = Vec::new();
    for (pat, repl) in [("f64", "u64"), ("f32", "u32")] {
        for at in fixes::find_all(&chars, pat) {
            let end = at + 3;
            let standalone =
                (at == 0 || !ident(chars[at - 1])) && (end == chars.len() || !ident(chars[end]));
            if !standalone {
                continue;
            }
            edits.push(Edit {
                span: fixes::code_span(line, lineno, at, end)?,
                replacement: repl.to_string(),
            });
        }
    }
    (!edits.is_empty()).then(|| Fix {
        title: "replace float accounting types with integer widths".to_string(),
        edits,
    })
}

/// R15: the round hot paths are allocation-free — the bodies of
/// `Round::send` and `Round::deliver` in runtime.rs contain no allocation
/// constructors. Steady-state rounds must recycle pooled buffers; a stray
/// `Vec::new`/`vec!` here costs an allocation per round (or per message)
/// on the O(n²) clique path.
fn check_r15(sources: &[SourceFile], syntaxes: &[FileSyntax], findings: &mut Vec<Finding>) {
    const BANNED: [&str; 4] = ["Vec::new", "with_capacity", "vec!", "to_vec("];
    for (fi, fs) in syntaxes.iter().enumerate() {
        let path = fs.effective.as_str();
        if !is_runtime(path) {
            continue;
        }
        let lines = &sources[fi].lines;
        for f in &fs.fns {
            if f.is_test
                || f.self_type.as_deref() != Some("Round")
                || !(f.name == "send" || f.name == "deliver")
            {
                continue;
            }
            for lineno in f.start_line..=f.end_line {
                let Some(line) = lines.get(lineno - 1) else {
                    continue;
                };
                if line.in_test {
                    continue;
                }
                for pat in BANNED {
                    if line.code.contains(pat) {
                        findings.push(Finding::new(
                            path,
                            lineno,
                            "R15",
                            format!(
                                "`{pat}` inside `Round::{}`: the round hot path must stay \
                                 allocation-free — take the buffer from the RoundBuffers \
                                 pool (crates/sim/src/pool.rs) or hoist the allocation out \
                                 of send/deliver",
                                f.name
                            ),
                        ));
                        break;
                    }
                }
            }
        }
    }
}

/// R20: executions are driven, not hand-stepped — in sim-core library
/// code, `.step()` is called only by the driver, the batch scheduler, or a
/// `fn step` forwarding to an inner execution. Any other call site
/// advances an execution outside the step accounting that preemption and
/// checkpoint cadence are built on.
fn check_r20(sources: &[SourceFile], syntaxes: &[FileSyntax], findings: &mut Vec<Finding>) {
    for (fi, fs) in syntaxes.iter().enumerate() {
        let path = fs.effective.as_str();
        if !in_sim_core(path) || is_step_owner(path) {
            continue;
        }
        let lines = &sources[fi].lines;
        for f in &fs.fns {
            if f.is_test || f.name == "step" {
                continue;
            }
            for lineno in f.start_line..=f.end_line {
                let Some(line) = lines.get(lineno - 1) else {
                    continue;
                };
                if line.in_test || !line.code.contains(".step()") {
                    continue;
                }
                findings.push(Finding::new(
                    path,
                    lineno,
                    "R20",
                    format!(
                        "`.step()` called in `{}`, outside the driver/scheduler: a \
                         hand-rolled step loop bypasses the step counters that \
                         preemption and checkpoint cadence rely on — drive the \
                         execution via `drive*` or `BatchScheduler`, or forward from \
                         a `fn step`",
                        f.name
                    ),
                ));
            }
        }
    }
}

/// The two modules sanctioned to advance executions step-by-step: the
/// solo driver and the batch scheduler.
fn is_step_owner(path: &str) -> bool {
    path == "crates/sim/src/driver.rs" || path == "crates/sim/src/scheduler.rs"
}

/// Calls `f(line, description)` for every float type name or float literal
/// in `trees` (recursively).
fn visit_float_tokens(trees: &[Tree], f: &mut impl FnMut(usize, &str)) {
    for t in trees {
        match t {
            Tree::Leaf(Token {
                tok: Tok::Ident(s),
                line,
            }) if s == "f64" || s == "f32" => f(*line, "float type `f64`/`f32`"),
            Tree::Leaf(Token {
                tok: Tok::Num(s),
                line,
            }) if s.contains('.') || s.contains("f64") || s.contains("f32") => {
                f(*line, "float literal")
            }
            Tree::Group(g) => visit_float_tokens(&g.children, f),
            Tree::Leaf(_) => {}
        }
    }
}
