//! Line/token scanner over Rust sources.
//!
//! The conformance rules are lexical: they match tokens that must (or must
//! not) appear in particular regions of the tree. To keep them honest the
//! scanner separates, per line, the *code* text from the *comment* text —
//! string-literal contents are blanked out of the code channel (so a log
//! message mentioning `HashMap` never trips R1) and comments are removed
//! from the code channel entirely (so doc-examples never trip call-site
//! rules) while remaining available for pragma parsing.
//!
//! It also computes, per line, whether the line is **test code**: inside a
//! `#[cfg(test)]` item, or in a file that is itself a test/bench/example
//! target. Most rules only police library code — the determinism contracts
//! bind the simulation, not its assertions.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Original line text (used for `expect("...")` message checks, where
    /// the string contents matter).
    pub raw: String,
    /// Code channel: comments stripped, string/char literal contents
    /// blanked (the delimiting quotes are kept).
    pub code: String,
    /// For each char of `code`, the char offset of the corresponding char
    /// in `raw`. This is the bridge the autofix engine uses: rules match on
    /// the blanked code channel, then translate match positions into spans
    /// over the original text through this map.
    pub map: Vec<u32>,
    /// Comment channel: the text of any `//`, `///`, `//!`, or block
    /// comment on this line.
    pub comment: String,
    /// True if the line is test code (see module docs).
    pub in_test: bool,
}

/// A scanned source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path used for rule scoping and diagnostics — workspace-relative,
    /// with `/` separators. Fixture files may override it via a
    /// `conform-fixture: <path>` comment in their first lines.
    pub effective: String,
    /// Scanned lines, in order (line numbers are `index + 1`).
    pub lines: Vec<Line>,
}

/// Lexer state carried across lines.
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Scans `text` as Rust source. `effective_path` should be the
/// workspace-relative path; a `conform-fixture: <path>` comment within the
/// first five lines overrides it (so linter fixtures can impersonate any
/// location in the tree).
pub fn scan_str(effective_path: &str, text: &str) -> SourceFile {
    let effective = fixture_override(text).unwrap_or_else(|| effective_path.to_string());
    let mut lines = lex(text);
    mark_tests(&effective, &mut lines);
    SourceFile { effective, lines }
}

/// Lexes `text` *without* test marking: the single-parse indexer
/// ([`crate::index_str`]) applies structural `cfg(test)` spans itself from
/// the one shared parse. Returns the effective path, the lexed lines, and
/// whether the whole file is a test target.
pub(crate) fn lex_parts(effective_path: &str, text: &str) -> (String, Vec<Line>, bool) {
    let effective = fixture_override(text).unwrap_or_else(|| effective_path.to_string());
    let lines = lex(text);
    let whole_file_test = test_path(&effective);
    (effective, lines, whole_file_test)
}

/// The effective path of an input without lexing it: the
/// `conform-fixture:` override when present, the given path otherwise.
/// The `--fix` applier uses this to map findings (keyed by effective path)
/// back to the on-disk file they belong to.
pub fn effective_path(path: &str, text: &str) -> String {
    fixture_override(text).unwrap_or_else(|| path.to_string())
}

/// Looks for `conform-fixture: <path>` in the first five lines.
fn fixture_override(text: &str) -> Option<String> {
    for line in text.lines().take(5) {
        if let Some(at) = line.find("conform-fixture:") {
            let path = line[at + "conform-fixture:".len()..].trim();
            if !path.is_empty() {
                return Some(path.to_string());
            }
        }
    }
    None
}

/// Splits `text` into [`Line`]s with code/comment channels separated.
fn lex(text: &str) -> Vec<Line> {
    let chars: Vec<char> = text.chars().collect();
    let mut lines = Vec::new();
    let mut raw = String::new();
    let mut code = String::new();
    let mut map: Vec<u32> = Vec::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut i = 0usize;
    // Char length of `raw` for the current line, tracked incrementally so
    // each `code` char can record its raw position in O(1).
    let mut rawn = 0u32;

    macro_rules! flush_line {
        () => {
            lines.push(Line {
                raw: std::mem::take(&mut raw),
                code: std::mem::take(&mut code),
                map: std::mem::take(&mut map),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
            // The final flush's reset is dead by construction; keep the
            // counter zeroed unconditionally so every call site is uniform.
            rawn = 0;
            let _ = rawn;
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            flush_line!();
            i += 1;
            continue;
        }
        raw.push(c);
        rawn += 1;
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    comment.push('/');
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    raw.push('*');
                    rawn += 1;
                    i += 1;
                } else if c == '"' {
                    code.push('"');
                    map.push(rawn - 1);
                    state = State::Str;
                } else if let Some(hashes) = raw_string_open(&chars, i) {
                    // `r"`, `r#"`, `br##"`, … — skip the prefix, enter the
                    // raw string. The prefix chars still land in `raw`.
                    code.push('"');
                    map.push(rawn - 1);
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'r')
                        || chars.get(j) == Some(&'#')
                        || chars.get(j) == Some(&'"')
                    {
                        raw.push(chars[j]);
                        rawn += 1;
                        if chars[j] == '"' {
                            break;
                        }
                        j += 1;
                    }
                    i = j;
                    state = State::RawStr(hashes);
                } else if c == '\'' {
                    // Char literal vs. lifetime: a char literal closes with
                    // a `'` within a couple of characters.
                    if let Some(close) = char_literal_close(&chars, i) {
                        code.push('\'');
                        map.push(rawn - 1);
                        for &lit in chars.iter().take(close + 1).skip(i + 1) {
                            if lit == '\n' {
                                break;
                            }
                            raw.push(lit);
                            rawn += 1;
                        }
                        code.push('\'');
                        map.push(rawn - 1);
                        i = close;
                    } else {
                        code.push('\'');
                        map.push(rawn - 1);
                    }
                } else {
                    code.push(c);
                    map.push(rawn - 1);
                }
            }
            State::LineComment => comment.push(c),
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    raw.push('/');
                    rawn += 1;
                    i += 1;
                    if depth == 1 {
                        state = State::Code;
                        // Keep tokens on either side of a block comment
                        // separated in the code channel.
                        code.push(' ');
                        map.push(rawn - 1);
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                } else if c == '/' && next == Some('*') {
                    raw.push('*');
                    rawn += 1;
                    i += 1;
                    state = State::BlockComment(depth + 1);
                } else {
                    comment.push(c);
                }
            }
            State::Str => {
                if c == '\\' {
                    if let Some(&n) = chars.get(i + 1) {
                        if n != '\n' {
                            raw.push(n);
                            rawn += 1;
                            i += 1;
                        }
                    }
                } else if c == '"' {
                    code.push('"');
                    map.push(rawn - 1);
                    state = State::Code;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && raw_string_closes(&chars, i, hashes) {
                    for k in 0..hashes {
                        raw.push(chars[i + 1 + k as usize]);
                    }
                    rawn += hashes;
                    i += hashes as usize;
                    code.push('"');
                    map.push(rawn - 1);
                    state = State::Code;
                }
            }
        }
        i += 1;
    }
    if !raw.is_empty() || !code.is_empty() || !comment.is_empty() {
        flush_line!();
    }
    let _ = state;
    lines
}

/// If position `i` starts a raw-string prefix (`r`/`br` + `#`s + `"`),
/// returns the hash count.
fn raw_string_open(chars: &[char], i: usize) -> Option<u32> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    // An identifier character before the prefix means this `r` is just part
    // of a name like `for` or `var`.
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// True if the `"` at position `i` is followed by `hashes` `#` characters.
fn raw_string_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'))
}

/// If position `i` (a `'`) opens a char literal, returns the index of the
/// closing `'`. Otherwise (a lifetime) returns `None`.
fn char_literal_close(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escapes: `'\n'`, `'\''`, `'\u{...}'`, `'\x41'`.
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' && j < i + 12 {
                j += 1;
            }
            (chars.get(j) == Some(&'\'')).then_some(j)
        }
        Some('\'') | Some('\n') | None => None,
        Some(_) => (chars.get(i + 2) == Some(&'\'')).then_some(i + 2),
    }
}

/// True if the whole file is a test/bench/example/fixture target by path.
fn test_path(effective: &str) -> bool {
    let parts: Vec<&str> = effective.split('/').collect();
    parts[..parts.len().saturating_sub(1)]
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples" | "fixtures"))
}

/// Marks lines inside `#[cfg(test)]` items (and whole test-target files).
/// The per-item marking is structural: [`crate::syntax`] parses the code
/// channel into token trees and attributes `#[cfg(test)]` to the item it
/// governs, so nested modules, multi-line items, and braces inside
/// literals are all handled exactly.
fn mark_tests(effective: &str, lines: &mut [Line]) {
    if test_path(effective) {
        for l in lines.iter_mut() {
            l.in_test = true;
        }
        return;
    }
    crate::syntax::mark_cfg_test(lines);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_leave_the_code_channel() {
        let f = scan_str(
            "crates/core/src/x.rs",
            "let a = \"HashMap\"; // HashMap here\nlet b = 1; /* HashMap */ let c = 2;\n",
        );
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].comment.contains("HashMap"));
        assert!(!f.lines[1].code.contains("HashMap"));
        assert!(f.lines[1].code.contains("let c"));
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked() {
        let f = scan_str(
            "crates/core/src/x.rs",
            "let s = r#\"Instant::now\"#;\nlet c = 'x'; let l: &'static str = \"\";\n",
        );
        assert!(!f.lines[0].code.contains("Instant::now"));
        assert!(f.lines[1].code.contains("&'static str"));
        assert!(
            !f.lines[1].code.contains('x'),
            "char literal contents blanked"
        );
    }

    #[test]
    fn code_to_raw_map_survives_comments_and_strings() {
        let f = scan_str(
            "crates/core/src/x.rs",
            "let a /* gap */ = \"s\"; x.unwrap();\n",
        );
        let line = &f.lines[0];
        assert_eq!(line.code.chars().count(), line.map.len());
        // Every code char that is not synthetic whitespace/blanking maps to
        // the identical char in `raw`.
        let raw: Vec<char> = line.raw.chars().collect();
        let at = line
            .code
            .find(".unwrap()")
            .expect("pattern in code channel");
        let start = line.code[..at].chars().count();
        let mapped: String = (start..start + ".unwrap()".len())
            .map(|k| raw[line.map[k] as usize])
            .collect();
        assert_eq!(mapped, ".unwrap()");
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib2() {}\n";
        let f = scan_str("crates/core/src/x.rs", src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod prod {\n    fn p() {}\n}\n";
        let f = scan_str("crates/core/src/x.rs", src);
        assert!(f.lines.iter().all(|l| !l.in_test));
    }

    #[test]
    fn test_target_paths_are_all_test() {
        let f = scan_str("crates/core/tests/t.rs", "fn x() {}\n");
        assert!(f.lines[0].in_test);
        let f = scan_str("examples/demo.rs", "fn x() {}\n");
        assert!(f.lines[0].in_test);
    }

    #[test]
    fn fixture_override_rewrites_the_effective_path() {
        let f = scan_str(
            "crates/conform/tests/fixtures/r1.rs",
            "// conform-fixture: crates/core/src/demo.rs\nfn x() {}\n",
        );
        assert_eq!(f.effective, "crates/core/src/demo.rs");
        assert!(!f.lines[1].in_test);
    }
}
