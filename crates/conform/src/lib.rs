//! `cc-mis-conform` — the in-tree conformance linter.
//!
//! PR 1 made the simulators fast by leaning on contracts nothing enforced
//! mechanically: `par_nodes` runs bit-identical to sequential, f64
//! accumulation orders are preserved, round/bit/message charges are
//! byte-identical across engines, and the workspace builds with zero
//! registry access. The paper's guarantees (the Lemma 2.12/2.14 bandwidth
//! bounds, the `O(log n)`-bit congested-clique message limit) only hold in
//! this reproduction while every hot-path edit respects those invariants —
//! so this crate enforces them the way production stacks do: a linter in
//! the tier-1 gate, not a review checklist.
//!
//! The linter is deliberately **zero-dependency and offline** (no dylint,
//! no rustc internals, no registry crates): a line/token scanner
//! ([`scanner`]), a token-tree layer ([`syntax`]) and approximate call
//! graph ([`callgraph`]) on top of it, a rule set ([`rules`], lexical
//! R1–R9 plus structural/interprocedural R10–R15/R20), dataflow rules
//! R16–R19 ([`dataflow`]), determinism-taint rules R21–R24 ([`taint`]),
//! and a justified-pragma escape hatch ([`pragma`], with stale-pragma
//! detection `P2`). Diagnostics are stable `file:line rule-id message`
//! lines ([`diag`]), with `--json` and `--sarif` output via
//! `cc_mis_analysis::json`, and `--explain <rule>` prints each rule's
//! contract, rationale, and fix recipe. Mechanical rules attach structured
//! [`fixes`] applied by `--fix`; workspace runs reuse a persistent
//! [`cache`] keyed by content hashes and the rule-set fingerprint.
//!
//! Run it with `cargo run -p cc-mis-conform -- --workspace` (or
//! `scripts/conform.sh`); the process exits nonzero on any finding
//! (exit 3 if any finding is severity `error`: P1/R16/R17/R21/R22).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cache;
pub mod callgraph;
pub mod dataflow;
pub mod diag;
pub mod fixes;
pub mod pragma;
pub mod rules;
pub mod scanner;
pub mod syntax;
pub mod taint;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use diag::Finding;

/// An input to the checker: a path (used for scoping/diagnostics unless the
/// file carries a `conform-fixture:` override) plus its contents.
#[derive(Debug, Clone)]
pub struct Input {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// File contents.
    pub text: String,
}

/// One workspace file, lexed and parsed exactly once. Every rule layer —
/// lexical, structural, dataflow — consumes this shared index; the
/// single-parse contract is pinned by a test over
/// [`syntax::parse_invocations`].
#[derive(Debug)]
pub struct FileIndex {
    /// Line-scanner output: code/comment channels, test marks.
    pub source: scanner::SourceFile,
    /// Token-tree output: roots and fn spans.
    pub syntax: syntax::FileSyntax,
}

/// Lexes and parses one `.rs` input into its shared [`FileIndex`].
pub fn index_str(path: &str, text: &str) -> FileIndex {
    let (effective, lines, whole_file_test) = scanner::lex_parts(path, text);
    let (source, syntax) = syntax::index_file(effective, lines, whole_file_test);
    FileIndex { source, syntax }
}

/// Per-phase wall-clock of one [`check_with`] run, filled when the CLI is
/// invoked with `--timings`.
#[derive(Debug, Default, Clone)]
pub struct Timings {
    /// Number of `.rs` files indexed.
    pub files: usize,
    /// Lex + the single parse into the shared [`FileIndex`]es.
    pub index_ms: u128,
    /// Pragma collection plus the per-line lexical rules (R1–R9, R14).
    pub lexical_ms: u128,
    /// Call-graph build plus the structural rules (R10–R15).
    pub structural_ms: u128,
    /// The dataflow rules (R16–R19).
    pub dataflow_ms: u128,
    /// The determinism-taint rules (R21–R24) plus stale-pragma detection.
    pub taint_ms: u128,
    /// `(hits, misses)` of the persistent workspace cache, when a cached
    /// run was attempted (see [`cache`]).
    pub cache: Option<(usize, usize)>,
}

impl Timings {
    /// Stable multi-line rendering for stderr.
    pub fn render(&self) -> String {
        let mut out = format!(
            "timings: {} file(s)\n  index (lex + parse) {:>5} ms\n  lexical rules       {:>5} ms\n  structural rules    {:>5} ms\n  dataflow rules      {:>5} ms\n  taint rules         {:>5} ms",
            self.files,
            self.index_ms,
            self.lexical_ms,
            self.structural_ms,
            self.dataflow_ms,
            self.taint_ms
        );
        if let Some((hits, misses)) = self.cache {
            out.push_str(&format!(
                "\n  cache               {hits} hit(s), {misses} miss(es)"
            ));
        }
        out
    }
}

/// The linter's only clock: wall time for `--timings` diagnostics.
fn clock() -> std::time::Instant {
    // conform: allow(R3) -- linter --timings wall clock; diagnostics only, never simulation state
    std::time::Instant::now()
}

/// Checks a set of inputs (`.rs` sources and `Cargo.toml` manifests) and
/// returns the sorted findings. This is the engine behind the CLI; tests
/// drive it directly with fixture inputs.
pub fn check(inputs: &[Input]) -> Vec<Finding> {
    check_with(inputs, None)
}

/// [`check`] with optional per-phase timing collection.
pub fn check_with(inputs: &[Input], timings: Option<&mut Timings>) -> Vec<Finding> {
    analyze(inputs, timings).findings
}

/// Full analysis output. The extras beyond `findings` feed the persistent
/// [`cache`]: the effective path of every `.rs` input (for finding
/// attribution) and the file-level call-graph edges (for invalidation by
/// dependency closure).
pub struct Analysis {
    /// The sorted findings.
    pub findings: Vec<Finding>,
    /// Effective path of each `.rs` input, in `.rs`-input order.
    pub effectives: Vec<String>,
    /// Deduplicated file-level call-graph edges, as indices into the
    /// `.rs`-input order.
    pub edges: Vec<(u32, u32)>,
}

/// The full rule pipeline: index once, then lexical, structural, dataflow,
/// and taint phases, pragma filtering (recording hits for the `P2`
/// stale-pragma pass), and manifest checks.
pub fn analyze(inputs: &[Input], mut timings: Option<&mut Timings>) -> Analysis {
    let mut findings = Vec::new();
    let t = clock();
    let mut sources: Vec<scanner::SourceFile> = Vec::new();
    let mut syntaxes: Vec<syntax::FileSyntax> = Vec::new();
    for input in inputs.iter().filter(|i| i.path.ends_with(".rs")) {
        let ix = index_str(&input.path, &input.text);
        sources.push(ix.source);
        syntaxes.push(ix.syntax);
    }
    if let Some(tm) = timings.as_deref_mut() {
        tm.files = sources.len();
        tm.index_ms = t.elapsed().as_millis();
    }
    let t = clock();
    // Pragmas for every file up front: the structural rules need them
    // before the per-file filter (a justified allow(R10) on a charge site
    // must stop the interprocedural propagation, not just hide one line).
    let pragmas: Vec<Vec<pragma::Pragma>> = sources
        .iter()
        .map(|file| pragma::collect(file, &mut findings))
        .collect();
    // `(pragma line, rule)` pairs that actually suppressed something, per
    // file — the P2 stale-pragma pass flags the rest.
    let mut hits: Vec<Vec<(usize, String)>> = vec![Vec::new(); sources.len()];
    let counters = rules::declared_counters(&sources);
    let mut rule_findings = Vec::new();
    for file in &sources {
        rules::check_file(file, &counters, &mut rule_findings);
    }
    if let Some(tm) = timings.as_deref_mut() {
        tm.lexical_ms = t.elapsed().as_millis();
    }
    let t = clock();
    let graph = callgraph::build(&syntaxes);
    rules::check_structural(
        &sources,
        &syntaxes,
        &graph,
        &pragmas,
        &mut hits,
        &mut rule_findings,
    );
    if let Some(tm) = timings.as_deref_mut() {
        tm.structural_ms = t.elapsed().as_millis();
    }
    let t = clock();
    dataflow::check(&sources, &syntaxes, &graph, &mut rule_findings);
    if let Some(tm) = timings.as_deref_mut() {
        tm.dataflow_ms = t.elapsed().as_millis();
    }
    let t = clock();
    let manifest = inputs
        .iter()
        .find(|i| i.path.ends_with("snapshot_manifest.txt"));
    taint::check(
        &sources,
        &syntaxes,
        manifest.map(|m| (m.path.as_str(), m.text.as_str())),
        &mut rule_findings,
    );
    rule_findings.retain(|f| {
        let Some(fi) = sources.iter().position(|s| s.effective == f.path) else {
            return true;
        };
        match pragma::suppressing(&pragmas[fi], f.rule, f.line) {
            Some(pline) => {
                hits[fi].push((pline, f.rule.to_string()));
                false
            }
            None => true,
        }
    });
    for (fi, file) in sources.iter().enumerate() {
        pragma::check_stale(&file.effective, &pragmas[fi], &hits[fi], &mut findings);
    }
    if let Some(tm) = timings {
        tm.taint_ms = t.elapsed().as_millis();
    }
    findings.append(&mut rule_findings);
    for input in inputs.iter().filter(|i| i.path.ends_with(".toml")) {
        rules::check_manifest(&input.path, &input.text, &mut findings);
    }
    diag::sort(&mut findings);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (i, callees) in graph.callees.iter().enumerate() {
        let from = graph.nodes[i].file as u32;
        for &j in callees {
            let to = graph.nodes[j].file as u32;
            if from != to {
                edges.push((from, to));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Analysis {
        findings,
        effectives: sources.iter().map(|s| s.effective.clone()).collect(),
        edges,
    }
}

/// Renders the snapshot manifest (`--update-snapshot-manifest`) for the
/// given inputs: the pinned `Execution::save` write sequences R22 checks
/// against. See [`taint`].
pub fn snapshot_manifest(inputs: &[Input]) -> String {
    let mut sources: Vec<scanner::SourceFile> = Vec::new();
    let mut syntaxes: Vec<syntax::FileSyntax> = Vec::new();
    for input in inputs.iter().filter(|i| i.path.ends_with(".rs")) {
        let ix = index_str(&input.path, &input.text);
        sources.push(ix.source);
        syntaxes.push(ix.syntax);
    }
    taint::render_manifest(&sources, &syntaxes)
}

/// Walks the workspace at `root` and checks every tracked `.rs` source and
/// `Cargo.toml`. Skips `target/`, `.git/`, `results/`, and the linter's own
/// `tests/fixtures/` trees (fixtures deliberately violate rules).
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    check_workspace_with(root, None)
}

/// [`check_workspace`] with optional per-phase timing collection.
pub fn check_workspace_with(
    root: &Path,
    timings: Option<&mut Timings>,
) -> io::Result<Vec<Finding>> {
    Ok(check_with(&workspace_inputs(root)?, timings))
}

/// Reads every lintable workspace file under `root` into [`Input`]s, in
/// sorted path order (the order the cache's file table relies on).
pub fn workspace_inputs(root: &Path) -> io::Result<Vec<Input>> {
    let mut paths = Vec::new();
    collect_paths(root, root, &mut paths)?;
    paths.sort();
    let mut inputs = Vec::with_capacity(paths.len());
    for rel in paths {
        let text = fs::read_to_string(root.join(&rel))?;
        inputs.push(Input { path: rel, text });
    }
    Ok(inputs)
}

/// [`check_workspace_with`] through the persistent cache at
/// `target/conform-cache.bin` under `root`: when nothing changed since the
/// cached run (same rule set, same file table, same content hashes) the
/// cached findings are returned without lexing or parsing anything; any
/// change falls back to a full run and rewrites the cache. Hit/miss counts
/// land in `timings.cache`.
pub fn check_workspace_cached(
    root: &Path,
    mut timings: Option<&mut Timings>,
) -> io::Result<Vec<Finding>> {
    let inputs = workspace_inputs(root)?;
    let cache_path = root.join("target").join("conform-cache.bin");
    let hashes: Vec<(String, u64)> = inputs
        .iter()
        .map(|i| (i.path.clone(), cache::content_hash(&i.text)))
        .collect();
    let loaded = cache::load(&cache_path);
    if let Some(c) = &loaded {
        if c.full_hit(&hashes) {
            if let Some(tm) = timings {
                tm.files = inputs.iter().filter(|i| i.path.ends_with(".rs")).count();
                tm.cache = Some((inputs.len(), 0));
            }
            return Ok(c.findings.clone());
        }
    }
    let (hits, misses) = match &loaded {
        Some(c) => c.damage(&hashes),
        None => (0, inputs.len()),
    };
    let analysis = analyze(&inputs, timings.as_deref_mut());
    if let Some(tm) = timings {
        tm.cache = Some((hits, misses));
    }
    cache::store(&cache_path, &inputs, &hashes, &analysis);
    Ok(analysis.findings)
}

fn collect_paths(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | ".git" | "results" | "fixtures") {
                continue;
            }
            collect_paths(root, &path, out)?;
        } else if name == "Cargo.toml" || name == "snapshot_manifest.txt" || name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(path: &str, text: &str) -> Input {
        Input {
            path: path.to_string(),
            text: text.to_string(),
        }
    }

    #[test]
    fn clean_input_has_no_findings() {
        let findings = check(&[rs(
            "crates/core/src/x.rs",
            "//! Docs.\npub fn f() -> u32 { 1 }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn pragma_suppresses_next_line_finding() {
        let src = "// conform: allow(R1) -- demo of the escape hatch\n\
                   use std::collections::HashMap;\n";
        assert!(check(&[rs("crates/core/src/x.rs", src)]).is_empty());
        let unsuppressed = "use std::collections::HashMap;\n";
        assert_eq!(check(&[rs("crates/core/src/x.rs", unsuppressed)]).len(), 1);
    }

    #[test]
    fn unjustified_pragma_does_not_suppress_and_is_reported() {
        let src = "// conform: allow(R1)\nuse std::collections::HashMap;\n";
        let findings = check(&[rs("crates/core/src/x.rs", src)]);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"P1"), "{findings:?}");
        assert!(rules.contains(&"R1"), "{findings:?}");
    }

    #[test]
    fn each_source_file_is_parsed_exactly_once_per_check() {
        // The shared FileIndex feeds the lexical, structural, and dataflow
        // layers from ONE tokenize+parse per file. The counter is
        // thread-local, so this delta is race-free under the parallel test
        // runner.
        let inputs = [
            rs("crates/core/src/a.rs", "//! A.\npub fn f() -> u32 { 1 }\n"),
            rs(
                "crates/sim/src/b.rs",
                "//! B.\npub fn g(x: u32) -> u32 { x + 1 }\n",
            ),
            Input {
                path: "crates/demo/Cargo.toml".to_string(),
                text: "[package]\nname = \"demo\"\n".to_string(),
            },
        ];
        let before = syntax::parse_invocations();
        let findings = check(&inputs);
        let after = syntax::parse_invocations();
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(
            after - before,
            2,
            "expected exactly one parse per .rs input"
        );
    }

    #[test]
    fn timings_cover_every_phase() {
        let mut t = Timings::default();
        let findings = check_with(
            &[rs(
                "crates/core/src/x.rs",
                "//! Docs.\npub fn f() -> u32 { 1 }\n",
            )],
            Some(&mut t),
        );
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(t.files, 1);
        let rendered = t.render();
        for phase in ["index", "lexical", "structural", "dataflow", "taint"] {
            assert!(rendered.contains(phase), "{rendered}");
        }
        assert!(
            !rendered.contains("cache"),
            "no cache line without a cached run: {rendered}"
        );
    }

    #[test]
    fn stale_pragma_is_flagged_and_live_pragma_is_not() {
        // Live: R1 fires on the next line and is suppressed — no P2.
        let live = "// conform: allow(R1) -- demo of the escape hatch\n\
                    use std::collections::HashMap;\n";
        assert!(check(&[rs("crates/core/src/x.rs", live)]).is_empty());
        // Stale: nothing on the covered lines ever fires R1.
        let stale = "// conform: allow(R1) -- left behind after a refactor\n\
                     pub fn f() -> u32 { 1 }\n";
        let findings = check(&[rs("crates/core/src/x.rs", stale)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "P2");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn findings_are_sorted_and_stable() {
        let src = "use std::collections::HashMap;\nlet x = opt.unwrap();\n";
        let findings = check(&[rs("crates/sim/src/x.rs", src)]);
        assert_eq!(findings.len(), 2);
        assert!(findings[0].line <= findings[1].line);
        assert!(findings[0].render().starts_with("crates/sim/src/x.rs:1 R1"));
    }
}
