//! `cc-mis-conform` — the in-tree conformance linter.
//!
//! PR 1 made the simulators fast by leaning on contracts nothing enforced
//! mechanically: `par_nodes` runs bit-identical to sequential, f64
//! accumulation orders are preserved, round/bit/message charges are
//! byte-identical across engines, and the workspace builds with zero
//! registry access. The paper's guarantees (the Lemma 2.12/2.14 bandwidth
//! bounds, the `O(log n)`-bit congested-clique message limit) only hold in
//! this reproduction while every hot-path edit respects those invariants —
//! so this crate enforces them the way production stacks do: a linter in
//! the tier-1 gate, not a review checklist.
//!
//! The linter is deliberately **zero-dependency and offline** (no dylint,
//! no rustc internals, no registry crates): a line/token scanner
//! ([`scanner`]), a token-tree layer ([`syntax`]) and approximate call
//! graph ([`callgraph`]) on top of it, a rule set ([`rules`], lexical
//! R1–R9 plus structural/interprocedural R10–R13), and a justified-pragma
//! escape hatch ([`pragma`]). Diagnostics are stable
//! `file:line rule-id message` lines ([`diag`]), with `--json` and
//! `--sarif` output via `cc_mis_analysis::json`, and `--explain <rule>`
//! prints each rule's contract, rationale, and fix recipe.
//!
//! Run it with `cargo run -p cc-mis-conform -- --workspace` (or
//! `scripts/conform.sh`); the process exits nonzero on any finding
//! (exit 3 if any finding is a P1 pragma violation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod dataflow;
pub mod diag;
pub mod pragma;
pub mod rules;
pub mod scanner;
pub mod syntax;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use diag::Finding;

/// An input to the checker: a path (used for scoping/diagnostics unless the
/// file carries a `conform-fixture:` override) plus its contents.
#[derive(Debug, Clone)]
pub struct Input {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// File contents.
    pub text: String,
}

/// One workspace file, lexed and parsed exactly once. Every rule layer —
/// lexical, structural, dataflow — consumes this shared index; the
/// single-parse contract is pinned by a test over
/// [`syntax::parse_invocations`].
#[derive(Debug)]
pub struct FileIndex {
    /// Line-scanner output: code/comment channels, test marks.
    pub source: scanner::SourceFile,
    /// Token-tree output: roots and fn spans.
    pub syntax: syntax::FileSyntax,
}

/// Lexes and parses one `.rs` input into its shared [`FileIndex`].
pub fn index_str(path: &str, text: &str) -> FileIndex {
    let (effective, lines, whole_file_test) = scanner::lex_parts(path, text);
    let (source, syntax) = syntax::index_file(effective, lines, whole_file_test);
    FileIndex { source, syntax }
}

/// Per-phase wall-clock of one [`check_with`] run, filled when the CLI is
/// invoked with `--timings`.
#[derive(Debug, Default, Clone)]
pub struct Timings {
    /// Number of `.rs` files indexed.
    pub files: usize,
    /// Lex + the single parse into the shared [`FileIndex`]es.
    pub index_ms: u128,
    /// Pragma collection plus the per-line lexical rules (R1–R9, R14).
    pub lexical_ms: u128,
    /// Call-graph build plus the structural rules (R10–R15).
    pub structural_ms: u128,
    /// The dataflow rules (R16–R19).
    pub dataflow_ms: u128,
}

impl Timings {
    /// Stable multi-line rendering for stderr.
    pub fn render(&self) -> String {
        format!(
            "timings: {} file(s)\n  index (lex + parse) {:>5} ms\n  lexical rules       {:>5} ms\n  structural rules    {:>5} ms\n  dataflow rules      {:>5} ms",
            self.files, self.index_ms, self.lexical_ms, self.structural_ms, self.dataflow_ms
        )
    }
}

/// The linter's only clock: wall time for `--timings` diagnostics.
fn clock() -> std::time::Instant {
    // conform: allow(R3) -- linter --timings wall clock; diagnostics only, never simulation state
    std::time::Instant::now()
}

/// Checks a set of inputs (`.rs` sources and `Cargo.toml` manifests) and
/// returns the sorted findings. This is the engine behind the CLI; tests
/// drive it directly with fixture inputs.
pub fn check(inputs: &[Input]) -> Vec<Finding> {
    check_with(inputs, None)
}

/// [`check`] with optional per-phase timing collection.
pub fn check_with(inputs: &[Input], mut timings: Option<&mut Timings>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let t = clock();
    let mut sources: Vec<scanner::SourceFile> = Vec::new();
    let mut syntaxes: Vec<syntax::FileSyntax> = Vec::new();
    for input in inputs.iter().filter(|i| i.path.ends_with(".rs")) {
        let ix = index_str(&input.path, &input.text);
        sources.push(ix.source);
        syntaxes.push(ix.syntax);
    }
    if let Some(tm) = timings.as_deref_mut() {
        tm.files = sources.len();
        tm.index_ms = t.elapsed().as_millis();
    }
    let t = clock();
    // Pragmas for every file up front: the structural rules need them
    // before the per-file filter (a justified allow(R10) on a charge site
    // must stop the interprocedural propagation, not just hide one line).
    let pragmas: Vec<Vec<pragma::Pragma>> = sources
        .iter()
        .map(|file| pragma::collect(file, &mut findings))
        .collect();
    let counters = rules::declared_counters(&sources);
    let mut rule_findings = Vec::new();
    for file in &sources {
        rules::check_file(file, &counters, &mut rule_findings);
    }
    if let Some(tm) = timings.as_deref_mut() {
        tm.lexical_ms = t.elapsed().as_millis();
    }
    let t = clock();
    let graph = callgraph::build(&syntaxes);
    rules::check_structural(&sources, &syntaxes, &graph, &pragmas, &mut rule_findings);
    if let Some(tm) = timings.as_deref_mut() {
        tm.structural_ms = t.elapsed().as_millis();
    }
    let t = clock();
    dataflow::check(&sources, &syntaxes, &graph, &mut rule_findings);
    if let Some(tm) = timings {
        tm.dataflow_ms = t.elapsed().as_millis();
    }
    rule_findings.retain(|f| {
        let Some(fi) = sources.iter().position(|s| s.effective == f.path) else {
            return true;
        };
        !pragma::suppressed(&pragmas[fi], f.rule, f.line)
    });
    findings.append(&mut rule_findings);
    for input in inputs.iter().filter(|i| i.path.ends_with(".toml")) {
        rules::check_manifest(&input.path, &input.text, &mut findings);
    }
    diag::sort(&mut findings);
    findings
}

/// Walks the workspace at `root` and checks every tracked `.rs` source and
/// `Cargo.toml`. Skips `target/`, `.git/`, `results/`, and the linter's own
/// `tests/fixtures/` trees (fixtures deliberately violate rules).
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    check_workspace_with(root, None)
}

/// [`check_workspace`] with optional per-phase timing collection.
pub fn check_workspace_with(
    root: &Path,
    timings: Option<&mut Timings>,
) -> io::Result<Vec<Finding>> {
    let mut paths = Vec::new();
    collect_paths(root, root, &mut paths)?;
    paths.sort();
    let mut inputs = Vec::with_capacity(paths.len());
    for rel in paths {
        let text = fs::read_to_string(root.join(&rel))?;
        inputs.push(Input { path: rel, text });
    }
    Ok(check_with(&inputs, timings))
}

fn collect_paths(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | ".git" | "results" | "fixtures") {
                continue;
            }
            collect_paths(root, &path, out)?;
        } else if name == "Cargo.toml" || name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(path: &str, text: &str) -> Input {
        Input {
            path: path.to_string(),
            text: text.to_string(),
        }
    }

    #[test]
    fn clean_input_has_no_findings() {
        let findings = check(&[rs(
            "crates/core/src/x.rs",
            "//! Docs.\npub fn f() -> u32 { 1 }\n",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn pragma_suppresses_next_line_finding() {
        let src = "// conform: allow(R1) -- demo of the escape hatch\n\
                   use std::collections::HashMap;\n";
        assert!(check(&[rs("crates/core/src/x.rs", src)]).is_empty());
        let unsuppressed = "use std::collections::HashMap;\n";
        assert_eq!(check(&[rs("crates/core/src/x.rs", unsuppressed)]).len(), 1);
    }

    #[test]
    fn unjustified_pragma_does_not_suppress_and_is_reported() {
        let src = "// conform: allow(R1)\nuse std::collections::HashMap;\n";
        let findings = check(&[rs("crates/core/src/x.rs", src)]);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"P1"), "{findings:?}");
        assert!(rules.contains(&"R1"), "{findings:?}");
    }

    #[test]
    fn each_source_file_is_parsed_exactly_once_per_check() {
        // The shared FileIndex feeds the lexical, structural, and dataflow
        // layers from ONE tokenize+parse per file. The counter is
        // thread-local, so this delta is race-free under the parallel test
        // runner.
        let inputs = [
            rs("crates/core/src/a.rs", "//! A.\npub fn f() -> u32 { 1 }\n"),
            rs(
                "crates/sim/src/b.rs",
                "//! B.\npub fn g(x: u32) -> u32 { x + 1 }\n",
            ),
            Input {
                path: "crates/demo/Cargo.toml".to_string(),
                text: "[package]\nname = \"demo\"\n".to_string(),
            },
        ];
        let before = syntax::parse_invocations();
        let findings = check(&inputs);
        let after = syntax::parse_invocations();
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(
            after - before,
            2,
            "expected exactly one parse per .rs input"
        );
    }

    #[test]
    fn timings_cover_every_phase() {
        let mut t = Timings::default();
        let findings = check_with(
            &[rs(
                "crates/core/src/x.rs",
                "//! Docs.\npub fn f() -> u32 { 1 }\n",
            )],
            Some(&mut t),
        );
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(t.files, 1);
        let rendered = t.render();
        for phase in ["index", "lexical", "structural", "dataflow"] {
            assert!(rendered.contains(phase), "{rendered}");
        }
    }

    #[test]
    fn findings_are_sorted_and_stable() {
        let src = "use std::collections::HashMap;\nlet x = opt.unwrap();\n";
        let findings = check(&[rs("crates/sim/src/x.rs", src)]);
        assert_eq!(findings.len(), 2);
        assert!(findings[0].line <= findings[1].line);
        assert!(findings[0].render().starts_with("crates/sim/src/x.rs:1 R1"));
    }
}
