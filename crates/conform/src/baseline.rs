//! Findings baseline: "no new findings" CI gating.
//!
//! `--baseline PATH` supports incremental adoption of new rules: the first
//! run writes a normalized snapshot of the current findings, later runs
//! subtract it, and the exit code reflects only *new* findings. Keys are
//! [`crate::diag::baseline_key`] lines (rule, path, message — no line
//! numbers, so unrelated edits don't churn the file). Error-severity
//! findings (`P1`, `R16`, `R17`) are never baselined: a broken escape
//! hatch or corrupted-state bug must always fail the gate.

use crate::diag::{self, Finding};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

/// What applying a baseline did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineOutcome {
    /// True if the baseline file did not exist and was written.
    pub wrote: bool,
    /// Findings removed because the baseline already records them.
    pub suppressed: usize,
}

/// Applies (or, if `path` does not exist, writes) the baseline at `path`,
/// removing known non-error findings from `findings` in place.
pub fn apply(path: &Path, findings: &mut Vec<Finding>) -> io::Result<BaselineOutcome> {
    let before = findings.len();
    match fs::read_to_string(path) {
        Ok(text) => {
            let known: BTreeSet<&str> = text
                .lines()
                .map(str::trim_end)
                .filter(|l| !l.is_empty())
                .collect();
            findings.retain(|f| {
                f.severity() == "error" || !known.contains(diag::baseline_key(f).as_str())
            });
            Ok(BaselineOutcome {
                wrote: false,
                suppressed: before - findings.len(),
            })
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            let keys: BTreeSet<String> = findings
                .iter()
                .filter(|f| f.severity() != "error")
                .map(diag::baseline_key)
                .collect();
            let mut doc = String::new();
            for k in &keys {
                doc.push_str(k);
                doc.push('\n');
            }
            fs::write(path, doc)?;
            findings.retain(|f| f.severity() == "error");
            Ok(BaselineOutcome {
                wrote: true,
                suppressed: before - findings.len(),
            })
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, path: &str, msg: &str) -> Finding {
        Finding::new(path, 1, rule, msg)
    }

    fn temp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("conform-baseline-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp dir creates");
        dir.join("baseline.txt")
    }

    #[test]
    fn first_run_writes_and_suppresses() {
        let path = temp("write");
        let mut v = vec![f("R1", "a.rs", "m1"), f("P1", "a.rs", "broken pragma")];
        let out = apply(&path, &mut v).expect("baseline writes");
        assert!(out.wrote);
        assert_eq!(out.suppressed, 1);
        // The error finding survives; the warning is now baselined.
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "P1");
        let text = fs::read_to_string(&path).expect("baseline readable");
        assert!(text.contains("R1\ta.rs\tm1"));
        assert!(!text.contains("P1"), "errors are never baselined: {text}");
    }

    #[test]
    fn second_run_flags_only_new_findings() {
        let path = temp("diff");
        let mut first = vec![f("R1", "a.rs", "m1")];
        apply(&path, &mut first).expect("baseline writes");
        let mut second = vec![f("R1", "a.rs", "m1"), f("R2", "b.rs", "new finding")];
        let out = apply(&path, &mut second).expect("baseline applies");
        assert!(!out.wrote);
        assert_eq!(out.suppressed, 1);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].rule, "R2");
    }
}
