//! Intraprocedural dataflow layer: rules R16–R19.
//!
//! The lexical layer sees lines, the structural layer sees call edges;
//! neither sees *paths*. This module builds small, purpose-specific
//! def-use and obligation chains directly on the token trees of
//! [`crate::syntax`] and checks the four invariants that PR 5 (snapshot /
//! resume) and PR 6 (pooled allocation-free rounds) introduced but nothing
//! machine-enforced:
//!
//! * **R16 pool pairing** — every `RoundBuffers::take_*` /
//!   `take_arena_parts` call acquires an obligation that must be discharged
//!   by the matching `retire_*` / `retire` before any early `return` / `?`
//!   exit, or escape into a return value, struct literal, or field store.
//! * **R17 snapshot parity** — for each `impl Execution`, the ordered
//!   sequence of `SnapshotWriter` calls in `save` must mirror the ordered
//!   sequence of `read_*` / `expect_*` calls in `restore` (same widths,
//!   same order, same identity expressions for `expect_*` fields).
//! * **R18 observer purity** — methods of `RoundObserver` impls must not
//!   reach `RoundLedger` charging or `Round` mutation through the call
//!   graph: observers are diagnostics-only.
//! * **R19 shard isolation** — closures handed to the `par_nodes` shard
//!   helpers may only index captured state through their shard-provided
//!   slice arguments.
//!
//! All four analyses are deliberately *linear* approximations: trees are
//! walked in textual order, branches are not path-split (a discharge in one
//! `match` arm counts for all arms), and helper inlining stops at depth
//! one. Every approximation errs toward false negatives; DESIGN.md §12
//! documents the known shapes.

use crate::callgraph::{CallGraph, FnNode};
use crate::diag::Finding;
use crate::rules::in_sim_core;
use crate::scanner::SourceFile;
use crate::syntax::{
    group_of, ident_of, line_of, punct_of, FileSyntax, FnSpan, Group, Tok, Token, Tree,
};
use std::collections::BTreeSet;

/// Runs the dataflow rules over the parsed workspace.
pub fn check(
    sources: &[SourceFile],
    syntaxes: &[FileSyntax],
    graph: &CallGraph,
    findings: &mut Vec<Finding>,
) {
    check_r16(syntaxes, findings);
    check_r17(sources, syntaxes, findings);
    check_r18(syntaxes, graph, findings);
    check_r19(syntaxes, findings);
}

// ---------------------------------------------------------------------------
// Shared token-tree helpers
// ---------------------------------------------------------------------------

/// A call site located inside a sibling slice, turbofish-aware (unlike
/// [`crate::syntax::calls_in`], which skips `take_outbox::<M>(…)` calls).
pub(crate) struct CallAt<'a> {
    pub(crate) name: &'a str,
    /// True for `.name(…)` method calls; `recv` is then the identifier
    /// directly before the dot, if there is one.
    pub(crate) method: bool,
    pub(crate) recv: Option<&'a str>,
    pub(crate) args: &'a Group,
    pub(crate) line: usize,
    /// Index just past the argument group.
    pub(crate) after: usize,
}

/// Matches `ident [::<…>] (args)` at `i`, rejecting `fn` definitions,
/// keywords, and macro names.
pub(crate) fn call_at<'a>(trees: &'a [Tree], i: usize) -> Option<CallAt<'a>> {
    let name = ident_of(&trees[i])?;
    if crate::syntax::is_keyword(name) || name.starts_with('\'') {
        return None;
    }
    if i > 0 && ident_of(&trees[i - 1]) == Some("fn") {
        return None;
    }
    let mut j = i + 1;
    // Turbofish: `::<…>` between the name and the argument list.
    if punct_of(trees.get(j)?) == Some(':') && punct_of(trees.get(j + 1)?) == Some(':') {
        if punct_of(trees.get(j + 2)?) != Some('<') {
            return None; // a path segment, not a call
        }
        j = skip_angles(trees, j + 2);
    }
    let args = match trees.get(j) {
        Some(Tree::Group(g)) if g.delim == '(' => g,
        _ => return None,
    };
    let method = i > 0 && punct_of(&trees[i - 1]) == Some('.');
    let recv = if method && i >= 2 {
        ident_of(&trees[i - 2])
    } else {
        None
    };
    Some(CallAt {
        name,
        method,
        recv,
        args,
        line: line_of(&trees[i]),
        after: j + 1,
    })
}

/// Local copy of the syntax layer's generic-run skipper (it is private
/// there): returns the index just past the `>` matching the `<` at `i`.
fn skip_angles(trees: &[Tree], mut i: usize) -> usize {
    let mut depth = 0i32;
    let mut prev = ' ';
    while i < trees.len() {
        match punct_of(&trees[i]) {
            Some('<') => depth += 1,
            Some('>') if prev != '-' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        prev = punct_of(&trees[i]).unwrap_or(' ');
        i += 1;
    }
    i
}

/// Renders trees as a normalized single-line expression (tokens joined by
/// one space, string/char literals as `""`). Used to compare `save`-side
/// write arguments against `restore`-side `expect_*` expressions.
pub(crate) fn render(trees: &[Tree]) -> String {
    let mut out = String::new();
    render_into(trees, &mut out);
    out.trim().to_string()
}

fn render_into(trees: &[Tree], out: &mut String) {
    for t in trees {
        if !out.is_empty() && !out.ends_with(' ') {
            out.push(' ');
        }
        match t {
            Tree::Leaf(Token { tok, .. }) => match tok {
                Tok::Ident(s) => out.push_str(s),
                Tok::Punct(c) => out.push(*c),
                Tok::Num(s) => out.push_str(s),
                Tok::Lit => out.push_str("\"\""),
            },
            Tree::Group(g) => {
                out.push(g.delim);
                render_into(&g.children, out);
                out.push(' ');
                out.push(match g.delim {
                    '(' => ')',
                    '[' => ']',
                    _ => '}',
                });
            }
        }
    }
}

/// True if `name` occurs as an identifier anywhere under `trees`.
pub(crate) fn contains_ident(trees: &[Tree], name: &str) -> bool {
    trees.iter().any(|t| match t {
        Tree::Leaf(_) => ident_of(t) == Some(name),
        Tree::Group(g) => contains_ident(&g.children, name),
    })
}

/// Splits a sibling slice on top-level commas.
pub(crate) fn split_commas(trees: &[Tree]) -> Vec<&[Tree]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, t) in trees.iter().enumerate() {
        if punct_of(t) == Some(',') {
            out.push(&trees[start..i]);
            start = i + 1;
        }
    }
    if start < trees.len() {
        out.push(&trees[start..]);
    }
    out
}

/// Binding identifiers of a pattern slice: every identifier before the
/// first top-level `:` (type ascription), recursing into tuple/struct
/// pattern groups, excluding keywords (`mut`, `ref`, …) and `_`.
pub(crate) fn pattern_idents(trees: &[Tree], out: &mut Vec<String>) {
    let upto = trees
        .iter()
        .position(|t| punct_of(t) == Some(':'))
        .unwrap_or(trees.len());
    for t in &trees[..upto] {
        match t {
            Tree::Leaf(_) => {
                if let Some(id) = ident_of(t) {
                    if !crate::syntax::is_keyword(id) && id != "_" && !id.starts_with('\'') {
                        out.push(id.to_string());
                    }
                }
            }
            Tree::Group(g) => {
                for seg in split_commas(&g.children) {
                    pattern_idents(seg, out);
                }
            }
        }
    }
}

/// A `impl Trait for Type { … }` block located by token scan (the syntax
/// layer records the self type on each `FnSpan` but drops the trait name).
pub(crate) struct TraitImpl {
    pub(crate) self_type: String,
    pub(crate) open_line: usize,
    pub(crate) close_line: usize,
}

pub(crate) fn trait_impls(fs: &FileSyntax, trait_name: &str) -> Vec<TraitImpl> {
    let mut out = Vec::new();
    scan_trait_impls(&fs.roots, trait_name, &mut out);
    out
}

fn scan_trait_impls(trees: &[Tree], trait_name: &str, out: &mut Vec<TraitImpl>) {
    let mut i = 0;
    while i < trees.len() {
        if ident_of(&trees[i]) == Some("impl") {
            let mut j = i + 1;
            if punct_of(trees.get(j).unwrap_or(&trees[i])) == Some('<') {
                j = skip_angles(trees, j);
            }
            let mut saw_trait = false;
            let mut after_for = false;
            let mut in_where = false;
            let mut ty: Option<String> = None;
            while j < trees.len() {
                if let Some(g) = group_of(&trees[j]) {
                    if g.delim == '{' {
                        if saw_trait && after_for {
                            if let Some(t) = ty.take() {
                                out.push(TraitImpl {
                                    self_type: t,
                                    open_line: g.open_line,
                                    close_line: g.close_line,
                                });
                            }
                        }
                        break;
                    }
                    j += 1;
                    continue;
                }
                if punct_of(&trees[j]) == Some('<') {
                    j = skip_angles(trees, j);
                    continue;
                }
                match ident_of(&trees[j]) {
                    Some(id) if id == trait_name && !after_for => saw_trait = true,
                    Some("for") => after_for = true,
                    // A `where` clause ends the self-type position: bound
                    // idents after it must not overwrite the type name.
                    Some("where") => in_where = true,
                    Some(id) if after_for && !in_where && !crate::syntax::is_keyword(id) => {
                        ty = Some(id.to_string());
                    }
                    _ => {}
                }
                if punct_of(&trees[j]) == Some(';') {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else if let Some(g) = group_of(&trees[i]) {
            scan_trait_impls(&g.children, trait_name, out);
            i += 1;
        } else {
            i += 1;
        }
    }
}

/// Parameter names of `f`'s signature, in order, excluding `self` — found
/// by walking back from the body group to the `fn` keyword and reading the
/// first paren group after the name.
pub(crate) fn fn_param_names(fs: &FileSyntax, f: &FnSpan) -> Vec<String> {
    let mut trees: &[Tree] = &fs.roots;
    for &idx in &f.path[..f.path.len().saturating_sub(1)] {
        match trees.get(idx) {
            Some(Tree::Group(g)) => trees = &g.children,
            _ => return Vec::new(),
        }
    }
    let Some(&body_idx) = f.path.last() else {
        return Vec::new();
    };
    let Some(fn_kw) = trees[..body_idx.min(trees.len())]
        .iter()
        .rposition(|t| ident_of(t) == Some("fn"))
    else {
        return Vec::new();
    };
    let mut j = fn_kw + 1;
    while j < body_idx {
        if let Some(g) = group_of(&trees[j]) {
            if g.delim == '(' {
                let mut out = Vec::new();
                for seg in split_commas(&g.children) {
                    if contains_ident(seg, "self") {
                        continue;
                    }
                    pattern_idents(seg, &mut out);
                }
                return out;
            }
        }
        if punct_of(&trees[j]) == Some('<') {
            j = skip_angles(trees, j);
            continue;
        }
        j += 1;
    }
    Vec::new()
}

// ---------------------------------------------------------------------------
// R16 — pool take/retire obligation pairing
// ---------------------------------------------------------------------------

const TAKE_PAIRS: [(&str, &str); 5] = [
    ("take_dense", "retire_dense"),
    ("take_sparse", "retire_sparse"),
    ("take_outbox", "retire_outbox"),
    ("take_arena_parts", "retire"),
    ("take_frame", "retire_frame"),
];

/// An open pooled-buffer obligation: a binding that holds a taken buffer
/// and has not yet been retired or moved out of the function.
struct Obligation {
    binding: String,
    take: &'static str,
    retire: &'static str,
    line: usize,
}

fn check_r16(syntaxes: &[FileSyntax], findings: &mut Vec<Finding>) {
    for fs in syntaxes {
        if !in_sim_core(&fs.effective) {
            continue;
        }
        for f in &fs.fns {
            if f.is_test {
                continue;
            }
            let mut open: Vec<Obligation> = Vec::new();
            r16_walk(fs.body_of(f), &mut open, &fs.effective, &f.name, findings);
            for ob in open {
                findings.push(Finding::new(
                    &fs.effective,
                    ob.line,
                    "R16",
                    format!(
                        "`{}` takes a pooled buffer via `{}` (binding `{}`) that is never \
                         retired with `{}` or moved out: the buffer leaks from the pool \
                         and the next round re-allocates",
                        f.name, ob.take, ob.binding, ob.retire
                    ),
                ));
            }
        }
    }
}

/// Linear in-order walk emitting take / retire / escape / exit events.
fn r16_walk(
    trees: &[Tree],
    open: &mut Vec<Obligation>,
    path: &str,
    fn_name: &str,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < trees.len() {
        // Macro bodies are opaque, as everywhere else in the linter.
        if let Some(g) = group_of(&trees[i]) {
            if i > 0 && punct_of(&trees[i - 1]) == Some('!') {
                i += 1;
                continue;
            }
            // Struct literal `Type { … }` moving a binding discharges it.
            if i > 0 {
                if let Some(prev) = ident_of(&trees[i - 1]) {
                    if g.delim == '{'
                        && prev.chars().next().is_some_and(char::is_uppercase)
                        && !open.is_empty()
                    {
                        open.retain(|ob| !contains_ident(&g.children, &ob.binding));
                    }
                }
            }
            r16_walk(&g.children, open, path, fn_name, findings);
            i += 1;
            continue;
        }
        if let Some(call) = call_at(trees, i) {
            if let Some(&(take, retire)) = TAKE_PAIRS.iter().find(|(t, _)| *t == call.name) {
                let mut bindings = Vec::new();
                if let Some(pat) = let_pattern_before(trees, i) {
                    pattern_idents(pat, &mut bindings);
                }
                for b in bindings {
                    open.push(Obligation {
                        binding: b,
                        take,
                        retire,
                        line: call.line,
                    });
                }
                // An unbound take (argument / field-value / return position)
                // escapes immediately: ownership moved at the call site.
                i = call.after;
                continue;
            }
            if call.name.starts_with("retire") {
                open.retain(|ob| {
                    !((call.name == ob.retire || call.name == "retire")
                        && contains_ident(&call.args.children, &ob.binding))
                });
            }
        }
        if ident_of(&trees[i]) == Some("return") && !open.is_empty() {
            // The returned expression moves its bindings out; anything else
            // still open leaks past this exit.
            let stmt_end = trees[i + 1..]
                .iter()
                .position(|t| punct_of(t) == Some(';'))
                .map_or(trees.len(), |p| i + 1 + p);
            let returned = &trees[i + 1..stmt_end];
            open.retain(|ob| !contains_ident(returned, &ob.binding));
            flag_exits(open, path, fn_name, line_of(&trees[i]), "return", findings);
        }
        if punct_of(&trees[i]) == Some('?') && !open.is_empty() && is_try_suffix(trees, i) {
            flag_exits(open, path, fn_name, line_of(&trees[i]), "`?`", findings);
        }
        // Plain field store `… = binding ;` moves the binding out.
        if punct_of(&trees[i]) == Some('=')
            && punct_of(trees.get(i + 1).unwrap_or(&trees[i])) != Some('=')
            && (i == 0 || !"=!<>+-*/%&|^".contains(punct_of(&trees[i - 1]).unwrap_or(' ')))
        {
            if let Some(rhs) = trees.get(i + 1).and_then(ident_of) {
                let ends = trees.get(i + 2).is_none_or(|t| punct_of(t) == Some(';'));
                if ends {
                    open.retain(|ob| ob.binding != rhs);
                }
            }
        }
        i += 1;
    }
}

/// Drains all open obligations into findings at an early-exit site.
fn flag_exits(
    open: &mut Vec<Obligation>,
    path: &str,
    fn_name: &str,
    line: usize,
    exit: &str,
    findings: &mut Vec<Finding>,
) {
    for ob in open.drain(..) {
        findings.push(Finding::new(
            path,
            line,
            "R16",
            format!(
                "`{}` exits via {exit} while `{}` (taken with `{}` at line {}) is still \
                 unretired: every exit path must `{}` the buffer or move it out first",
                fn_name, ob.binding, ob.take, ob.line, ob.retire
            ),
        ));
    }
}

/// True if the `?` at `i` is the try operator (postfix on an expression),
/// not a `?Sized` bound.
fn is_try_suffix(trees: &[Tree], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    match &trees[i - 1] {
        Tree::Group(_) => true,
        t => {
            matches!(
                t,
                Tree::Leaf(Token {
                    tok: Tok::Ident(_) | Tok::Num(_) | Tok::Lit,
                    ..
                })
            ) && ident_of(t).is_none_or(|s| !crate::syntax::is_keyword(s))
        }
    }
}

/// If the call at `i` sits on the right-hand side of a `let` in the same
/// statement, returns the pattern slice between `let` and `=`.
fn let_pattern_before(trees: &[Tree], i: usize) -> Option<&[Tree]> {
    let mut j = i;
    let mut eq: Option<usize> = None;
    while j > 0 {
        j -= 1;
        match punct_of(&trees[j]) {
            Some(';') => return None,
            Some('=') if eq.is_none() => eq = Some(j),
            _ => {}
        }
        if ident_of(&trees[j]) == Some("let") {
            return eq.map(|e| &trees[j + 1..e]);
        }
    }
    None
}

// ---------------------------------------------------------------------------
// R17 — save/restore snapshot parity
// ---------------------------------------------------------------------------

/// One element of a save/restore operation sequence.
#[derive(Clone)]
pub(crate) enum OpNode {
    /// A writer/reader call: `kind` is the name with its `write_` /
    /// `read_` / `expect_` prefix stripped, so the two sides compare
    /// generically. `expr` carries the written / expected value expression
    /// where one exists; `field` the `expect_*` field name recovered from
    /// the raw source line.
    Op {
        raw: String,
        kind: String,
        expect: bool,
        expr: Option<String>,
        field: Option<String>,
        line: usize,
    },
    /// A helper that consumes the writer/reader wholesale (`e.save(w)`):
    /// matches any `Opaque` on the other side.
    Opaque { line: usize },
    /// Ops inside a `for`/`while`/`loop` body.
    Loop { body: Vec<OpNode>, line: usize },
    /// Ops split across `match` / `if` arms.
    Branch { arms: Vec<Vec<OpNode>>, line: usize },
}

impl OpNode {
    fn line(&self) -> usize {
        match self {
            OpNode::Op { line, .. }
            | OpNode::Opaque { line }
            | OpNode::Loop { line, .. }
            | OpNode::Branch { line, .. } => *line,
        }
    }

    fn describe(&self) -> String {
        match self {
            OpNode::Op { raw, field, .. } => match field {
                Some(name) => format!("`{raw}` (field \"{name}\")"),
                None => format!("`{raw}`"),
            },
            OpNode::Opaque { .. } => "a writer/reader hand-off".to_string(),
            OpNode::Loop { .. } => "a loop of snapshot ops".to_string(),
            OpNode::Branch { .. } => "a conditional snapshot block".to_string(),
        }
    }
}

fn check_r17(sources: &[SourceFile], syntaxes: &[FileSyntax], findings: &mut Vec<Finding>) {
    for (fi, fs) in syntaxes.iter().enumerate() {
        let impls = trait_impls(fs, "Execution");
        if impls.is_empty() {
            continue;
        }
        let src = &sources[fi];
        for im in &impls {
            let find_fn = |name: &str| {
                fs.fns.iter().find(|f| {
                    f.name == name
                        && !f.is_test
                        && f.self_type.as_deref() == Some(im.self_type.as_str())
                        && f.start_line >= im.open_line
                        && f.end_line <= im.close_line
                })
            };
            let (Some(save), Some(restore)) = (find_fn("save"), find_fn("restore")) else {
                continue;
            };
            let save_seq = normalize(extract_ops(
                fs.body_of(save),
                &fn_param_names(fs, save),
                fs,
                src,
                1,
            ));
            let restore_seq = normalize(extract_ops(
                fs.body_of(restore),
                &fn_param_names(fs, restore),
                fs,
                src,
                1,
            ));
            if let Some((line, msg)) = diff_seqs(&save_seq, &restore_seq, restore.start_line) {
                findings.push(Finding::new(
                    &fs.effective,
                    line,
                    "R17",
                    format!(
                        "`impl Execution for {}`: save/restore snapshot sequences disagree — \
                         {msg}; a resumed run would read the wrong bytes (or fail with \
                         `SnapshotError::Mismatch` at best)",
                        im.self_type
                    ),
                ));
            }
        }
    }
}

/// Extracts the ordered writer/reader op sequence from a fn body.
/// `handles` are the bindings that carry the `SnapshotWriter` /
/// `SnapshotReader` (the non-self params); `depth` bounds same-file helper
/// inlining.
pub(crate) fn extract_ops(
    trees: &[Tree],
    handles: &[String],
    fs: &FileSyntax,
    src: &SourceFile,
    depth: usize,
) -> Vec<OpNode> {
    let mut out = Vec::new();
    extract_into(trees, handles, fs, src, depth, &mut out);
    out
}

fn extract_into(
    trees: &[Tree],
    handles: &[String],
    fs: &FileSyntax,
    src: &SourceFile,
    depth: usize,
    out: &mut Vec<OpNode>,
) {
    let mut pending_loop = false;
    let mut pending_branch = false; // `if` or `match` header seen
    let mut i = 0;
    while i < trees.len() {
        match &trees[i] {
            Tree::Leaf(t) => {
                if let Tok::Ident(s) = &t.tok {
                    match s.as_str() {
                        "for" | "while" | "loop" => pending_loop = true,
                        "if" | "match" => pending_branch = true,
                        _ => {}
                    }
                }
                if t.tok == Tok::Punct(';') {
                    pending_loop = false;
                    pending_branch = false;
                }
            }
            Tree::Group(g) => {
                if i > 0 && punct_of(&trees[i - 1]) == Some('!') {
                    i += 1;
                    continue; // macro body
                }
                if g.delim == '{' && pending_loop {
                    pending_loop = false;
                    pending_branch = false;
                    let body = extract_ops(&g.children, handles, fs, src, depth);
                    out.push(OpNode::Loop {
                        body,
                        line: g.open_line,
                    });
                    i += 1;
                    continue;
                }
                if g.delim == '{' && pending_branch {
                    pending_branch = false;
                    let mut arms = Vec::new();
                    if group_is_match_body(&g.children) {
                        arms = split_match_arms(&g.children, handles, fs, src, depth);
                    } else {
                        // `if` arm; chase `else` / `else if` blocks.
                        arms.push(extract_ops(&g.children, handles, fs, src, depth));
                        let mut j = i + 1;
                        loop {
                            if ident_of(trees.get(j).unwrap_or(&trees[i])) != Some("else") {
                                break;
                            }
                            // `else {` or `else if cond {` — find the block.
                            let mut k = j + 1;
                            while k < trees.len() {
                                if let Some(bg) = group_of(&trees[k]) {
                                    if bg.delim == '{' {
                                        break;
                                    }
                                }
                                k += 1;
                            }
                            let Some(bg) = trees.get(k).and_then(group_of) else {
                                break;
                            };
                            arms.push(extract_ops(&bg.children, handles, fs, src, depth));
                            j = k + 1;
                        }
                        if arms.len() == 1 {
                            arms.push(Vec::new()); // implicit empty else
                        }
                        out.push(OpNode::Branch {
                            arms,
                            line: g.open_line,
                        });
                        i = j;
                        continue;
                    }
                    out.push(OpNode::Branch {
                        arms,
                        line: g.open_line,
                    });
                    i += 1;
                    continue;
                }
                // Any other group: plain recursion, in order. Only a brace
                // group consumes pending loop/branch headers (`for x in
                // foo(y) { … }` keeps its pending flag across `(y)`).
                if g.delim == '{' {
                    pending_loop = false;
                    pending_branch = false;
                }
                extract_into(&g.children, handles, fs, src, depth, out);
                i += 1;
                continue;
            }
        }
        if let Some(call) = call_at(trees, i) {
            let on_handle = call.recv.is_some_and(|r| handles.iter().any(|h| h == r));
            let prefix = ["write_", "read_", "expect_"]
                .iter()
                .find(|p| call.name.starts_with(**p))
                .copied();
            if on_handle {
                if let Some(prefix) = prefix {
                    let expect = prefix == "expect_";
                    let args = split_commas(&call.args.children);
                    let expr = if expect {
                        args.get(1).copied().map(render)
                    } else if prefix == "write_" && !call.args.children.is_empty() {
                        Some(render(&call.args.children))
                    } else {
                        None
                    };
                    let field = if expect {
                        quoted_on_line(src, call.line)
                    } else {
                        None
                    };
                    out.push(OpNode::Op {
                        raw: call.name.to_string(),
                        kind: call.name[prefix.len()..].to_string(),
                        expect,
                        expr,
                        field,
                        line: call.line,
                    });
                } else {
                    // Unknown method on the writer/reader itself.
                    out.push(OpNode::Opaque { line: call.line });
                }
                i = call.after;
                continue;
            }
            let handle_in_args = handles
                .iter()
                .any(|h| contains_ident(&call.args.children, h));
            if handle_in_args && !args_contain_ops(&call.args.children, handles) {
                // The handle is passed on without direct ops: inline a
                // same-file helper one level, otherwise mark opaque.
                if !call.method && depth > 0 {
                    if let Some(helper) =
                        fs.fns.iter().find(|f2| f2.name == call.name && !f2.is_test)
                    {
                        let helper_handles = fn_param_names(fs, helper);
                        extract_into(fs.body_of(helper), &helper_handles, fs, src, depth - 1, out);
                        i = call.after;
                        continue;
                    }
                }
                out.push(OpNode::Opaque { line: call.line });
                i = call.after;
                continue;
            }
            // Plain call: fall through so the argument group is recursed
            // like any other (nested `r.read_u64()?` inside `seek(…)`).
        }
        i += 1;
    }
}

/// True if a `{` group body is a `match` body (contains a top-level `=>`).
fn group_is_match_body(children: &[Tree]) -> bool {
    children
        .windows(2)
        .any(|w| punct_of(&w[0]) == Some('=') && punct_of(&w[1]) == Some('>'))
}

/// Splits a match body into per-arm op sequences. Patterns (everything
/// before each `=>`) are skipped; arm bodies are either the brace group
/// right after the arrow or the expression up to the next top-level comma.
fn split_match_arms(
    children: &[Tree],
    handles: &[String],
    fs: &FileSyntax,
    src: &SourceFile,
    depth: usize,
) -> Vec<Vec<OpNode>> {
    let mut arms = Vec::new();
    let mut i = 0;
    while i < children.len() {
        // Find the next `=>`.
        let Some(arrow) = (i..children.len().saturating_sub(1)).find(|&k| {
            punct_of(&children[k]) == Some('=') && punct_of(&children[k + 1]) == Some('>')
        }) else {
            break;
        };
        let body_start = arrow + 2;
        match children.get(body_start) {
            Some(Tree::Group(g)) if g.delim == '{' => {
                arms.push(extract_ops(&g.children, handles, fs, src, depth));
                i = body_start + 1;
            }
            _ => {
                let end = (body_start..children.len())
                    .find(|&k| punct_of(&children[k]) == Some(','))
                    .unwrap_or(children.len());
                arms.push(extract_ops(
                    &children[body_start..end],
                    handles,
                    fs,
                    src,
                    depth,
                ));
                i = end + 1;
            }
        }
    }
    arms
}

/// True if any `handle.write_* / read_* / expect_*` call occurs under
/// `trees` — used to tell "passes the reader on" from "consumes a value
/// read inline" (`self.cursor.seek(r.read_u64()?)`).
fn args_contain_ops(trees: &[Tree], handles: &[String]) -> bool {
    for (i, t) in trees.iter().enumerate() {
        if let Some(g) = group_of(t) {
            if args_contain_ops(&g.children, handles) {
                return true;
            }
            continue;
        }
        if let Some(name) = ident_of(t) {
            if (name.starts_with("write_")
                || name.starts_with("read_")
                || name.starts_with("expect_"))
                && i >= 2
                && punct_of(&trees[i - 1]) == Some('.')
                && ident_of(&trees[i - 2]).is_some_and(|r| handles.iter().any(|h| h == r))
            {
                return true;
            }
        }
    }
    false
}

/// The first `"…"`-quoted string on a raw source line (the scanner blanks
/// string contents in the code channel, so `expect_*` field names are
/// recovered from the raw text).
fn quoted_on_line(src: &SourceFile, line: usize) -> Option<String> {
    let raw = &src.lines.get(line.checked_sub(1)?)?.raw;
    let start = raw.find('"')? + 1;
    let end = start + raw[start..].find('"')?;
    Some(raw[start..end].to_string())
}

/// Drops empty loops/branches and collapses branches whose arms agree.
pub(crate) fn normalize(nodes: Vec<OpNode>) -> Vec<OpNode> {
    let mut out = Vec::new();
    for n in nodes {
        match n {
            OpNode::Op { .. } | OpNode::Opaque { .. } => out.push(n),
            OpNode::Loop { body, line } => {
                let body = normalize(body);
                if !body.is_empty() {
                    out.push(OpNode::Loop { body, line });
                }
            }
            OpNode::Branch { arms, line } => {
                let arms: Vec<Vec<OpNode>> = arms.into_iter().map(normalize).collect();
                if arms.iter().all(Vec::is_empty) {
                    continue;
                }
                if arms.len() > 1 && arms.windows(2).all(|w| seq_struct_eq(&w[0], &w[1])) {
                    // All arms perform the same op sequence: collapse,
                    // dropping expressions that differ across arms (the
                    // dispatcher writes `0` in one arm, `1` in the other).
                    out.extend(merge_arms(&arms));
                } else {
                    out.push(OpNode::Branch { arms, line });
                }
            }
        }
    }
    out
}

fn seq_struct_eq(a: &[OpNode], b: &[OpNode]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| node_struct_eq(x, y))
}

fn node_struct_eq(a: &OpNode, b: &OpNode) -> bool {
    match (a, b) {
        (OpNode::Op { kind: ka, .. }, OpNode::Op { kind: kb, .. }) => ka == kb,
        (OpNode::Opaque { .. }, OpNode::Opaque { .. }) => true,
        (OpNode::Loop { body: ba, .. }, OpNode::Loop { body: bb, .. }) => seq_struct_eq(ba, bb),
        (OpNode::Branch { arms: aa, .. }, OpNode::Branch { arms: ab, .. }) => {
            aa.len() == ab.len() && aa.iter().zip(ab).all(|(x, y)| seq_struct_eq(x, y))
        }
        _ => false,
    }
}

/// Merges structurally equal arms into one sequence, keeping only the
/// expressions/fields every arm agrees on.
fn merge_arms(arms: &[Vec<OpNode>]) -> Vec<OpNode> {
    let mut out = arms[0].clone();
    for other in &arms[1..] {
        for (slot, o) in out.iter_mut().zip(other) {
            merge_node(slot, o);
        }
    }
    out
}

fn merge_node(slot: &mut OpNode, other: &OpNode) {
    match (slot, other) {
        (
            OpNode::Op { expr, field, .. },
            OpNode::Op {
                expr: oe,
                field: of,
                ..
            },
        ) => {
            if expr.as_deref() != oe.as_deref() {
                *expr = None;
            }
            if field.as_deref() != of.as_deref() {
                *field = None;
            }
        }
        (OpNode::Loop { body, .. }, OpNode::Loop { body: ob, .. }) => {
            for (s, o) in body.iter_mut().zip(ob) {
                merge_node(s, o);
            }
        }
        _ => {}
    }
}

/// First divergence between the save and restore sequences, if any.
fn diff_seqs(save: &[OpNode], restore: &[OpNode], restore_line: usize) -> Option<(usize, String)> {
    let n = save.len().max(restore.len());
    for k in 0..n {
        match (save.get(k), restore.get(k)) {
            (Some(s), None) => {
                return Some((
                    restore_line,
                    format!(
                        "save writes {} (line {}) that restore never reads",
                        s.describe(),
                        s.line()
                    ),
                ));
            }
            (None, Some(r)) => {
                return Some((
                    r.line(),
                    format!(
                        "restore reads {} past the end of save's writes",
                        r.describe()
                    ),
                ));
            }
            (Some(s), Some(r)) => {
                if let Some(found) = diff_nodes(s, r) {
                    return Some(found);
                }
            }
            (None, None) => {}
        }
    }
    None
}

fn diff_nodes(s: &OpNode, r: &OpNode) -> Option<(usize, String)> {
    match (s, r) {
        (
            OpNode::Op {
                kind: ks, expr: es, ..
            },
            OpNode::Op {
                kind: kr,
                expect,
                expr: er,
                ..
            },
        ) => {
            if ks != kr {
                return Some((
                    r.line(),
                    format!(
                        "save writes {} (line {}) where restore reads {}",
                        s.describe(),
                        s.line(),
                        r.describe()
                    ),
                ));
            }
            if *expect {
                if let (Some(es), Some(er)) = (es, er) {
                    if es != er {
                        return Some((
                            r.line(),
                            format!(
                                "identity field drift: save writes `{es}` (line {}) but \
                                 restore expects `{er}`",
                                s.line()
                            ),
                        ));
                    }
                }
            }
            None
        }
        (OpNode::Loop { body: bs, .. }, OpNode::Loop { body: br, .. }) => {
            diff_seqs(bs, br, r.line())
        }
        (OpNode::Branch { arms: ars, .. }, OpNode::Branch { arms: arr, .. }) => {
            if ars.len() != arr.len() {
                return Some((
                    r.line(),
                    format!(
                        "conditional snapshot blocks have {} save arm(s) but {} restore arm(s)",
                        ars.len(),
                        arr.len()
                    ),
                ));
            }
            for (a, b) in ars.iter().zip(arr) {
                if let Some(found) = diff_seqs(a, b, r.line()) {
                    return Some(found);
                }
            }
            None
        }
        (OpNode::Opaque { .. }, OpNode::Opaque { .. }) => None,
        _ => Some((
            r.line(),
            format!(
                "save performs {} (line {}) where restore performs {}",
                s.describe(),
                s.line(),
                r.describe()
            ),
        )),
    }
}

// ---------------------------------------------------------------------------
// R18 — observer purity
// ---------------------------------------------------------------------------

/// `Round`/`RoundCore` mutators an observer must not reach (beyond any
/// direct `.charge_*` call, which is flagged unconditionally).
const ROUND_MUTATORS: [&str; 6] = [
    "send",
    "deliver",
    "begin_round",
    "finish",
    "flush_charges",
    "set_enforcement",
];

fn check_r18(syntaxes: &[FileSyntax], graph: &CallGraph, findings: &mut Vec<Finding>) {
    let mut seeds: BTreeSet<usize> = BTreeSet::new();
    for (fi, fs) in syntaxes.iter().enumerate() {
        for im in trait_impls(fs, "RoundObserver") {
            for (ni, node) in graph.nodes.iter().enumerate() {
                if node.file == fi
                    && !node.is_test
                    && node.start_line >= im.open_line
                    && node.end_line <= im.close_line
                {
                    seeds.insert(ni);
                }
            }
        }
    }
    if seeds.is_empty() {
        return;
    }
    let admit = |n: &FnNode| !n.is_test;
    let reach = graph.closure(seeds.iter().copied(), false, true, admit);
    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    for &ni in &reach {
        let node = &graph.nodes[ni];
        let via = if seeds.contains(&ni) {
            "a RoundObserver impl method"
        } else {
            "code reachable from a RoundObserver impl"
        };
        for call in &node.calls {
            let charges = call.method && call.name.starts_with("charge_");
            let mutates = ROUND_MUTATORS.contains(&call.name.as_str())
                && graph.resolve(ni, call).iter().any(|&t| {
                    let tn = &graph.nodes[t];
                    syntaxes[tn.file].effective == "crates/sim/src/runtime.rs"
                        && matches!(tn.self_type.as_deref(), Some("Round" | "RoundCore"))
                });
            if (charges || mutates) && seen.insert((ni, call.line)) {
                findings.push(Finding::new(
                    &syntaxes[node.file].effective,
                    call.line,
                    "R18",
                    format!(
                        "`{}` ({via}) calls `{}`: observers are diagnostics-only and must \
                         not reach ledger charging or round mutation, or --trace would \
                         perturb the golden ledgers",
                        node.name, call.name
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R19 — shard isolation in par_nodes closures
// ---------------------------------------------------------------------------

/// The deterministic-parallelism helpers and whether their closures get
/// exclusive shard slices (`true`) or per-node indices (`false`). Shard
/// closures may not index *any* captured state; per-node map closures may
/// read captured slices but not index-write them.
const PAR_HELPERS: [(&str, bool); 3] = [
    ("par_scatter_shards", true),
    ("par_zip_shards", true),
    ("par_map_nodes", false),
];

fn check_r19(syntaxes: &[FileSyntax], findings: &mut Vec<Finding>) {
    for fs in syntaxes {
        for f in &fs.fns {
            if f.is_test {
                continue;
            }
            r19_walk(fs.body_of(f), &fs.effective, findings);
        }
    }
}

fn r19_walk(trees: &[Tree], path: &str, findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < trees.len() {
        if let Some(g) = group_of(&trees[i]) {
            if i > 0 && punct_of(&trees[i - 1]) == Some('!') {
                i += 1;
                continue;
            }
            r19_walk(&g.children, path, findings);
            i += 1;
            continue;
        }
        if let Some(call) = call_at(trees, i) {
            if let Some(&(_, shard)) = PAR_HELPERS.iter().find(|(n, _)| *n == call.name) {
                check_closure_arg(&call.args.children, shard, path, findings);
                i = call.after;
                continue;
            }
        }
        i += 1;
    }
}

/// Analyzes the closure argument of one par-helper call site.
fn check_closure_arg(args: &[Tree], shard: bool, path: &str, findings: &mut Vec<Finding>) {
    // Locate the closure: the first top-level `|…|`.
    let Some(a) = args.iter().position(|t| punct_of(t) == Some('|')) else {
        return;
    };
    let Some(rel) = args[a + 1..].iter().position(|t| punct_of(t) == Some('|')) else {
        return;
    };
    let b = a + 1 + rel;
    let mut sanctioned: Vec<String> = Vec::new();
    for seg in split_commas(&args[a + 1..b]) {
        pattern_idents(seg, &mut sanctioned);
    }
    let body = &args[b + 1..];
    collect_locals(body, &mut sanctioned);
    let mut offenders: Vec<(usize, String)> = Vec::new();
    collect_index_offenses(body, &sanctioned, shard, &mut offenders);
    if let Some(&(line, _)) = offenders.iter().min_by_key(|(l, _)| *l) {
        let mut roots: Vec<&str> = offenders.iter().map(|(_, r)| r.as_str()).collect();
        roots.sort_unstable();
        roots.dedup();
        let what = if shard {
            "indexes captured state"
        } else {
            "index-writes captured state"
        };
        findings.push(Finding::new(
            path,
            line,
            "R19",
            format!(
                "par-shard closure {what} ({}) outside its shard-provided arguments: \
                 cross-shard indexing races once shards run on different threads — go \
                 through the closure's slice parameters, or carry a justified allow(R19) \
                 for an audited disjointness argument",
                roots.join(", ")
            ),
        ));
    }
}

/// Adds `let`-bound and `for`-pattern identifiers declared inside the
/// closure body to the sanctioned set.
fn collect_locals(trees: &[Tree], out: &mut Vec<String>) {
    let mut i = 0;
    while i < trees.len() {
        if let Some(g) = group_of(&trees[i]) {
            collect_locals(&g.children, out);
            i += 1;
            continue;
        }
        match ident_of(&trees[i]) {
            Some("let") => {
                let end = trees[i + 1..]
                    .iter()
                    .position(|t| punct_of(t) == Some('=') || punct_of(t) == Some(';'))
                    .map_or(trees.len(), |p| i + 1 + p);
                pattern_idents(&trees[i + 1..end], out);
                i = end;
            }
            Some("for") => {
                let end = trees[i + 1..]
                    .iter()
                    .position(|t| ident_of(t) == Some("in"))
                    .map_or(trees.len(), |p| i + 1 + p);
                pattern_idents(&trees[i + 1..end], out);
                i = end;
            }
            _ => i += 1,
        }
    }
}

/// Finds `root[…]` indexing (and, when `writes_only`, only index-writes)
/// whose chain root is not a sanctioned identifier.
fn collect_index_offenses(
    trees: &[Tree],
    sanctioned: &[String],
    any_index: bool,
    out: &mut Vec<(usize, String)>,
) {
    for i in 0..trees.len() {
        if let Some(g) = group_of(&trees[i]) {
            let indexes = g.delim == '['
                && i > 0
                && ident_of(&trees[i - 1])
                    .is_some_and(|s| !crate::syntax::is_keyword(s) || matches!(s, "self" | "Self"));
            if indexes {
                if let Some(root) = chain_root(trees, i - 1) {
                    let ok = sanctioned.iter().any(|s| s == root);
                    if !ok && (any_index || is_index_write(trees, i)) {
                        out.push((g.open_line, root.to_string()));
                    }
                }
            }
            collect_index_offenses(&g.children, sanctioned, any_index, out);
        }
    }
}

/// The identifier at the start of a `a.b.c[…]` chain ending at `i` (the
/// tree just before the index group). Returns `None` when the chain starts
/// at a call/group result rather than a place.
fn chain_root(trees: &[Tree], mut i: usize) -> Option<&str> {
    loop {
        ident_of(&trees[i])?;
        if i >= 2 && punct_of(&trees[i - 1]) == Some('.') {
            if ident_of(&trees[i - 2]).is_some() {
                i -= 2;
                continue;
            }
            return None; // chain hangs off a group/call result
        }
        return ident_of(&trees[i]);
    }
}

/// True if the index group at `i` is the target of an assignment
/// (`x[…] = v`, `x[…] += v`, `x[…].f = v`, shifts included).
fn is_index_write(trees: &[Tree], i: usize) -> bool {
    let mut j = i + 1;
    // Skip further place projections: `.field`, nested `[…]`.
    while j < trees.len() {
        if punct_of(&trees[j]) == Some('.') && trees.get(j + 1).and_then(ident_of).is_some() {
            j += 2;
            continue;
        }
        if group_of(&trees[j]).is_some_and(|g| g.delim == '[') {
            j += 1;
            continue;
        }
        break;
    }
    let p1 = punct_of(trees.get(j).unwrap_or(&trees[i])).unwrap_or(' ');
    let p2 = trees.get(j + 1).and_then(punct_of).unwrap_or(' ');
    let p3 = trees.get(j + 2).and_then(punct_of).unwrap_or(' ');
    if p1 == '=' && p2 != '=' {
        return true;
    }
    if "+-*/%^&|".contains(p1) && p2 == '=' {
        return true;
    }
    "<>".contains(p1) && p2 == p1 && p3 == '='
}
