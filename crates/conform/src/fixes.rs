//! Autofix engine: structured, mechanical repairs attached to findings.
//!
//! A [`Fix`] is a set of non-overlapping single-line text [`Edit`]s over the
//! *original* source (the `raw` channel). Rules compute their matches on the
//! blanked code channel — where strings and comments cannot produce false
//! edits — and translate positions into raw-text spans through
//! [`crate::scanner::Line::map`].
//!
//! Fix-safety rules (see DESIGN.md §14):
//!
//! 1. **Mechanical only.** A fix is attached only when the replacement is a
//!    pure token rewrite whose post-state provably no longer fires the rule
//!    (`Hash*` → `BTree*`, `.unwrap()` → invariant `.expect`, magic
//!    bandwidth literal → derived expression, `f64`/`f32` type tokens →
//!    integer widths). Findings that need human judgment carry no fix.
//! 2. **Non-overlapping.** [`apply`] sorts edits and refuses (skips) any
//!    edit that overlaps an already-applied one, so a fix pass is always
//!    well-defined text surgery.
//! 3. **Idempotent.** Applying fixes and re-linting yields no further fixes
//!    for the repaired findings; a second `--fix` run makes zero edits
//!    (pinned by a meta-test over every fixable fixture).

use crate::scanner::Line;

/// A half-open single-line span over the raw source text, in 1-based char
/// columns (`start_col..end_col` on line `line`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based char column of the first replaced char.
    pub start_col: usize,
    /// 1-based char column one past the last replaced char.
    pub end_col: usize,
}

/// One text replacement.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edit {
    /// The raw-text span to delete.
    pub span: Span,
    /// The text inserted in its place.
    pub replacement: String,
}

/// A structured fix: one or more edits that together repair a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    /// Short description of the repair, e.g. `replace HashMap with BTreeMap`.
    pub title: String,
    /// The edits, in source order, pairwise non-overlapping.
    pub edits: Vec<Edit>,
}

/// Translates a match over a line's code channel (`start..end`, 0-based char
/// offsets into `code`) into a raw-text [`Span`] via the scanner's map.
/// Returns `None` for empty or out-of-range matches.
pub fn code_span(line: &Line, lineno: usize, start: usize, end: usize) -> Option<Span> {
    if start >= end || end > line.map.len() {
        return None;
    }
    Some(Span {
        line: lineno,
        start_col: line.map[start] as usize + 1,
        end_col: line.map[end - 1] as usize + 2,
    })
}

/// Finds every non-overlapping occurrence of `pat` in `hay` (char offsets).
pub fn find_all(hay: &[char], pat: &str) -> Vec<usize> {
    let p: Vec<char> = pat.chars().collect();
    let mut out = Vec::new();
    if p.is_empty() || hay.len() < p.len() {
        return out;
    }
    let mut i = 0usize;
    while i + p.len() <= hay.len() {
        if hay[i..i + p.len()] == p[..] {
            out.push(i);
            i += p.len();
        } else {
            i += 1;
        }
    }
    out
}

/// Applies `edits` to `text`, returning the rewritten text and the number of
/// edits actually applied. Edits are applied per line, right-to-left so
/// earlier spans stay valid; an edit overlapping an already-applied one on
/// the same line is skipped (fix-safety rule 2), as is any edit whose span
/// falls outside its line.
pub fn apply(text: &str, edits: &[Edit]) -> (String, usize) {
    let mut lines: Vec<String> = text.split('\n').map(|l| l.to_string()).collect();
    let mut sorted: Vec<&Edit> = edits.iter().collect();
    // Right-to-left within a line; line order is irrelevant.
    sorted.sort_by_key(|e| std::cmp::Reverse((e.span.line, e.span.start_col)));
    sorted.dedup();
    let mut applied = 0usize;
    // Leftmost already-edited column per line (edits arrive right-to-left).
    let mut low_water: Vec<(usize, usize)> = Vec::new();
    for e in sorted {
        let Some(line) = lines.get_mut(e.span.line.saturating_sub(1)) else {
            continue;
        };
        let chars: Vec<char> = line.chars().collect();
        let (s, t) = (e.span.start_col - 1, e.span.end_col - 1);
        if s >= t || t > chars.len() {
            continue;
        }
        if let Some(&(_, low)) = low_water.iter().find(|(l, _)| *l == e.span.line) {
            if t > low {
                continue; // overlaps an applied edit — skip, keep the first
            }
        }
        let mut rebuilt: String = chars[..s].iter().collect();
        rebuilt.push_str(&e.replacement);
        rebuilt.extend(&chars[t..]);
        *line = rebuilt;
        match low_water.iter_mut().find(|(l, _)| *l == e.span.line) {
            Some(slot) => slot.1 = s,
            None => low_water.push((e.span.line, s)),
        }
        applied += 1;
    }
    (lines.join("\n"), applied)
}

/// Renders a dry-run diff for `--fix --diff`: the classic `---`/`+++` header
/// per file followed by `-old`/`+new` pairs for every changed line.
pub fn render_diff(path: &str, before: &str, after: &str) -> String {
    let mut out = String::new();
    let old: Vec<&str> = before.split('\n').collect();
    let new: Vec<&str> = after.split('\n').collect();
    let mut body = String::new();
    for (i, (o, n)) in old.iter().zip(new.iter()).enumerate() {
        if o != n {
            body.push_str(&format!("@@ line {} @@\n-{}\n+{}\n", i + 1, o, n));
        }
    }
    if !body.is_empty() {
        out.push_str(&format!("--- {path}\n+++ {path}\n{body}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_str;

    fn edit(line: usize, s: usize, t: usize, r: &str) -> Edit {
        Edit {
            span: Span {
                line,
                start_col: s,
                end_col: t,
            },
            replacement: r.to_string(),
        }
    }

    #[test]
    fn apply_rewrites_right_to_left() {
        let (out, n) = apply(
            "use HashMap; let m = HashMap::new();\n",
            &[edit(1, 5, 12, "BTreeMap"), edit(1, 22, 29, "BTreeMap")],
        );
        assert_eq!(out, "use BTreeMap; let m = BTreeMap::new();\n");
        assert_eq!(n, 2);
    }

    #[test]
    fn overlapping_edits_keep_the_first_applied() {
        let (out, n) = apply("abcdef\n", &[edit(1, 2, 5, "XY"), edit(1, 4, 7, "Z")]);
        // Right-to-left: cols 4..7 applied first; 2..5 overlaps and is skipped.
        assert_eq!(out, "abcZ\n");
        assert_eq!(n, 1);
    }

    #[test]
    fn code_span_skips_blanked_string_contents() {
        let f = scan_str("crates/core/src/x.rs", "let s = \"HashMap\"; m.len();\n");
        let line = &f.lines[0];
        // `m.len()` sits after the blanked string; its code offsets must map
        // back to the same raw columns.
        let code_chars: Vec<char> = line.code.chars().collect();
        let at = find_all(&code_chars, "m.len()")[0];
        let span = code_span(line, 1, at, at + 7).unwrap();
        let raw: Vec<char> = line.raw.chars().collect();
        let got: String = raw[span.start_col - 1..span.end_col - 1].iter().collect();
        assert_eq!(got, "m.len()");
    }

    #[test]
    fn diff_lists_changed_lines_only() {
        let d = render_diff("a.rs", "one\ntwo\nthree\n", "one\n2\nthree\n");
        assert!(d.contains("--- a.rs"));
        assert!(d.contains("-two"));
        assert!(d.contains("+2"));
        assert!(!d.contains("-one"));
    }
}
