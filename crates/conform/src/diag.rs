//! Findings and stable diagnostic rendering.

use crate::fixes::Fix;
use cc_mis_analysis::json::Json;

/// One conformance finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (or fixture effective path).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (`R1`..`R24`, or `P1`/`P2` for pragma violations).
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Mechanical repair, when the rule can compute one (see
    /// [`crate::fixes`]). Rendered into SARIF `fixes` and applied by
    /// `--fix`.
    pub fix: Option<Fix>,
}

impl Finding {
    /// Creates a finding.
    pub fn new(path: &str, line: usize, rule: &'static str, message: impl Into<String>) -> Self {
        Finding {
            path: path.to_string(),
            line,
            rule,
            message: message.into(),
            fix: None,
        }
    }

    /// Attaches a mechanical fix.
    pub fn with_fix(mut self, fix: Fix) -> Self {
        self.fix = Some(fix);
        self
    }

    /// The stable one-line diagnostic form: `file:line rule-id message`.
    pub fn render(&self) -> String {
        format!("{}:{} {} {}", self.path, self.line, self.rule, self.message)
    }

    /// Severity class: pragma violations (`P1`) are errors — a broken
    /// escape hatch may be silencing anything — as are pool leaks (`R16`),
    /// snapshot-parity breaks (`R17`), determinism taint (`R21`), and
    /// snapshot-format drift (`R22`), which corrupt state or reproducibility
    /// rather than merely drifting from the model. Every other rule finding
    /// is a warning (the CI gate still fails on warnings; the split feeds
    /// the exit code and SARIF levels).
    pub fn severity(&self) -> &'static str {
        match self.rule {
            "P1" | "R16" | "R17" | "R21" | "R22" => "error",
            _ => "warning",
        }
    }
}

/// The normalized baseline key of a finding: rule, path, and message —
/// deliberately no line number, so unrelated edits that shift lines do not
/// churn a committed baseline. See [`crate::baseline`].
pub fn baseline_key(f: &Finding) -> String {
    format!("{}\t{}\t{}", f.rule, f.path, f.message)
}

/// Sorts findings into the stable output order (path, line, rule).
pub fn sort(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
}

/// Renders findings as a JSON document (via the workspace's dependency-free
/// writer): `{"findings": [...], "count": N}`. The schema — field names,
/// nesting, and ordering — is frozen by a snapshot test; extend it only by
/// appending fields.
pub fn to_json(findings: &[Finding]) -> String {
    let items: Vec<Json> = findings
        .iter()
        .map(|f| {
            let mut fields = vec![
                ("path", Json::Str(f.path.clone())),
                ("line", Json::UInt(f.line as u64)),
                ("rule", Json::Str(f.rule.to_string())),
                ("severity", Json::Str(f.severity().to_string())),
                ("message", Json::Str(f.message.clone())),
            ];
            // Appended only when present, so the frozen schema (which has
            // no fixable findings) is unchanged.
            if let Some(fix) = &f.fix {
                fields.push(("fix", fix_to_json(fix)));
            }
            Json::obj(fields)
        })
        .collect();
    Json::obj(vec![
        ("findings", Json::Arr(items)),
        ("count", Json::UInt(findings.len() as u64)),
    ])
    .render_pretty()
}

/// Renders a [`crate::fixes::Fix`] as JSON: title plus span/replacement
/// edits.
fn fix_to_json(fix: &crate::fixes::Fix) -> Json {
    let edits: Vec<Json> = fix
        .edits
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("line", Json::UInt(e.span.line as u64)),
                ("startCol", Json::UInt(e.span.start_col as u64)),
                ("endCol", Json::UInt(e.span.end_col as u64)),
                ("replacement", Json::Str(e.replacement.clone())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("title", Json::Str(fix.title.clone())),
        ("edits", Json::Arr(edits)),
    ])
}

/// Renders findings as a SARIF 2.1.0 log, the interchange format CI
/// annotation tooling consumes. One run, one driver (`cc-mis-conform`),
/// rule metadata from [`crate::rules::RULES`], one result per finding.
pub fn to_sarif(findings: &[Finding]) -> String {
    let rules: Vec<Json> = crate::rules::RULES
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("id", Json::Str(r.id.to_string())),
                (
                    "shortDescription",
                    Json::obj(vec![("text", Json::Str(r.summary.to_string()))]),
                ),
                (
                    "fullDescription",
                    Json::obj(vec![("text", Json::Str(r.contract.to_string()))]),
                ),
                (
                    "help",
                    Json::obj(vec![(
                        "text",
                        Json::Str(format!("{} Fix: {}", r.rationale, r.fix)),
                    )]),
                ),
            ])
        })
        .collect();
    let results: Vec<Json> = findings
        .iter()
        .map(|f| {
            let mut fields = vec![
                ("ruleId", Json::Str(f.rule.to_string())),
                ("level", Json::Str(f.severity().to_string())),
                (
                    "message",
                    Json::obj(vec![("text", Json::Str(f.message.clone()))]),
                ),
                (
                    "locations",
                    Json::Arr(vec![Json::obj(vec![(
                        "physicalLocation",
                        Json::obj(vec![
                            (
                                "artifactLocation",
                                Json::obj(vec![("uri", Json::Str(f.path.clone()))]),
                            ),
                            (
                                "region",
                                Json::obj(vec![("startLine", Json::UInt(f.line as u64))]),
                            ),
                        ]),
                    )])]),
                ),
            ];
            if let Some(fix) = &f.fix {
                fields.push(("fixes", sarif_fixes(&f.path, fix)));
            }
            Json::obj(fields)
        })
        .collect();
    Json::obj(vec![
        (
            "$schema",
            Json::Str(
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
                    .to_string(),
            ),
        ),
        ("version", Json::Str("2.1.0".to_string())),
        (
            "runs",
            Json::Arr(vec![Json::obj(vec![
                (
                    "tool",
                    Json::obj(vec![(
                        "driver",
                        Json::obj(vec![
                            ("name", Json::Str("cc-mis-conform".to_string())),
                            ("informationUri", Json::Str("DESIGN.md".to_string())),
                            ("rules", Json::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results", Json::Arr(results)),
            ])]),
        ),
    ])
    .render_pretty()
}

/// Renders the SARIF 2.1.0 `fixes` property for one finding: a single fix
/// with one artifact change carrying every replacement.
fn sarif_fixes(path: &str, fix: &crate::fixes::Fix) -> Json {
    let replacements: Vec<Json> = fix
        .edits
        .iter()
        .map(|e| {
            Json::obj(vec![
                (
                    "deletedRegion",
                    Json::obj(vec![
                        ("startLine", Json::UInt(e.span.line as u64)),
                        ("startColumn", Json::UInt(e.span.start_col as u64)),
                        ("endColumn", Json::UInt(e.span.end_col as u64)),
                    ]),
                ),
                (
                    "insertedContent",
                    Json::obj(vec![("text", Json::Str(e.replacement.clone()))]),
                ),
            ])
        })
        .collect();
    Json::Arr(vec![Json::obj(vec![
        (
            "description",
            Json::obj(vec![("text", Json::Str(fix.title.clone()))]),
        ),
        (
            "artifactChanges",
            Json::Arr(vec![Json::obj(vec![
                (
                    "artifactLocation",
                    Json::obj(vec![("uri", Json::Str(path.to_string()))]),
                ),
                ("replacements", Json::Arr(replacements)),
            ])]),
        ),
    ])])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_stable_file_line_rule_message() {
        let f = Finding::new("crates/x/src/a.rs", 7, "R1", "no hash iteration");
        assert_eq!(f.render(), "crates/x/src/a.rs:7 R1 no hash iteration");
    }

    #[test]
    fn sort_orders_by_path_then_line_then_rule() {
        let mut v = vec![
            Finding::new("b.rs", 1, "R1", "m"),
            Finding::new("a.rs", 9, "R5", "m"),
            Finding::new("a.rs", 9, "R2", "m"),
            Finding::new("a.rs", 2, "R8", "m"),
        ];
        sort(&mut v);
        let order: Vec<(String, usize, &str)> =
            v.iter().map(|f| (f.path.clone(), f.line, f.rule)).collect();
        assert_eq!(
            order,
            vec![
                ("a.rs".to_string(), 2, "R8"),
                ("a.rs".to_string(), 9, "R2"),
                ("a.rs".to_string(), 9, "R5"),
                ("b.rs".to_string(), 1, "R1"),
            ]
        );
    }

    #[test]
    fn json_document_has_findings_and_count() {
        let v = vec![Finding::new("a.rs", 1, "R3", "no ambient time")];
        let doc = to_json(&v);
        assert!(doc.contains("\"count\": 1"));
        assert!(doc.contains("\"rule\": \"R3\""));
    }
}
