//! `cc-mis-conform` — command-line front end for the conformance linter.
//!
//! ```text
//! cc-mis-conform --workspace            # lint the whole workspace (default)
//! cc-mis-conform --workspace --json     # machine-readable findings
//! cc-mis-conform --sarif out.sarif      # also write a SARIF 2.1.0 log
//! cc-mis-conform --baseline base.txt    # gate on *new* findings only
//! cc-mis-conform --timings              # per-phase wall clock on stderr
//! cc-mis-conform --fix                  # apply mechanical fixes in place
//! cc-mis-conform --fix --diff           # dry run: print the would-be diff
//! cc-mis-conform --no-cache             # skip the persistent result cache
//! cc-mis-conform --update-snapshot-manifest  # re-pin save() sequences (R22)
//! cc-mis-conform --list-rules           # print the rule set
//! cc-mis-conform --explain R10          # contract, rationale, fix recipe
//! cc-mis-conform --root DIR [PATH...]   # lint specific files/dirs under DIR
//! ```
//!
//! Exits 0 on a conform-clean tree, 1 on rule findings, 3 on any
//! error-severity finding (`P1` broken escape hatch, `R16` pool leak,
//! `R17` snapshot-parity break, `R21` determinism taint, `R22`
//! snapshot-format drift), 2 on usage or I/O errors. Diagnostics are
//! stable `file:line rule-id message` lines. With `--baseline PATH`, the
//! first run writes a normalized snapshot of current findings and later
//! runs subtract it — error-severity findings always surface.
//!
//! Workspace runs reuse `target/conform-cache.bin` (content-hash keyed;
//! `--timings` reports hits/misses); `--no-cache` and `--fix` bypass it.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use cc_mis_conform::{
    baseline, check_with, check_workspace_cached, check_workspace_with, diag, find_workspace_root,
    fixes, rules, scanner, snapshot_manifest, workspace_inputs, Finding, Input, Timings,
};

const USAGE: &str = "usage: cc-mis-conform [--workspace] [--json] [--sarif PATH] \
                     [--baseline PATH] [--timings] [--fix [--diff]] [--no-cache] \
                     [--update-snapshot-manifest] [--list-rules] \
                     [--explain RULE] [--root DIR] [PATH...]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut list_rules = false;
    let mut explain: Option<String> = None;
    let mut sarif: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut timings = false;
    let mut fix = false;
    let mut diff = false;
    let mut no_cache = false;
    let mut update_manifest = false;
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--json" => json = true,
            "--timings" => timings = true,
            "--fix" => fix = true,
            "--diff" => diff = true,
            "--no-cache" => no_cache = true,
            "--update-snapshot-manifest" => update_manifest = true,
            "--list-rules" => list_rules = true,
            "--explain" => match it.next() {
                Some(rule) => explain = Some(rule.clone()),
                None => return usage_error("--explain needs a rule id (e.g. R10)"),
            },
            "--sarif" => match it.next() {
                Some(path) => sarif = Some(PathBuf::from(path)),
                None => return usage_error("--sarif needs an output path"),
            },
            "--baseline" => match it.next() {
                Some(path) => baseline_path = Some(PathBuf::from(path)),
                None => return usage_error("--baseline needs a snapshot path"),
            },
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage_error(&format!("unknown flag `{other}`"));
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    if list_rules {
        for rule in rules::RULES {
            println!("{:3}  {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    if let Some(id) = explain {
        let Some(rule) = rules::RULES.iter().find(|r| r.id == id) else {
            return usage_error(&format!(
                "unknown rule `{id}` (try --list-rules for the rule set)"
            ));
        };
        println!("{}  {}", rule.id, rule.summary);
        println!();
        println!("contract:  {}", rule.contract);
        println!("rationale: {}", rule.rationale);
        println!("fix:       {}", rule.fix);
        return ExitCode::SUCCESS;
    }

    if diff && !fix {
        return usage_error("--diff only makes sense together with --fix");
    }

    if update_manifest {
        let start = root.clone().unwrap_or_else(|| PathBuf::from("."));
        let Some(ws) = find_workspace_root(&start) else {
            eprintln!(
                "error: no workspace root (Cargo.toml with [workspace]) at or above {}",
                start.display()
            );
            return ExitCode::from(2);
        };
        let out = ws.join("crates/conform/snapshot_manifest.txt");
        let result = workspace_inputs(&ws)
            .map(|inputs| snapshot_manifest(&inputs))
            .and_then(|text| std::fs::write(&out, text));
        return match result {
            Ok(()) => {
                eprintln!("conform: snapshot manifest written to {}", out.display());
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("error: {err}");
                ExitCode::from(2)
            }
        };
    }

    let mut phase_times = Timings::default();
    let mut findings = if paths.is_empty() {
        let start = root.clone().unwrap_or_else(|| PathBuf::from("."));
        let Some(ws) = find_workspace_root(&start) else {
            eprintln!(
                "error: no workspace root (Cargo.toml with [workspace]) at or above {}",
                start.display()
            );
            return ExitCode::from(2);
        };
        // `--fix` rewrites files the cache would key on, so it (like
        // `--no-cache`) runs the full pipeline.
        let result = if fix {
            workspace_inputs(&ws).map(|inputs| {
                let findings = check_with(&inputs, timings.then_some(&mut phase_times));
                let disks: Vec<PathBuf> = inputs.iter().map(|i| ws.join(&i.path)).collect();
                apply_fixes(&inputs, &disks, &findings, diff);
                findings
            })
        } else if no_cache {
            check_workspace_with(&ws, timings.then_some(&mut phase_times))
        } else {
            check_workspace_cached(&ws, timings.then_some(&mut phase_times))
        };
        match result {
            Ok(findings) => findings,
            Err(err) => {
                eprintln!("error: {err}");
                return ExitCode::from(2);
            }
        }
    } else {
        let base = root.unwrap_or_else(|| PathBuf::from("."));
        match read_inputs(&base, &paths) {
            Ok((inputs, disks)) => {
                let findings = check_with(&inputs, timings.then_some(&mut phase_times));
                if fix {
                    apply_fixes(&inputs, &disks, &findings, diff);
                }
                findings
            }
            Err(err) => {
                eprintln!("error: {err}");
                return ExitCode::from(2);
            }
        }
    };
    if timings {
        eprintln!("{}", phase_times.render());
    }

    if let Some(path) = baseline_path {
        match baseline::apply(&path, &mut findings) {
            Ok(out) if out.wrote => eprintln!(
                "conform: baseline written to {} ({} finding(s) recorded)",
                path.display(),
                out.suppressed
            ),
            Ok(out) => eprintln!(
                "conform: baseline {} suppressed {} known finding(s)",
                path.display(),
                out.suppressed
            ),
            Err(err) => {
                eprintln!("error: baseline {}: {err}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    if let Some(path) = sarif {
        if let Err(err) = std::fs::write(&path, diag::to_sarif(&findings)) {
            eprintln!("error: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if json {
        print!("{}", diag::to_json(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render());
        }
        if findings.is_empty() {
            eprintln!("conform: clean");
        } else {
            eprintln!("conform: {} finding(s)", findings.len());
        }
    }
    // Severity-aware exit: error findings (P1 broken escape hatch, R16
    // pool leak, R17 snapshot-parity break) outrank ordinary findings so
    // CI can distinguish "state corruption" from "style drift".
    if findings.iter().any(|f| f.severity() == "error") {
        ExitCode::from(3)
    } else if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Reads explicit file arguments (relative to `base` unless absolute),
/// returning the inputs plus their on-disk paths (for `--fix`).
fn read_inputs(base: &Path, paths: &[PathBuf]) -> std::io::Result<(Vec<Input>, Vec<PathBuf>)> {
    let mut inputs = Vec::new();
    let mut disks = Vec::new();
    for p in paths {
        let full = if p.is_absolute() {
            p.clone()
        } else {
            base.join(p)
        };
        let text = std::fs::read_to_string(&full)?;
        inputs.push(Input {
            path: p.to_string_lossy().replace('\\', "/"),
            text,
        });
        disks.push(full);
    }
    Ok((inputs, disks))
}

/// Applies (or, with `diff`, previews) every mechanical fix in `findings`.
/// Findings are keyed by *effective* path; each is mapped back to the
/// on-disk input whose effective path matches, then all of that file's
/// edits are applied in one right-to-left pass.
fn apply_fixes(inputs: &[Input], disks: &[PathBuf], findings: &[Finding], diff: bool) {
    let mut total_edits = 0usize;
    let mut files_changed = 0usize;
    for (input, disk) in inputs.iter().zip(disks) {
        let effective = scanner::effective_path(&input.path, &input.text);
        let edits: Vec<fixes::Edit> = findings
            .iter()
            .filter(|f| f.path == effective)
            .filter_map(|f| f.fix.as_ref())
            .flat_map(|fix| fix.edits.iter().cloned())
            .collect();
        if edits.is_empty() {
            continue;
        }
        let (after, applied) = fixes::apply(&input.text, &edits);
        if applied == 0 || after == input.text {
            continue;
        }
        if diff {
            print!("{}", fixes::render_diff(&input.path, &input.text, &after));
        } else if let Err(err) = std::fs::write(disk, &after) {
            eprintln!("error: writing {}: {err}", disk.display());
            continue;
        }
        total_edits += applied;
        files_changed += 1;
    }
    eprintln!(
        "conform: {total_edits} fix(es) across {files_changed} file(s){}",
        if diff { " (dry run)" } else { "" }
    );
}
