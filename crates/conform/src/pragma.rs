//! The conformance allow-pragma grammar.
//!
//! A finding may be suppressed in place with a justified pragma comment:
//!
//! ```text
//! // conform: allow(R3) -- wall-clock harness, not a charged path
//! let start = Instant::now();
//! ```
//!
//! Grammar: after the `conform` marker and a colon, `allow(<rule>[, <rule>...])`
//! followed by ` -- <justification>`. The justification is **mandatory** — an allow with no reason is itself a
//! conformance finding (`P1`), as is an allow naming an unknown rule. A
//! pragma applies to its own line and the immediately following line.
//!
//! Only plain `//` comments carry pragmas: doc comments (`///`, `//!`)
//! are rendered documentation, so a pragma-shaped line there (like the
//! example above) illustrates the grammar without directing the linter —
//! and without tripping the `P2` stale-pragma audit.
//!
//! A pragma that suppresses nothing is itself a finding (`P2`): every
//! waiver in the audit trail must still be pulling its weight.

use crate::diag::Finding;
use crate::rules::rule_exists;
use crate::scanner::SourceFile;

/// A parsed, validated pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line the pragma appears on.
    pub line: usize,
    /// Rules the pragma suppresses.
    pub rules: Vec<String>,
}

/// Extracts pragmas from `file`'s comment channel. Malformed or
/// unjustified pragmas are reported into `findings` (rule `P1`) and do not
/// suppress anything.
pub fn collect(file: &SourceFile, findings: &mut Vec<Finding>) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let Some(at) = line.comment.find("conform:") else {
            continue;
        };
        // Doc comments document; only plain comments direct the linter.
        let trimmed = line.raw.trim_start();
        if trimmed.starts_with("///") || trimmed.starts_with("//!") {
            continue;
        }
        let lineno = idx + 1;
        let body = line.comment[at + "conform:".len()..].trim();
        match parse(body) {
            Ok(rules) => pragmas.push(Pragma {
                line: lineno,
                rules,
            }),
            Err(msg) => findings.push(Finding::new(&file.effective, lineno, "P1", msg)),
        }
    }
    pragmas
}

/// Parses `allow(<rules>) -- <justification>`, returning the rule list.
fn parse(body: &str) -> Result<Vec<String>, String> {
    let rest = body.strip_prefix("allow").ok_or_else(|| {
        "malformed conform pragma: expected `conform: allow(<rule>) -- <justification>`".to_string()
    })?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or("malformed conform pragma: missing `(` after `allow`")?;
    let close = rest
        .find(')')
        .ok_or("malformed conform pragma: missing `)`")?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("conform pragma allows no rules".to_string());
    }
    for r in &rules {
        if !rule_exists(r) {
            return Err(format!("conform pragma names unknown rule `{r}`"));
        }
    }
    let after = rest[close + 1..].trim_start();
    let justification = after.strip_prefix("--").map(str::trim).unwrap_or("");
    if justification.is_empty() {
        return Err(
            "conform pragma requires a justification: `conform: allow(<rule>) -- <why>`"
                .to_string(),
        );
    }
    Ok(rules)
}

/// True if `pragmas` suppress `rule` at 1-based line `lineno` (a pragma
/// covers its own line and the next one).
pub fn suppressed(pragmas: &[Pragma], rule: &str, lineno: usize) -> bool {
    suppressing(pragmas, rule, lineno).is_some()
}

/// Like [`suppressed`], but returns the line of the pragma doing the
/// suppressing — callers record it as a "hit" so the P2 stale-pragma pass
/// knows which `(pragma, rule)` pairs still pull their weight.
pub fn suppressing(pragmas: &[Pragma], rule: &str, lineno: usize) -> Option<usize> {
    pragmas
        .iter()
        .find(|p| (p.line == lineno || p.line + 1 == lineno) && p.rules.iter().any(|r| r == rule))
        .map(|p| p.line)
}

/// Emits a P2 finding for every `(pragma, rule)` pair in `pragmas` that
/// registered no hit — the rule never fired (suppressed) at that site, so
/// the pragma is stale debt.
pub fn check_stale(
    effective: &str,
    pragmas: &[Pragma],
    hits: &[(usize, String)],
    findings: &mut Vec<Finding>,
) {
    for p in pragmas {
        for rule in &p.rules {
            if hits.iter().any(|(l, r)| *l == p.line && r == rule) {
                continue;
            }
            findings.push(Finding::new(
                effective,
                p.line,
                "P2",
                format!(
                    "stale pragma: `allow({rule})` suppresses nothing here — the rule no \
                     longer fires at this site; delete the pragma (or drop `{rule}` from \
                     it) so the audit trail only lists live waivers"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan_str;

    fn pragmas_of(src: &str) -> (Vec<Pragma>, Vec<Finding>) {
        let f = scan_str("crates/core/src/x.rs", src);
        let mut findings = Vec::new();
        let p = collect(&f, &mut findings);
        (p, findings)
    }

    #[test]
    fn justified_pragma_parses() {
        let (p, f) = pragmas_of("// conform: allow(R1, R5) -- test scaffolding only\n");
        assert!(f.is_empty());
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].rules, vec!["R1", "R5"]);
        assert!(suppressed(&p, "R5", 1));
        assert!(suppressed(&p, "R5", 2));
        assert!(!suppressed(&p, "R5", 3));
        assert!(!suppressed(&p, "R2", 2));
    }

    #[test]
    fn missing_justification_is_a_finding() {
        let (p, f) = pragmas_of("// conform: allow(R1)\n");
        assert!(p.is_empty());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "P1");
        assert!(f[0].message.contains("justification"));
    }

    #[test]
    fn unknown_rule_is_a_finding() {
        let (p, f) = pragmas_of("// conform: allow(R99) -- because\n");
        assert!(p.is_empty());
        assert!(f[0].message.contains("unknown rule"));
    }

    #[test]
    fn malformed_pragma_is_a_finding() {
        let (p, f) = pragmas_of("// conform: disallow(R1) -- x\n");
        assert!(p.is_empty());
        assert_eq!(f[0].rule, "P1");
    }

    #[test]
    fn doc_comment_pragmas_are_documentation_not_directives() {
        let (p, f) = pragmas_of(
            "//! // conform: allow(R1) -- grammar example in module docs\n\
             /// // conform: allow(R1)\n",
        );
        assert!(p.is_empty(), "{p:?}");
        assert!(f.is_empty(), "a malformed doc example is not a P1: {f:?}");
    }

    #[test]
    fn stale_pragma_rules_are_reported_individually() {
        let (p, _) = pragmas_of("// conform: allow(R1, R5) -- scaffolding\n");
        let mut findings = Vec::new();
        // Only R1 registered a hit; R5 is stale.
        check_stale(
            "crates/core/src/x.rs",
            &p,
            &[(1, "R1".to_string())],
            &mut findings,
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "P2");
        assert!(findings[0].message.contains("allow(R5)"), "{findings:?}");
    }
}
