//! Persistent incremental cache for workspace lint runs.
//!
//! A workspace run is a pure function of (rule set, file table, file
//! contents): nothing else feeds the pipeline. The cache exploits that by
//! storing, at `target/conform-cache.bin`, the complete findings of the
//! last run keyed by a **rule-set fingerprint** (FNV over every rule's
//! metadata plus the cache format version) and a **file table** of
//! `(path, content-hash)` pairs. A warm run whose fingerprint and file
//! table match byte-for-byte returns the cached findings without lexing or
//! parsing a single file — the whole-run fast path behind the ≥5× warm
//! speedup (pinned by a zero-`parse_invocations` test; the wall-clock
//! number is recorded in DESIGN.md §14).
//!
//! On any mismatch the run falls back to the full pipeline (correctness
//! never depends on the cache) and the cache is rewritten atomically
//! (temp file + rename). The hit/miss counts reported by `--timings` use
//! **dependency-closure invalidation**: a changed file invalidates itself
//! plus every file connected to it through the call graph's file-level
//! edges (in both directions — the interprocedural rules R10/R12/R18
//! propagate along calls, so a callee edit can change a caller's findings
//! and vice versa); files outside that closure count as hits. The closure
//! is computed over the edges captured at cache time, which is sound
//! because a file whose own content changed is always a miss regardless of
//! edges.
//!
//! Serialization reuses the workspace's snapshot layer
//! ([`cc_mis_sim::snapshot`]) — same varint-free fixed-width encoding,
//! same magic/version header — so the cache inherits the tested
//! corruption handling: any decode error, unknown rule id, or format
//! drift simply reads as "no cache".

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use cc_mis_sim::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

use crate::diag::Finding;
use crate::fixes::{Edit, Fix, Span};
use crate::{Analysis, Input};

/// Bumped whenever the serialized layout below changes; folded into the
/// rule-set fingerprint so stale layouts read as cold caches.
const CACHE_FORMAT: u32 = 1;

/// The algorithm tag in the snapshot header.
const ALGORITHM: &str = "conform-cache";

/// A loaded cache: the last run's inputs-and-outputs summary.
pub struct Cache {
    /// Rule-set fingerprint the findings were computed under.
    pub fingerprint: u64,
    /// `(path, content hash)` of every input, in sorted path order.
    pub files: Vec<(String, u64)>,
    /// File-level call-graph edges, as indices into `files`.
    pub edges: Vec<(u32, u32)>,
    /// The complete sorted findings of the cached run.
    pub findings: Vec<Finding>,
}

/// FNV-1a over a byte string; the cache's only hash. Stable across runs
/// and platforms, unlike `std`'s keyed `DefaultHasher`.
pub fn content_hash(text: &str) -> u64 {
    fnv(0xcbf2_9ce4_8422_2325, text.as_bytes())
}

fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fingerprint of the rule set currently compiled in: any edit to a rule's
/// id, contract, rationale, or fix recipe — or to the cache layout —
/// invalidates every cached result.
pub fn ruleset_fingerprint() -> u64 {
    let mut h = fnv(0xcbf2_9ce4_8422_2325, &CACHE_FORMAT.to_le_bytes());
    for r in crate::rules::RULES {
        for part in [r.id, r.summary, r.contract, r.rationale, r.fix] {
            h = fnv(h, part.as_bytes());
            h = fnv(h, b"\x1f");
        }
    }
    h
}

impl Cache {
    /// True when the cached run covers exactly the current inputs: same
    /// rule set, same file table, same content hashes.
    pub fn full_hit(&self, hashes: &[(String, u64)]) -> bool {
        self.fingerprint == ruleset_fingerprint() && self.files == hashes
    }

    /// `(hits, misses)` of the current inputs against this cache under
    /// dependency-closure invalidation: changed, added, or
    /// closure-connected files are misses; the rest are hits.
    pub fn damage(&self, hashes: &[(String, u64)]) -> (usize, usize) {
        if self.fingerprint != ruleset_fingerprint() {
            return (0, hashes.len());
        }
        // Seed the closure with every cached file that changed or vanished.
        let mut invalid: BTreeSet<u32> = BTreeSet::new();
        for (i, (path, hash)) in self.files.iter().enumerate() {
            match hashes.iter().find(|(p, _)| p == path) {
                Some((_, h)) if h == hash => {}
                _ => {
                    invalid.insert(i as u32);
                }
            }
        }
        // Expand along file-level call edges, both directions, to fixpoint.
        let mut work: Vec<u32> = invalid.iter().copied().collect();
        while let Some(i) = work.pop() {
            for &(a, b) in &self.edges {
                let next = if a == i {
                    b
                } else if b == i {
                    a
                } else {
                    continue;
                };
                if invalid.insert(next) {
                    work.push(next);
                }
            }
        }
        let mut hits = 0usize;
        for (path, hash) in hashes {
            let cached = self
                .files
                .iter()
                .position(|(p, h)| p == path && h == hash)
                .map(|i| i as u32);
            if cached.is_some_and(|i| !invalid.contains(&i)) {
                hits += 1;
            }
        }
        (hits, hashes.len() - hits)
    }
}

/// Loads the cache at `path`. Any IO error, decode error, header or
/// format mismatch, or unknown rule id reads as "no cache".
pub fn load(path: &Path) -> Option<Cache> {
    let bytes = fs::read(path).ok()?;
    decode(&bytes).ok()
}

fn decode(bytes: &[u8]) -> Result<Cache, SnapshotError> {
    let mut r = SnapshotReader::new(bytes)?;
    if r.algorithm() != ALGORITHM {
        return Err(SnapshotError::Corrupt {
            offset: 0,
            what: "not a conform cache",
        });
    }
    r.expect_u32("cache format", CACHE_FORMAT)?;
    let fingerprint = r.read_u64()?;
    let n_files = r.read_usize()?;
    let mut files = Vec::with_capacity(n_files);
    for _ in 0..n_files {
        let path = r.read_str()?;
        let hash = r.read_u64()?;
        files.push((path, hash));
    }
    let n_edges = r.read_usize()?;
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        let a = r.read_u32()?;
        let b = r.read_u32()?;
        edges.push((a, b));
    }
    let n_findings = r.read_usize()?;
    let mut findings = Vec::with_capacity(n_findings);
    for _ in 0..n_findings {
        findings.push(read_finding(&mut r)?);
    }
    r.finish()?;
    Ok(Cache {
        fingerprint,
        files,
        edges,
        findings,
    })
}

fn read_finding(r: &mut SnapshotReader<'_>) -> Result<Finding, SnapshotError> {
    let path = r.read_str()?;
    let line = r.read_usize()?;
    let rule_name = r.read_str()?;
    // Findings carry `&'static str` rule ids; restore by interning against
    // the compiled rule table. An unknown id means the cache predates a
    // rule rename — treat as corruption.
    let rule = crate::rules::RULES
        .iter()
        .find(|ri| ri.id == rule_name)
        .map(|ri| ri.id)
        .ok_or(SnapshotError::Corrupt {
            offset: 0,
            what: "unknown rule id",
        })?;
    let message = r.read_str()?;
    let mut finding = Finding::new(&path, line, rule, message);
    if r.read_bool()? {
        let title = r.read_str()?;
        let n_edits = r.read_usize()?;
        let mut edits = Vec::with_capacity(n_edits);
        for _ in 0..n_edits {
            let line = r.read_usize()?;
            let start_col = r.read_usize()?;
            let end_col = r.read_usize()?;
            let replacement = r.read_str()?;
            edits.push(Edit {
                span: Span {
                    line,
                    start_col,
                    end_col,
                },
                replacement,
            });
        }
        finding = finding.with_fix(Fix { title, edits });
    }
    Ok(finding)
}

/// Writes the cache for a just-completed run, atomically and best-effort:
/// a cache write failure must never fail the lint.
pub fn store(path: &Path, inputs: &[Input], hashes: &[(String, u64)], analysis: &Analysis) {
    let mut w = SnapshotWriter::new(ALGORITHM);
    w.write_u32(CACHE_FORMAT);
    w.write_u64(ruleset_fingerprint());
    w.write_usize(hashes.len());
    for (p, h) in hashes {
        w.write_str(p);
        w.write_u64(*h);
    }
    // The analysis's edges index the `.rs`-input order; the file table
    // indexes all inputs. Re-map through the `.rs` positions.
    let rs_pos: Vec<u32> = inputs
        .iter()
        .enumerate()
        .filter(|(_, i)| i.path.ends_with(".rs"))
        .map(|(k, _)| k as u32)
        .collect();
    let edges: Vec<(u32, u32)> = analysis
        .edges
        .iter()
        .filter_map(|&(a, b)| Some((*rs_pos.get(a as usize)?, *rs_pos.get(b as usize)?)))
        .collect();
    w.write_usize(edges.len());
    for (a, b) in &edges {
        w.write_u32(*a);
        w.write_u32(*b);
    }
    w.write_usize(analysis.findings.len());
    for f in &analysis.findings {
        write_finding(&mut w, f);
    }
    let bytes = w.finish();
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    let tmp = path.with_extension("bin.tmp");
    if fs::write(&tmp, &bytes).is_ok() {
        let _ = fs::rename(&tmp, path);
    }
}

fn write_finding(w: &mut SnapshotWriter, f: &Finding) {
    w.write_str(&f.path);
    w.write_usize(f.line);
    w.write_str(f.rule);
    w.write_str(&f.message);
    match &f.fix {
        None => w.write_bool(false),
        Some(fix) => {
            w.write_bool(true);
            w.write_str(&fix.title);
            w.write_usize(fix.edits.len());
            for e in &fix.edits {
                w.write_usize(e.span.line);
                w.write_usize(e.span.start_col);
                w.write_usize(e.span.end_col);
                w.write_str(&e.replacement);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::parse_invocations;
    use std::path::PathBuf;

    fn scratch_workspace(tag: &str, files: &[(&str, &str)]) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "cc-mis-conform-cache-{}-{}",
            tag,
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        for (rel, text) in files {
            let p = root.join(rel);
            fs::create_dir_all(p.parent().unwrap()).unwrap();
            fs::write(p, text).unwrap();
        }
        root
    }

    const CLEAN_A: &str = "//! A.\npub fn helper() -> u32 { 1 }\n";
    const CLEAN_B: &str = "//! B.\npub fn driver() -> u32 { helper() }\n";

    #[test]
    fn warm_run_is_byte_identical_and_parses_nothing() {
        let root = scratch_workspace(
            "warm",
            &[
                ("crates/core/src/a.rs", CLEAN_A),
                ("crates/core/src/b.rs", "use std::collections::HashMap;\n"),
            ],
        );
        let cold = crate::check_workspace_cached(&root, None).unwrap();
        assert_eq!(cold.len(), 1, "{cold:?}");
        let before = parse_invocations();
        let mut t = crate::Timings::default();
        let warm = crate::check_workspace_cached(&root, Some(&mut t)).unwrap();
        assert_eq!(
            parse_invocations() - before,
            0,
            "a full cache hit must not parse"
        );
        assert_eq!(warm, cold, "warm findings must be byte-identical");
        assert_eq!(t.cache, Some((2, 0)));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn content_change_invalidates_the_dependency_closure() {
        let root = scratch_workspace(
            "closure",
            &[
                ("crates/core/src/a.rs", CLEAN_A),
                ("crates/core/src/b.rs", CLEAN_B),
                ("crates/core/src/c.rs", "//! C.\npub fn lone() {}\n"),
            ],
        );
        let _ = crate::check_workspace_cached(&root, None).unwrap();
        // Edit the callee: itself and its caller are misses; `c.rs` is not.
        fs::write(
            root.join("crates/core/src/a.rs"),
            "//! A.\npub fn helper() -> u32 { 2 }\n",
        )
        .unwrap();
        let mut t = crate::Timings::default();
        let findings = crate::check_workspace_cached(&root, Some(&mut t)).unwrap();
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(t.cache, Some((1, 2)), "{:?}", t.cache);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_cache_reads_as_cold() {
        let root = scratch_workspace("corrupt", &[("crates/core/src/a.rs", CLEAN_A)]);
        let _ = crate::check_workspace_cached(&root, None).unwrap();
        let cache_path = root.join("target").join("conform-cache.bin");
        let mut bytes = fs::read(&cache_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        bytes.truncate(mid + 1);
        fs::write(&cache_path, &bytes).unwrap();
        assert!(load(&cache_path).is_none());
        let mut t = crate::Timings::default();
        let findings = crate::check_workspace_cached(&root, Some(&mut t)).unwrap();
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(t.cache, Some((0, 1)));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn fingerprint_is_stable_within_a_build() {
        assert_eq!(ruleset_fingerprint(), ruleset_fingerprint());
        assert_ne!(content_hash("a"), content_hash("b"));
    }
}
