// conform-fixture: crates/core/src/demo_snap.rs
//! R22 firing fixture: `save` and `restore` agree with each other — R17 is
//! perfectly happy — but the write order drifted from the committed
//! manifest without a snapshot VERSION bump. This is exactly the co-drift
//! R17 cannot see: the manifest is the third copy, under version control.

pub struct DemoSnap {
    steps: u64,
    done: bool,
}

impl Execution for DemoSnap {
    fn step(&mut self, driver: &mut Driver) -> StepOutcome {
        StepOutcome::Continue
    }

    fn save(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.steps);
        w.write_bool(self.done);
    }

    fn restore(&mut self, r: &mut SnapshotCursor) -> Result<(), SnapshotError> {
        self.steps = r.read_u64()?;
        self.done = r.read_bool()?;
        Ok(())
    }
}
