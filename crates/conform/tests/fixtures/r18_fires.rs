// conform-fixture: crates/sim/src/runtime.rs
//! R18 firing fixture: a `RoundObserver` impl that charges the ledger —
//! attaching it with --trace would perturb the golden ledgers. (Scoped as
//! runtime.rs so the lexical charge rules R9/R10 stay out of the way and
//! R18's own dataflow finding is isolated.)

pub struct ChattyObserver;

impl RoundObserver for ChattyObserver {
    fn on_round_end(&mut self, ledger: &mut RoundLedger, summary: &RoundSummary) {
        ledger.charge_bits(64);
    }
}
