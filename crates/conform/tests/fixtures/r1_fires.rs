// conform-fixture: crates/core/src/fixture_demo.rs
use std::collections::HashMap;

pub fn demo() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    m.len()
}
