// conform-fixture: crates/demo/src/lib.rs
#![forbid(unsafe_code)]
pub fn demo() {}
