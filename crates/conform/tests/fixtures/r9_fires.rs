// conform-fixture: crates/sim/src/fixture_demo.rs
use crate::metrics::RoundLedger;

pub fn demo(ledger: &mut RoundLedger) {
    ledger.charge_round();
    ledger.charge_message(8);
}
