// conform-fixture: crates/core/src/fixture_demo.rs
//! A justified pragma suppresses findings on its own line and the next.

pub fn demo() -> usize {
    // conform: allow(R1) -- fixture demonstrating the justified escape hatch
    let m = std::collections::HashMap::<u32, u32>::new();
    m.len()
}
