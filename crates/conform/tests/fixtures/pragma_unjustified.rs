// conform-fixture: crates/core/src/fixture_demo.rs
// conform: allow(R1)
use std::collections::HashMap;

pub fn demo() -> usize {
    0
}
