// conform-fixture: crates/sim/src/shard.rs
//! R24 clean twin: the same spawn and connect, in the one module sanctioned
//! to own process boundaries — the sharded transport, where every child
//! speaks the frame codec and sits behind checkpoint recovery.

pub fn launch(path: &str) -> std::io::Result<()> {
    let child = std::process::Command::new(path).spawn()?;
    let _stream = std::os::unix::net::UnixStream::connect("/tmp/w.sock")?;
    drop(child);
    Ok(())
}
