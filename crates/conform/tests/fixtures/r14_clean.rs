// conform-fixture: crates/core/src/fixture_demo.rs
use cc_mis_sim::congest::CongestEngine;
use cc_mis_sim::{Execution, SharedObserver, SnapshotError, SnapshotReader, SnapshotWriter, Status};

pub struct DemoExecution<'a> {
    engine: CongestEngine<'a>,
    done: bool,
}

impl Execution for DemoExecution<'_> {
    type Outcome = ();

    fn algorithm_id(&self) -> &'static str {
        "demo"
    }

    fn attach_observer(&mut self, observer: SharedObserver) {
        self.engine.attach_observer(observer);
    }

    fn step(&mut self) -> Status<()> {
        if self.done {
            return Status::Done(());
        }
        let mut round = self.engine.begin_round::<u32>();
        let _ = round.deliver();
        self.done = true;
        Status::Running
    }

    fn save(&self, w: &mut SnapshotWriter) {
        w.write_bool(self.done);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.done = r.read_bool()?;
        Ok(())
    }
}
