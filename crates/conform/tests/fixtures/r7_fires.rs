// conform-fixture: crates/core/src/fixture_demo.rs
use cc_mis_sim::clique::CliqueEngine;

pub fn demo(n: usize) -> CliqueEngine {
    CliqueEngine::strict(n, 32)
}
