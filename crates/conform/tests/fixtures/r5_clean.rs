// conform-fixture: crates/sim/src/fixture_demo.rs
pub fn demo(v: Vec<u32>) -> u32 {
    let a = v.first().expect("caller guarantees v is non-empty");
    let b = v.last().expect("caller guarantees v is non-empty");
    a + b
}
