// conform-fixture: crates/core/src/harness.rs
//! R20 clean fixture: the library routes solving through the driver, and
//! the one direct `.step()` call sits inside a `fn step` — the sanctioned
//! shape for an `Execution` forwarding to an inner execution.

pub fn solve_driven(exec: LubyExecution<'_>) -> MisOutcome {
    drive(exec)
}

impl Execution for Wrapper<'_> {
    type Outcome = MisOutcome;

    fn step(&mut self) -> Status<MisOutcome> {
        self.inner.step()
    }
}
