// conform-fixture: crates/sim/src/demo_par.rs
//! R21 firing fixture: scheduling identity reaches two of the three
//! forbidden sinks — a shard index seeds an RNG stream inside a
//! `par_zip_shards` closure, and a thread-count-derived salt is written
//! into a snapshot. Both would make runs depend on the machine shape
//! rather than on `(seed, graph, params)`.

pub fn shard_rng(outs: &mut [u64], rows: &mut [u64]) {
    par_zip_shards(outs, rows, 4, |shard, chunk, row| {
        let rng = SplitMix64::new(shard as u64);
        let _ = (rng, chunk, row);
    });
}

pub fn checkpoint(w: &mut SnapshotWriter) {
    let threads = thread_count();
    let salt = threads as u64 + 1;
    w.write_u64(salt);
}
