// conform-fixture: crates/core/src/harness.rs
//! R20 firing fixture: a hand-rolled step loop outside the driver and the
//! batch scheduler. The loop advances the execution past step boundaries
//! the scheduler's preemption accounting and the driver's checkpoint
//! cadence never see.

pub fn solve_inline(mut exec: LubyExecution<'_>) -> MisOutcome {
    loop {
        if let Status::Done(outcome) = exec.step() {
            return outcome;
        }
    }
}
