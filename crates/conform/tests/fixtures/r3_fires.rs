// conform-fixture: crates/analysis/src/fixture_demo.rs
use std::time::Instant;

pub fn demo() -> u128 {
    Instant::now().elapsed().as_nanos()
}
