// conform-fixture: crates/core/src/demo_snap.rs
//! R22 clean twin: the same save/restore pair, with a manifest entry that
//! matches the code's write sequence exactly — the pinned format and the
//! implementation agree, so the lint stays silent.

pub struct DemoSnap {
    steps: u64,
    done: bool,
}

impl Execution for DemoSnap {
    fn step(&mut self, driver: &mut Driver) -> StepOutcome {
        StepOutcome::Continue
    }

    fn save(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.steps);
        w.write_bool(self.done);
    }

    fn restore(&mut self, r: &mut SnapshotCursor) -> Result<(), SnapshotError> {
        self.steps = r.read_u64()?;
        self.done = r.read_bool()?;
        Ok(())
    }
}
