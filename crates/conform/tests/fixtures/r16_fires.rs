// conform-fixture: crates/sim/src/pool_demo.rs
//! R16 firing fixture: pooled buffers taken from `RoundBuffers` but never
//! retired — one leaks on the fall-through exit, one past a `?` exit.

pub struct Demo {
    buffers: RoundBuffers,
}

impl Demo {
    /// Takes a dense buffer and lets it drop: the pool never sees it again.
    pub fn leaky_sum(&mut self, n: usize) -> u64 {
        let scratch = self.buffers.take_dense(n * n);
        let mut total = 0u64;
        for v in scratch.iter() {
            total = total.wrapping_add(*v);
        }
        total
    }

    /// Exits through `?` while the sparse buffer is still checked out.
    pub fn early_exit(&mut self, src: &Source) -> Result<u64, ReadError> {
        let staging = self.buffers.take_sparse();
        let head = src.read_head()?;
        self.buffers.retire_sparse(staging);
        Ok(head)
    }
}
