// conform-fixture: crates/sim/src/metrics.rs
pub struct RoundLedger {
    pub rounds: u64,
    pub bits: u64,
}

impl RoundLedger {
    pub fn charge_round(&mut self) {
        self.rounds += 1;
    }
}
