// conform-fixture: crates/sim/src/runtime.rs
use crate::metrics::RoundLedger;

pub struct Core {
    pub bits: u64,
    idxs: Vec<u32>,
}

impl Core {
    /// On a charge path (it bills the ledger), so the overflow audit
    /// applies to everything it does.
    pub fn bill(&mut self, ledger: &mut RoundLedger, extra: u64, key: u64) {
        ledger.charge_message(extra);
        // Truncating cast: silently wraps past 2^32 entries.
        self.idxs[0] = self.idxs.len() as u32;
        // 64-bit operand cast straight into an index: truncates on 32-bit.
        let slot = self.idxs[(key % 7u64) as usize];
        // Bare addition on a ledger-typed counter: overflow wraps silently.
        self.bits = self.bits + u64::from(slot);
    }
}
