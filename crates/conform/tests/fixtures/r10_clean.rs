// conform-fixture: crates/core/src/fixture_demo.rs
use cc_mis_sim::RoundLedger;

/// Analytic replay accounting: the justified pragma sanctions the charge
/// site and stops the caller-side propagation.
pub fn bill_replay(ledger: &mut RoundLedger) {
    // conform: allow(R10) -- analytic replay accounting fixture: charge computed post hoc, no live transport
    ledger.charge_rounds(3);
}

/// Clean: its only path to a charge goes through the justified site.
pub fn driver(ledger: &mut RoundLedger) {
    bill_replay(ledger);
}
