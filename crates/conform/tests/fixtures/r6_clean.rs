// conform-fixture: crates/core/src/fixture_demo.rs
use cc_mis_sim::RoundLedger;

pub fn demo(ledger: &mut RoundLedger) {
    // conform: allow(R10) -- fixture exercises the R6 declared-counter check, not charging paths
    ledger.charge_round();
}
