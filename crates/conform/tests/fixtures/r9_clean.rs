// conform-fixture: crates/sim/src/runtime.rs
use crate::metrics::RoundLedger;

pub fn demo(ledger: &mut RoundLedger) {
    ledger.charge_round();
    ledger.charge_message(8);
}
