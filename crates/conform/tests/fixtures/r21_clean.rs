// conform-fixture: crates/sim/src/demo_par.rs
//! R21 clean twin: scheduling identity steers scheduling only. The thread
//! count sizes work chunks, and the shard closure touches nothing but the
//! slices the helper hands it — no charge, seed, or snapshot write ever
//! sees a machine-shaped value.

pub fn chunk_len(n: usize) -> usize {
    let threads = thread_count();
    n.div_ceil(threads.max(1))
}

pub fn shard_fill(outs: &mut [u64], rows: &mut [u64], base: u64) {
    par_zip_shards(outs, rows, 4, |_shard, chunk, row| {
        for (slot, r) in chunk.iter_mut().zip(row.iter()) {
            *slot = base + *r;
        }
    });
}
