// conform-fixture: crates/sim/src/config.rs
//! R23 clean twin: the same environment read, in the one module sanctioned
//! to hold it. Central accessors keep R21's env-source list auditable.

pub fn verbose() -> bool {
    std::env::var("CC_MIS_VERBOSE").is_ok()
}
