// conform-fixture: crates/core/src/fixture_demo.rs
use std::collections::BTreeMap;

pub fn demo() -> usize {
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    m.len()
}
