// conform-fixture: crates/sim/src/runtime.rs
use crate::bits::idx_u32;
use crate::metrics::RoundLedger;

pub struct Core {
    pub total: u64,
    idxs: Vec<u32>,
}

impl Core {
    /// Same charge path as the firing twin, with width-safe conversions
    /// and checked arithmetic only.
    pub fn bill(&mut self, ledger: &mut RoundLedger, extra: u64) {
        ledger.charge_message(extra);
        self.idxs[0] = idx_u32(self.idxs.len());
        let widened = self.idxs[0] as u64;
        self.total = self
            .total
            .checked_add(widened)
            .expect("total stays within u64 for bounded runs");
    }
}
