// conform-fixture: crates/sim/src/fixture_demo.rs
use crate::metrics::RoundLedger;

pub fn demo(ledger: &mut RoundLedger) {
    ledger.charge_probe();
    ledger.bits += 8;
}
