// conform-fixture: crates/core/src/fixture_demo.rs
use cc_mis_sim::RoundLedger;

pub fn demo(ledger: &mut RoundLedger) {
    ledger.charge_probe();
    ledger.bits += 8;
}
