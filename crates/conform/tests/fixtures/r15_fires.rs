// conform-fixture: crates/sim/src/runtime.rs
/// Hot-path allocation: every round (and every send) pays the allocator.
pub struct Round {
    outbox: Vec<(u32, u32)>,
}

impl Round {
    pub fn send(&mut self, src: u32, dst: u32) {
        let mut scratch = Vec::new();
        scratch.push((src, dst));
        self.outbox.extend(scratch);
    }

    pub fn deliver(&mut self) -> Vec<Vec<u32>> {
        let mut inboxes = Vec::with_capacity(4);
        inboxes.push(self.outbox.iter().map(|&(_, d)| d).collect());
        self.outbox.clear();
        inboxes
    }
}
