// conform-fixture: crates/core/src/fixture_demo.rs
//! P2 firing fixture: a justified allow whose rule no longer fires at the
//! site it covers. The HashMap it once waived was replaced by a Vec, so
//! the pragma is stale audit debt — delete it.

pub fn demo() -> usize {
    // conform: allow(R1) -- kept from before the map was replaced by a Vec
    let v: Vec<u32> = Vec::new();
    v.len()
}
