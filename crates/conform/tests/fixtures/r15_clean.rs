// conform-fixture: crates/sim/src/runtime.rs
/// Pool-fed hot path: steady-state rounds recycle retired buffers, so
/// `send` and `deliver` never touch the allocator.
pub struct Pool {
    outboxes: Vec<Vec<(u32, u32)>>,
}

impl Pool {
    /// Hands out a retired buffer: empty, capacity intact.
    pub fn take_outbox(&mut self) -> Vec<(u32, u32)> {
        self.outboxes.pop().unwrap_or_default()
    }
}

pub struct Round {
    pool: Pool,
    outbox: Vec<(u32, u32)>,
}

impl Round {
    pub fn send(&mut self, src: u32, dst: u32) {
        self.outbox.push((src, dst));
    }

    pub fn deliver(&mut self) {
        let done = core::mem::take(&mut self.outbox);
        self.pool.outboxes.push(done);
    }
}
