// conform-fixture: crates/sim/src/runtime.rs
//! R24 firing fixture: a raw process spawn and socket connection outside
//! the sharded-transport module. A worker child launched here bypasses the
//! checksummed frame codec, and no checkpoint recovery covers its death.

pub fn launch(path: &str) -> std::io::Result<()> {
    let child = std::process::Command::new(path).spawn()?;
    let _stream = std::os::unix::net::UnixStream::connect("/tmp/w.sock")?;
    drop(child);
    Ok(())
}
