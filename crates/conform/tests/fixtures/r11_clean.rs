// conform-fixture: crates/core/src/fixture_demo.rs
use cc_mis_graph::rng::SplitMix64;

pub fn independent_coins(seed: u64, n: u64) -> u64 {
    // One stream, constructed once, threaded mutably through the loop.
    let mut rng = SplitMix64::new(seed);
    let mut acc = 0u64;
    for _ in 0..n {
        acc ^= rng.next_u64();
    }
    acc
}
