// conform-fixture: crates/sim/src/fixture_demo.rs
pub fn demo(v: Vec<u32>) -> u32 {
    let a = v.first().unwrap();
    let b = v.last().expect("ok");
    a + b
}
