// conform-fixture: crates/sim/src/metrics.rs
/// Integer-exact accounting: ratios compare via cross-multiplication.
pub struct Stats {
    pub total: u64,
    pub samples: u64,
}

/// True if the running mean exceeds `num/den`, without ever dividing.
pub fn mean_exceeds(stats: &Stats, num: u64, den: u64) -> bool {
    stats.total * den > num * stats.samples
}
