// conform-fixture: crates/core/src/fixture_demo.rs
use cc_mis_graph::rng::SplitMix64;

pub fn correlated_coins(seed: u64, n: u64, rng: &SplitMix64) -> u64 {
    let mut acc = 0u64;
    for i in 0..n {
        // Re-seeding per iteration correlates draws across iterations.
        let mut fresh = SplitMix64::new(seed ^ i);
        acc ^= fresh.next_u64();
        // Cloning replays the same coins.
        let mut ghost = rng.clone();
        acc ^= ghost.next_u64();
    }
    acc
}
