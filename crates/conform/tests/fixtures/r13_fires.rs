// conform-fixture: crates/sim/src/metrics.rs
/// Float bookkeeping in the accounting module: rounding-order dependent.
pub struct Stats {
    pub mean_bits: f64,
}

pub fn update(stats: &mut Stats, bits: u64, n: u64) {
    stats.mean_bits = bits as f64 / n as f64;
}
