// conform-fixture: crates/demo/src/lib.rs
pub fn demo() {}
