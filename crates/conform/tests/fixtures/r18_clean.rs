// conform-fixture: crates/sim/src/trace_demo.rs
//! R18 clean fixture: an observer that only records what it is shown —
//! no ledger charging, no round mutation, directly or through helpers.

pub struct QuietObserver {
    rounds_seen: u64,
    peak_bits: u64,
}

impl QuietObserver {
    fn note(&mut self, bits: u64) {
        if bits > self.peak_bits {
            self.peak_bits = bits;
        }
    }
}

impl RoundObserver for QuietObserver {
    fn on_round_end(&mut self, summary: &RoundSummary) {
        self.rounds_seen = self
            .rounds_seen
            .checked_add(1)
            .expect("round count fits u64");
        self.note(summary.bits_this_round);
    }
}
