// conform-fixture: crates/core/src/fixture_demo.rs
pub fn demo() {
    std::thread::spawn(|| {}).join().ok();
}
