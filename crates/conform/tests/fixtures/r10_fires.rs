// conform-fixture: crates/core/src/fixture_demo.rs
use cc_mis_sim::RoundLedger;

/// Charges directly — outside RoundCore round execution.
pub fn bill_directly(ledger: &mut RoundLedger) {
    ledger.charge_rounds(3);
}

/// Never charges itself, but reaches the charge through a call — the
/// interprocedural propagation flags the call site too.
pub fn driver(ledger: &mut RoundLedger) {
    bill_directly(ledger);
}
