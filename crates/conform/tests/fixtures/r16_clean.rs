// conform-fixture: crates/sim/src/pool_demo.rs
//! R16 clean fixture: every taken buffer is retired on the same path or
//! moved out of the function (struct-literal escape).

pub struct Demo {
    buffers: RoundBuffers,
}

impl Demo {
    /// Take, use, retire — the balanced shape R16 demands.
    pub fn balanced_sum(&mut self, n: usize) -> u64 {
        let scratch = self.buffers.take_dense(n * n);
        let mut total = 0u64;
        for v in scratch.iter() {
            total = total.wrapping_add(*v);
        }
        self.buffers.retire_dense(scratch);
        total
    }

    /// Retire before the `?` exit can fire, then re-take afterwards.
    pub fn guarded_exit(&mut self, src: &Source) -> Result<u64, ReadError> {
        let staging = self.buffers.take_sparse();
        self.buffers.retire_sparse(staging);
        let head = src.read_head()?;
        Ok(head)
    }

    /// Moving the buffer into a struct literal transfers the obligation to
    /// the new owner (which carries the pool handle for its own retire).
    pub fn escapes(&mut self, pool: ArenaPool) -> Inboxes {
        let (data, offsets) = take_arena_parts(&pool);
        Inboxes {
            data,
            offsets,
            pool,
        }
    }
}
