// conform-fixture: crates/core/src/exec_demo.rs
//! R17 firing fixture: `save` writes a u64 then a bool, but `restore`
//! reads them back in the opposite order — a resumed run would decode the
//! step counter out of the bool byte.

pub struct DemoExec {
    step: u64,
    done: bool,
}

impl Execution for DemoExec {
    fn step(&mut self, driver: &mut Driver) -> StepOutcome {
        StepOutcome::Continue
    }

    fn save(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.step);
        w.write_bool(self.done);
    }

    fn restore(&mut self, r: &mut SnapshotCursor) -> Result<(), SnapshotError> {
        self.done = r.read_bool()?;
        self.step = r.read_u64()?;
        Ok(())
    }
}
