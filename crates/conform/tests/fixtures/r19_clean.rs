// conform-fixture: crates/sim/src/scatter_demo.rs
//! R19 clean fixture: shard closures touch mutable state only through
//! their shard-provided slice arguments; the per-node map closure reads
//! captured slices (allowed) but never index-writes them.

pub fn scatter(chunks: &mut [Chunk]) {
    par_scatter_shards(chunks, |shard, chunk| {
        let width = chunk.len();
        for i in 0..width {
            chunk[i] = shard;
        }
    });
}

pub fn gather(totals: &mut [u64], cuts: &[usize]) {
    par_map_nodes(totals, |node, slot| {
        *slot = cuts[node];
    });
}
