// conform-fixture: crates/core/src/exec_demo.rs
//! R17 clean fixture: the restore sequence mirrors the save sequence —
//! identity field first (checked via `expect_u64`), then the scalar state,
//! then a length-prefixed loop of per-item words.

pub struct DemoExec {
    seed: u64,
    step: u64,
    items: Vec<u64>,
}

impl Execution for DemoExec {
    fn step(&mut self, driver: &mut Driver) -> StepOutcome {
        StepOutcome::Continue
    }

    fn save(&self, w: &mut SnapshotWriter) {
        w.write_u64(self.seed);
        w.write_u64(self.step);
        w.write_usize(self.items.len());
        for v in &self.items {
            w.write_u64(*v);
        }
    }

    fn restore(&mut self, r: &mut SnapshotCursor) -> Result<(), SnapshotError> {
        r.expect_u64("seed", self.seed)?;
        self.step = r.read_u64()?;
        let count = r.read_usize()?;
        for _ in 0..count {
            self.items.push(r.read_u64()?);
        }
        Ok(())
    }
}
