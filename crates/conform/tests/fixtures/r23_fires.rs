// conform-fixture: crates/sim/src/worker.rs
//! R23 firing fixture: an environment read outside the config module. Even
//! a harmless-looking verbosity knob belongs in `crates/sim/src/config.rs`
//! so the full set of ambient inputs stays auditable in one place.

pub fn verbose() -> bool {
    std::env::var("CC_MIS_VERBOSE").is_ok()
}
