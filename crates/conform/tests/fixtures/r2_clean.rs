// conform-fixture: crates/sim/src/par_nodes.rs
pub fn demo() {
    std::thread::scope(|_s| {});
}
