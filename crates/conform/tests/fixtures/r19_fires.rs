// conform-fixture: crates/sim/src/scatter_demo.rs
//! R19 firing fixture: a shard closure reaches around its shard-provided
//! slice arguments and indexes captured state directly — disjointness is
//! now an unchecked claim, and a cut-table bug becomes a data race.

pub fn scatter(cuts: &[usize], totals: &[u64], chunks: &mut [Chunk]) {
    par_scatter_shards(chunks, |shard, chunk| {
        let base = cuts[shard];
        for slot in chunk.iter_mut() {
            *slot = totals[base];
        }
    });
}

pub fn bump(counts: &mut [u64], hits: &[usize]) {
    par_map_nodes(hits, |node, hit| {
        counts[*hit] += node as u64;
    });
}
