// conform-fixture: crates/core/src/fixture_demo.rs
use cc_mis_sim::congest::CongestEngine;

pub fn run_rounds_behind_the_drivers_back(engine: &mut CongestEngine<'_>) {
    let mut round = engine.begin_round::<u32>();
    let _ = round.deliver();
}
