//! Fixture-driven tests: one firing + one clean fixture per rule.
//!
//! Each `.rs` fixture begins with a `conform-fixture:` path override so a
//! file that physically lives under `tests/fixtures/` is scoped as if it
//! sat anywhere in the tree (see `scanner::fixture_override`). The
//! workspace walker skips `fixtures/` directories, so the deliberately
//! violating files here never fail the live-tree scan.

use cc_mis_conform::{check, fixes, Finding, Input};

/// Loads a fixture by file name, keyed to the crate's own manifest dir so
/// the test works from any working directory.
fn fixture(name: &str) -> Input {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name} must be readable: {e}"));
    // Manifest fixtures are fed under the path their header comment names;
    // .rs fixtures carry the override in-band and any placeholder works.
    let effective = match name {
        "r8_fires.toml" | "r8_clean.toml" => "crates/demo/Cargo.toml".to_string(),
        _ => format!("crates/conform/tests/fixtures/{name}"),
    };
    Input {
        path: effective,
        text,
    }
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

/// Asserts the firing fixture reports `rule` and the clean one reports
/// nothing at all.
fn assert_fires_and_clean(rule: &str, fires: &str, clean: &str) {
    let firing = check(&[fixture(fires)]);
    assert!(
        firing.iter().any(|f| f.rule == rule),
        "{fires} should report {rule}, got {firing:?}"
    );
    let clean_findings = check(&[fixture(clean)]);
    assert!(
        clean_findings.is_empty(),
        "{clean} should be clean, got {clean_findings:?}"
    );
}

#[test]
fn r1_hash_collections_in_charged_crates() {
    assert_fires_and_clean("R1", "r1_fires.rs", "r1_clean.rs");
}

#[test]
fn r2_threads_outside_par_nodes() {
    assert_fires_and_clean("R2", "r2_fires.rs", "r2_clean.rs");
}

#[test]
fn r3_ambient_nondeterminism() {
    assert_fires_and_clean("R3", "r3_fires.rs", "r3_clean.rs");
}

#[test]
fn r4_crate_roots_forbid_unsafe() {
    assert_fires_and_clean("R4", "r4_fires.rs", "r4_clean.rs");
    // R4 anchors to line 1 so the diagnostic stays stable as files grow.
    let firing = check(&[fixture("r4_fires.rs")]);
    assert!(firing.iter().any(|f| f.rule == "R4" && f.line == 1));
}

#[test]
fn r5_unwrap_and_short_expect() {
    let firing = check(&[fixture("r5_fires.rs")]);
    let rules = rules_of(&firing);
    // Both the bare unwrap and the non-invariant expect message fire.
    assert_eq!(
        rules.iter().filter(|r| **r == "R5").count(),
        2,
        "{firing:?}"
    );
    let clean = check(&[fixture("r5_clean.rs")]);
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn r6_stale_counters_and_direct_mutation() {
    // R6 needs the (fixture) metrics.rs in the same input set: the declared
    // counter set is extracted from whatever file scopes as metrics.rs.
    let firing = check(&[fixture("r6_metrics.rs"), fixture("r6_fires.rs")]);
    let r6: Vec<&Finding> = firing.iter().filter(|f| f.rule == "R6").collect();
    assert_eq!(r6.len(), 2, "stale call + direct `+=` expected: {firing:?}");
    assert!(
        r6.iter().any(|f| f.message.contains("charge_probe")),
        "{firing:?}"
    );
    let clean = check(&[fixture("r6_metrics.rs"), fixture("r6_clean.rs")]);
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn r6_is_skipped_without_a_metrics_file() {
    // Checking a single file in isolation must not produce false stale-call
    // findings just because metrics.rs was not part of the input set.
    let findings = check(&[fixture("r6_clean.rs")]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn r7_magic_bandwidth_literals() {
    assert_fires_and_clean("R7", "r7_fires.rs", "r7_clean.rs");
}

#[test]
fn r8_registry_dependencies() {
    let firing = check(&[fixture("r8_fires.toml")]);
    let r8: Vec<&Finding> = firing.iter().filter(|f| f.rule == "R8").collect();
    // serde, rand, and the [dev-dependencies.criterion] subsection.
    assert_eq!(r8.len(), 3, "{firing:?}");
    let clean = check(&[fixture("r8_clean.toml")]);
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn r9_sim_charges_outside_the_round_core() {
    assert_fires_and_clean("R9", "r9_fires.rs", "r9_clean.rs");
    // Both charge lines in the firing fixture are reported individually.
    let firing = check(&[fixture("r9_fires.rs")]);
    assert_eq!(
        firing.iter().filter(|f| f.rule == "R9").count(),
        2,
        "{firing:?}"
    );
}

#[test]
fn r10_charges_reachable_outside_the_round_core() {
    assert_fires_and_clean("R10", "r10_fires.rs", "r10_clean.rs");
    // The direct charge AND the caller that reaches it are both reported.
    let firing = check(&[fixture("r10_fires.rs")]);
    let r10: Vec<&Finding> = firing.iter().filter(|f| f.rule == "R10").collect();
    assert_eq!(r10.len(), 2, "{firing:?}");
    assert!(
        r10.iter()
            .any(|f| f.message.contains("`driver` calls `bill_directly`")),
        "propagated caller finding expected: {firing:?}"
    );
}

#[test]
fn r10_justified_charge_stops_caller_propagation() {
    // The clean twin has the same call chain; the allow(R10) on the charge
    // site must also clear `driver`, which only reaches the justified site.
    let findings = check(&[fixture("r10_clean.rs")]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn r11_stream_clone_and_reseeding_in_loop() {
    assert_fires_and_clean("R11", "r11_fires.rs", "r11_clean.rs");
    let firing = check(&[fixture("r11_fires.rs")]);
    let r11: Vec<&Finding> = firing.iter().filter(|f| f.rule == "R11").collect();
    // One for the in-loop constructor, one for the stream clone.
    assert_eq!(r11.len(), 2, "{firing:?}");
    assert!(r11.iter().any(|f| f.message.contains("inside a loop")));
    assert!(r11.iter().any(|f| f.message.contains("clone()")));
}

#[test]
fn r12_overflow_audit_on_charge_paths() {
    assert_fires_and_clean("R12", "r12_fires.rs", "r12_clean.rs");
    let firing = check(&[fixture("r12_fires.rs")]);
    let r12: Vec<&Finding> = firing.iter().filter(|f| f.rule == "R12").collect();
    // Truncating `as u32`, 64-bit `as usize` in an index, bare `+` on a
    // ledger counter — three distinct hazards, three findings.
    assert_eq!(r12.len(), 3, "{firing:?}");
    assert!(r12
        .iter()
        .any(|f| f.message.contains("truncating `as u32`")));
    assert!(r12
        .iter()
        .any(|f| f.message.contains("`as usize` on a 64-bit operand")));
    assert!(r12
        .iter()
        .any(|f| f.message.contains("bare `+` on ledger counter `.bits`")));
}

#[test]
fn r13_floats_in_accounting_modules() {
    assert_fires_and_clean("R13", "r13_fires.rs", "r13_clean.rs");
}

#[test]
fn r14_rounds_outside_runner_modules() {
    assert_fires_and_clean("R14", "r14_fires.rs", "r14_clean.rs");
    // The clean twin opens the same round, but from inside an `impl
    // Execution for` module — the driver-sanctioned place to do it.
    let firing = check(&[fixture("r14_fires.rs")]);
    assert!(
        firing
            .iter()
            .any(|f| f.rule == "R14" && f.message.contains("outside a runner module")),
        "{firing:?}"
    );
}

#[test]
fn r15_allocation_in_round_hot_paths() {
    assert_fires_and_clean("R15", "r15_fires.rs", "r15_clean.rs");
    // Both hot paths are policed, and the message names the offending fn.
    let firing = check(&[fixture("r15_fires.rs")]);
    for method in ["send", "deliver"] {
        assert!(
            firing
                .iter()
                .any(|f| f.rule == "R15" && f.message.contains(&format!("`Round::{method}`"))),
            "R15 should fire inside Round::{method}: {firing:?}"
        );
    }
}

#[test]
fn r16_pool_take_without_retire() {
    assert_fires_and_clean("R16", "r16_fires.rs", "r16_clean.rs");
    let firing = check(&[fixture("r16_fires.rs")]);
    let r16: Vec<&Finding> = firing.iter().filter(|f| f.rule == "R16").collect();
    // One fall-through leak, one early `?` exit with an open obligation.
    assert_eq!(r16.len(), 2, "{firing:?}");
    assert!(
        r16.iter()
            .any(|f| f.message.contains("never retired") && f.message.contains("take_dense")),
        "{firing:?}"
    );
    assert!(
        r16.iter()
            .any(|f| f.message.contains("exits via `?`") && f.message.contains("take_sparse")),
        "{firing:?}"
    );
    // Pool leaks are state corruption: error severity, exit-3 class.
    assert!(r16.iter().all(|f| f.severity() == "error"), "{firing:?}");
}

#[test]
fn r17_save_restore_parity() {
    assert_fires_and_clean("R17", "r17_fires.rs", "r17_clean.rs");
    let firing = check(&[fixture("r17_fires.rs")]);
    let r17: Vec<&Finding> = firing.iter().filter(|f| f.rule == "R17").collect();
    assert_eq!(r17.len(), 1, "first divergence only: {firing:?}");
    assert!(
        r17[0].message.contains("impl Execution for DemoExec")
            && r17[0].message.contains("write_u64")
            && r17[0].message.contains("read_bool"),
        "{firing:?}"
    );
    assert_eq!(r17[0].severity(), "error", "{firing:?}");
}

#[test]
fn r18_observer_purity() {
    assert_fires_and_clean("R18", "r18_fires.rs", "r18_clean.rs");
    let firing = check(&[fixture("r18_fires.rs")]);
    assert!(
        firing.iter().any(|f| f.rule == "R18"
            && f.message.contains("`on_round_end`")
            && f.message.contains("charge_bits")),
        "{firing:?}"
    );
}

#[test]
fn r19_shard_closure_isolation() {
    assert_fires_and_clean("R19", "r19_fires.rs", "r19_clean.rs");
    let firing = check(&[fixture("r19_fires.rs")]);
    let r19: Vec<&Finding> = firing.iter().filter(|f| f.rule == "R19").collect();
    // One aggregated finding per offending closure: the scatter closure
    // (two captured roots) and the map closure (one index-write).
    assert_eq!(r19.len(), 2, "{firing:?}");
    assert!(
        r19.iter().any(|f| f.message.contains("cuts, totals")),
        "offending roots are aggregated and sorted: {firing:?}"
    );
    assert!(
        r19.iter()
            .any(|f| f.message.contains("index-writes captured state")),
        "{firing:?}"
    );
}

#[test]
fn r19_justified_pragma_clears_an_audited_closure() {
    // The live scatter core carries exactly this shape: a justified
    // allow(R19) on the offense line inside the closure.
    let src = "// conform-fixture: crates/sim/src/scatter_demo.rs\n\
               pub fn scatter(cuts: &[usize], chunks: &mut [Chunk]) {\n\
                   par_scatter_shards(chunks, |shard, chunk| {\n\
                       // conform: allow(R19) -- shard ranges are disjoint by construction\n\
                       let base = cuts[shard];\n\
                       chunk.fill(base);\n\
                   });\n\
               }\n";
    let findings = check(&[Input {
        path: "crates/conform/tests/fixtures/inline.rs".to_string(),
        text: src.to_string(),
    }]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn r20_step_calls_stay_in_the_driver_and_scheduler() {
    assert_fires_and_clean("R20", "r20_fires.rs", "r20_clean.rs");
    let firing = check(&[fixture("r20_fires.rs")]);
    assert!(
        firing.iter().any(|f| f.rule == "R20"
            && f.message.contains("`solve_inline`")
            && f.message.contains("BatchScheduler")),
        "{firing:?}"
    );
    // The same code is fine where the step loop legitimately lives: the
    // driver and the batch scheduler own step boundaries.
    for owner in ["crates/sim/src/driver.rs", "crates/sim/src/scheduler.rs"] {
        let src = std::fs::read_to_string(format!(
            "{}/tests/fixtures/r20_fires.rs",
            env!("CARGO_MANIFEST_DIR")
        ))
        .expect("fixture must be readable")
        .replace("crates/core/src/harness.rs", owner);
        let findings = check(&[Input {
            path: "crates/conform/tests/fixtures/inline.rs".to_string(),
            text: src,
        }]);
        assert!(
            !findings.iter().any(|f| f.rule == "R20"),
            "{owner} owns step boundaries: {findings:?}"
        );
    }
}

#[test]
fn r21_scheduling_identity_must_not_reach_charges_seeds_or_snapshots() {
    let firing = check(&[fixture("r21_fires.rs")]);
    let r21: Vec<&Finding> = firing.iter().filter(|f| f.rule == "R21").collect();
    // The shard-index RNG seed and the thread-count snapshot write.
    assert_eq!(r21.len(), 2, "{firing:?}");
    assert!(
        r21.iter()
            .any(|f| f.message.contains("seeds an RNG stream")),
        "{firing:?}"
    );
    assert!(
        r21.iter()
            .any(|f| f.message.contains("writes it into a snapshot")),
        "{firing:?}"
    );
    // Determinism taint voids replay equivalence: error severity.
    assert!(r21.iter().all(|f| f.severity() == "error"), "{firing:?}");
    let clean = check(&[fixture("r21_clean.rs")]);
    assert!(clean.is_empty(), "scheduling-only use is fine: {clean:?}");
}

#[test]
fn r22_write_sequence_drift_without_a_version_bump() {
    // save/restore agree (R17 silent) but the order drifted from the
    // committed manifest: exactly the co-drift only a third copy can see.
    let firing = check(&[
        fixture("r22_fires.rs"),
        fixture("r22_fires_snapshot_manifest.txt"),
    ]);
    let r22: Vec<&Finding> = firing.iter().filter(|f| f.rule == "R22").collect();
    assert_eq!(r22.len(), 1, "{firing:?}");
    assert!(
        r22[0].message.contains("without a snapshot VERSION bump")
            && r22[0].message.contains("DemoSnap"),
        "{firing:?}"
    );
    assert!(!firing.iter().any(|f| f.rule == "R17"), "{firing:?}");
    assert_eq!(r22[0].severity(), "error", "{firing:?}");
    let clean = check(&[
        fixture("r22_clean.rs"),
        fixture("r22_clean_snapshot_manifest.txt"),
    ]);
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn r22_is_skipped_without_a_manifest_input() {
    // Explicit-path runs of single files stay meaningful: no manifest in
    // the input set means the pinning check simply does not run.
    let findings = check(&[fixture("r22_fires.rs")]);
    assert!(!findings.iter().any(|f| f.rule == "R22"), "{findings:?}");
}

#[test]
fn r23_env_reads_belong_in_the_config_module() {
    assert_fires_and_clean("R23", "r23_fires.rs", "r23_clean.rs");
    let firing = check(&[fixture("r23_fires.rs")]);
    assert!(
        firing
            .iter()
            .any(|f| f.rule == "R23" && f.message.contains("crates/sim/src/config.rs")),
        "{firing:?}"
    );
}

#[test]
fn r24_process_and_socket_apis_belong_in_the_shard_module() {
    assert_fires_and_clean("R24", "r24_fires.rs", "r24_clean.rs");
    let firing = check(&[fixture("r24_fires.rs")]);
    let r24: Vec<&Finding> = firing.iter().filter(|f| f.rule == "R24").collect();
    // One finding per boundary line: the spawn and the socket connect.
    assert_eq!(r24.len(), 2, "{firing:?}");
    assert!(
        r24.iter()
            .all(|f| f.message.contains("crates/sim/src/shard.rs")),
        "{firing:?}"
    );
    assert!(r24.iter().all(|f| f.severity() == "warning"), "{firing:?}");
}

#[test]
fn p2_stale_pragma_is_audited() {
    let firing = check(&[fixture("p2_stale.rs")]);
    let p2: Vec<&Finding> = firing.iter().filter(|f| f.rule == "P2").collect();
    assert_eq!(p2.len(), 1, "{firing:?}");
    assert!(p2[0].message.contains("suppresses nothing"), "{firing:?}");
    // A live pragma (pragma_justified.rs) is covered by
    // justified_pragma_suppresses: suppressing a real finding is the
    // clean state, not a P2.
}

#[test]
fn mechanical_fixes_apply_cleanly_and_are_idempotent() {
    // Every fixable rule: applying its fixes silences the rule, and a
    // second --fix pass is a no-op (no oscillating rewrites).
    for (rule, name) in [
        ("R1", "r1_fires.rs"),
        ("R5", "r5_fires.rs"),
        ("R7", "r7_fires.rs"),
        ("R13", "r13_fires.rs"),
    ] {
        let input = fixture(name);
        let findings = check(std::slice::from_ref(&input));
        let edits: Vec<fixes::Edit> = findings
            .iter()
            .filter(|f| f.rule == rule)
            .filter_map(|f| f.fix.as_ref())
            .flat_map(|fix| fix.edits.iter().cloned())
            .collect();
        assert!(!edits.is_empty(), "{name} should carry {rule} fixes");
        let (fixed, applied) = fixes::apply(&input.text, &edits);
        assert_eq!(applied, edits.len(), "every {rule} edit in {name} applies");
        let after = check(&[Input {
            path: input.path.clone(),
            text: fixed.clone(),
        }]);
        assert!(
            !after.iter().any(|f| f.rule == rule),
            "{name} still fires {rule} after --fix: {after:?}"
        );
        // Second pass gathers whatever fixes remain (there should be none
        // for this rule) and must leave the text untouched.
        let edits2: Vec<fixes::Edit> = after
            .iter()
            .filter(|f| f.rule == rule)
            .filter_map(|f| f.fix.as_ref())
            .flat_map(|fix| fix.edits.iter().cloned())
            .collect();
        let (fixed2, applied2) = fixes::apply(&fixed, &edits2);
        assert_eq!(applied2, 0, "{name}: second --fix pass must be a no-op");
        assert_eq!(fixed2, fixed, "{name}: fix engine must be idempotent");
    }
}

/// Maps a rule id to its (firing, clean) fixture input sets. Most rules
/// need exactly one file per side; R6 pulls in the declared-counter file
/// and R22 only runs with a snapshot manifest among the inputs, so those
/// list every file each side needs.
fn fixture_pair(id: &str) -> (Vec<String>, Vec<String>) {
    let one = |f: &str, c: &str| (vec![f.to_string()], vec![c.to_string()]);
    match id {
        "P1" => one("pragma_unjustified.rs", "pragma_justified.rs"),
        // P2's clean side is any live pragma: justified AND still earning
        // its keep by suppressing a real finding.
        "P2" => one("p2_stale.rs", "pragma_justified.rs"),
        "R6" => (
            vec!["r6_metrics.rs".to_string(), "r6_fires.rs".to_string()],
            vec!["r6_clean.rs".to_string()],
        ),
        "R8" => one("r8_fires.toml", "r8_clean.toml"),
        "R22" => (
            vec![
                "r22_fires.rs".to_string(),
                "r22_fires_snapshot_manifest.txt".to_string(),
            ],
            vec![
                "r22_clean.rs".to_string(),
                "r22_clean_snapshot_manifest.txt".to_string(),
            ],
        ),
        other => {
            let stem = other.to_lowercase();
            (
                vec![format!("{stem}_fires.rs")],
                vec![format!("{stem}_clean.rs")],
            )
        }
    }
}

#[test]
fn every_rule_has_a_firing_and_a_clean_fixture() {
    // Meta-test: adding a rule to RULES without fixture coverage fails here,
    // and the firing/clean contract is enforced uniformly for all of them.
    for rule in cc_mis_conform::rules::RULES {
        let (fires, clean) = fixture_pair(rule.id);
        let firing_inputs: Vec<Input> = fires.iter().map(|n| fixture(n)).collect();
        let firing = check(&firing_inputs);
        assert!(
            firing.iter().any(|f| f.rule == rule.id),
            "{fires:?} should report {}: {firing:?}",
            rule.id
        );
        let clean_inputs: Vec<Input> = clean.iter().map(|n| fixture(n)).collect();
        let clean_findings = check(&clean_inputs);
        assert!(
            clean_findings.is_empty(),
            "{clean:?} should be clean, got {clean_findings:?}"
        );
    }
}

#[test]
fn every_rule_has_explain_text_and_the_id_set_is_complete() {
    // --explain prints summary/contract/rationale/fix verbatim; none may be
    // empty, and the rule set itself is pinned so a dropped entry fails
    // loudly rather than silently losing coverage.
    let ids: Vec<&str> = cc_mis_conform::rules::RULES.iter().map(|r| r.id).collect();
    let expected: Vec<String> = (1..=24)
        .map(|n| format!("R{n}"))
        .chain(["P1".to_string(), "P2".to_string()])
        .collect();
    assert_eq!(ids, expected, "rule registry drifted");
    for rule in cc_mis_conform::rules::RULES {
        for (what, text) in [
            ("summary", rule.summary),
            ("contract", rule.contract),
            ("rationale", rule.rationale),
            ("fix", rule.fix),
        ] {
            assert!(
                !text.trim().is_empty(),
                "{} has an empty --explain {what}",
                rule.id
            );
        }
    }
}

#[test]
fn dataflow_sarif_snapshot_is_frozen() {
    // Golden SARIF over the dataflow and taint firing fixtures plus one
    // fix-carrying lexical fixture, checked as one input set. Pins rule
    // metadata, severity levels (R16/R17/R21/R22 error, R18/R19/R23
    // warning), locations, message wording, and the `fixes` property on
    // the R1 results; regenerate from the repo root (full relative paths,
    // so the R22 message's manifest path matches this test's inputs) with
    //   cargo run -p cc-mis-conform -- \
    //     --sarif crates/conform/tests/fixtures/dataflow_golden.sarif \
    //     $(for f in r16 r17 r18 r19 r21 r22 r23 r1; do \
    //         echo crates/conform/tests/fixtures/${f}_fires.rs; done) \
    //     crates/conform/tests/fixtures/r22_fires_snapshot_manifest.txt
    // and review the diff before committing.
    let findings = check(&[
        fixture("r16_fires.rs"),
        fixture("r17_fires.rs"),
        fixture("r18_fires.rs"),
        fixture("r19_fires.rs"),
        fixture("r21_fires.rs"),
        fixture("r22_fires.rs"),
        fixture("r22_fires_snapshot_manifest.txt"),
        fixture("r23_fires.rs"),
        fixture("r1_fires.rs"),
    ]);
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    for id in ["R16", "R17", "R18", "R19", "R21", "R22", "R23", "R1"] {
        assert!(
            rules.contains(&id),
            "mixed run must fire {id}: {findings:?}"
        );
    }
    let sarif = cc_mis_conform::diag::to_sarif(&findings);
    let golden_path = format!(
        "{}/tests/fixtures/dataflow_golden.sarif",
        env!("CARGO_MANIFEST_DIR")
    );
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("golden SARIF must be committed at {golden_path}: {e}"));
    assert_eq!(
        sarif.trim_end(),
        golden.trim_end(),
        "SARIF output drifted from the committed golden snapshot"
    );
}

#[test]
fn json_schema_is_frozen() {
    // Snapshot of the machine-readable schema consumed by CI tooling.
    // Extend the document append-only; editing existing fields is a breaking
    // change and must fail this test.
    let findings = vec![
        Finding::new("crates/sim/src/lib.rs", 3, "R1", "no hash iteration"),
        Finding::new("crates/sim/src/lib.rs", 9, "P1", "unjustified pragma"),
    ];
    let expected = r#"{
  "findings": [
    {
      "path": "crates/sim/src/lib.rs",
      "line": 3,
      "rule": "R1",
      "severity": "warning",
      "message": "no hash iteration"
    },
    {
      "path": "crates/sim/src/lib.rs",
      "line": 9,
      "rule": "P1",
      "severity": "error",
      "message": "unjustified pragma"
    }
  ],
  "count": 2
}"#;
    assert_eq!(
        cc_mis_conform::diag::to_json(&findings).trim_end(),
        expected
    );
}

#[test]
fn sarif_log_carries_rules_and_results() {
    let findings = vec![Finding::new("crates/sim/src/lib.rs", 3, "R12", "cast")];
    let sarif = cc_mis_conform::diag::to_sarif(&findings);
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"name\": \"cc-mis-conform\""), "{sarif}");
    assert!(sarif.contains("\"ruleId\": \"R12\""), "{sarif}");
    assert!(sarif.contains("\"startLine\": 3"), "{sarif}");
    // Every rule's metadata rides along in tool.driver.rules.
    for rule in cc_mis_conform::rules::RULES {
        assert!(
            sarif.contains(&format!("\"id\": \"{}\"", rule.id)),
            "missing metadata for {}",
            rule.id
        );
    }
}

#[test]
fn justified_pragma_suppresses() {
    let findings = check(&[fixture("pragma_justified.rs")]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unjustified_pragma_reports_p1_and_does_not_suppress() {
    let findings = check(&[fixture("pragma_unjustified.rs")]);
    let rules = rules_of(&findings);
    assert!(rules.contains(&"P1"), "{findings:?}");
    assert!(rules.contains(&"R1"), "{findings:?}");
}

#[test]
fn diagnostics_use_the_effective_path() {
    // The rendered diagnostic points at the virtual location the fixture
    // claims, so pragma/grep workflows behave the same as on real files.
    let firing = check(&[fixture("r1_fires.rs")]);
    assert!(
        firing
            .iter()
            .all(|f| f.path == "crates/core/src/fixture_demo.rs"),
        "{firing:?}"
    );
}
