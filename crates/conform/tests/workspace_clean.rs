//! Meta-test: the live workspace is conform-clean, and the CLI's exit
//! codes match its contract (0 clean, 1 findings, 3 any P1, 2 usage).

use std::path::Path;
use std::process::Command;

fn workspace_root() -> &'static Path {
    // crates/conform -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("manifest dir sits two levels below the workspace root")
}

#[test]
fn live_workspace_has_no_findings() {
    let findings =
        cc_mis_conform::check_workspace(workspace_root()).expect("workspace sources are readable");
    assert!(
        findings.is_empty(),
        "the committed tree must be conform-clean:\n{}",
        findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn cli_workspace_scan_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .args(["--workspace", "--root"])
        .arg(workspace_root())
        .output()
        .expect("linter binary runs");
    assert!(
        out.status.success(),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn cli_firing_fixture_exits_nonzero_with_stable_diagnostics() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r1_fires.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg(&fixture)
        .output()
        .expect("linter binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Stable `file:line rule-id message` shape, using the effective path.
    assert!(
        stdout.contains("crates/core/src/fixture_demo.rs:") && stdout.contains(" R1 "),
        "stdout:\n{stdout}"
    );
}

#[test]
fn cli_json_output_is_well_formed() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r5_fires.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg("--json")
        .arg(&fixture)
        .output()
        .expect("linter binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"findings\""), "stdout:\n{stdout}");
    assert!(stdout.contains("\"count\": 2"), "stdout:\n{stdout}");
    assert!(stdout.contains("\"rule\": \"R5\""), "stdout:\n{stdout}");
}

#[test]
fn cli_list_rules_names_every_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg("--list-rules")
        .output()
        .expect("linter binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in cc_mis_conform::rules::RULES {
        assert!(
            stdout.contains(rule.id),
            "missing {} in:\n{stdout}",
            rule.id
        );
    }
}

#[test]
fn cli_explain_prints_contract_rationale_fix() {
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .args(["--explain", "R12"])
        .output()
        .expect("linter binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for section in ["R12", "contract:", "rationale:", "fix:"] {
        assert!(stdout.contains(section), "missing {section} in:\n{stdout}");
    }
}

#[test]
fn cli_explain_unknown_rule_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .args(["--explain", "R99"])
        .output()
        .expect("linter binary runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown rule"), "stderr:\n{stderr}");
}

#[test]
fn cli_sarif_writes_a_log_alongside_normal_output() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r12_fires.rs");
    let sarif_path = std::env::temp_dir().join("cc-mis-conform-test.sarif");
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg("--sarif")
        .arg(&sarif_path)
        .arg(&fixture)
        .output()
        .expect("linter binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let sarif = std::fs::read_to_string(&sarif_path).expect("SARIF log written");
    let _ = std::fs::remove_file(&sarif_path);
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"ruleId\": \"R12\""), "{sarif}");
}

#[test]
fn cli_p1_findings_exit_three() {
    let fixture =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/pragma_unjustified.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg(&fixture)
        .output()
        .expect("linter binary runs");
    // The unjustified pragma is a P1 ("error"), which outranks plain findings.
    assert_eq!(out.status.code(), Some(3), "{out:?}");
}

#[test]
fn cli_r16_pool_leak_exits_three() {
    // R16 findings are error severity (state corruption), same exit class
    // as a broken pragma.
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r16_fires.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg(&fixture)
        .output()
        .expect("linter binary runs");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
}

#[test]
fn cli_timings_render_per_phase_wall_clock() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r1_clean.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg("--timings")
        .arg(&fixture)
        .output()
        .expect("linter binary runs");
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for phase in [
        "timings: 1 file(s)",
        "index",
        "lexical",
        "structural",
        "dataflow",
        "taint",
    ] {
        assert!(stderr.contains(phase), "missing {phase} in:\n{stderr}");
    }
    // Explicit-path runs never touch the persistent cache.
    assert!(!stderr.contains("cache"), "stderr:\n{stderr}");
}

#[test]
fn cli_fix_diff_is_a_dry_run() {
    let dir = std::env::temp_dir().join(format!("conform-fix-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r1_fires.rs");
    let file = dir.join("r1_fires.rs");
    std::fs::copy(&src, &file).expect("fixture copies");
    let before = std::fs::read_to_string(&file).expect("copy is readable");

    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .args(["--fix", "--diff"])
        .arg(&file)
        .output()
        .expect("linter binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("-use std::collections::HashMap;"),
        "{stdout}"
    );
    assert!(
        stdout.contains("+use std::collections::BTreeMap;"),
        "{stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("(dry run)"), "stderr:\n{stderr}");
    // Dry run: the file on disk is untouched.
    let after = std::fs::read_to_string(&file).expect("file still readable");
    assert_eq!(before, after, "--diff must not write");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_fix_applies_in_place_and_is_idempotent() {
    let dir = std::env::temp_dir().join(format!("conform-fix-apply-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r1_fires.rs");
    let file = dir.join("r1_fires.rs");
    std::fs::copy(&src, &file).expect("fixture copies");

    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg("--fix")
        .arg(&file)
        .output()
        .expect("linter binary runs");
    assert_eq!(
        out.status.code(),
        Some(1),
        "pre-fix findings reported: {out:?}"
    );
    let fixed = std::fs::read_to_string(&file).expect("fixed file readable");
    assert!(fixed.contains("BTreeMap"), "{fixed}");
    assert!(!fixed.contains("HashMap"), "{fixed}");

    // The fixed file lints clean, and a second --fix pass is a no-op.
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg("--fix")
        .arg(&file)
        .output()
        .expect("linter binary runs");
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("0 fix(es)"), "stderr:\n{stderr}");
    let again = std::fs::read_to_string(&file).expect("file still readable");
    assert_eq!(fixed, again, "--fix must be idempotent");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_warm_workspace_run_hits_the_cache() {
    // First run primes target/conform-cache.bin; the second is a full hit.
    // The cache file's content is a pure function of the tree, so a
    // concurrent test writing it (atomic temp+rename) cannot spoil this.
    for _ in 0..2 {
        let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
            .args(["--workspace", "--timings", "--root"])
            .arg(workspace_root())
            .output()
            .expect("linter binary runs");
        assert!(out.status.success(), "{out:?}");
    }
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .args(["--workspace", "--timings", "--root"])
        .arg(workspace_root())
        .output()
        .expect("linter binary runs");
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cache") && stderr.contains("0 miss(es)"),
        "warm run should be a full cache hit:\n{stderr}"
    );
}

#[test]
fn cli_update_snapshot_manifest_is_current_and_deterministic() {
    // Regenerating the committed manifest must be a no-op: the pinned
    // save() sequences match the code, byte for byte.
    let manifest = workspace_root().join("crates/conform/snapshot_manifest.txt");
    let before = std::fs::read_to_string(&manifest).expect("manifest is committed");
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .args(["--update-snapshot-manifest", "--root"])
        .arg(workspace_root())
        .output()
        .expect("linter binary runs");
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("snapshot manifest written"),
        "stderr:\n{stderr}"
    );
    let after = std::fs::read_to_string(&manifest).expect("manifest still readable");
    assert_eq!(before, after, "committed snapshot manifest is out of date");
}

#[test]
fn cli_baseline_gates_on_new_findings_only() {
    let dir = std::env::temp_dir().join(format!("conform-baseline-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    let baseline = dir.join("baseline.txt");
    let r5 = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r5_fires.rs");
    let r1 = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r1_fires.rs");

    // First run writes the snapshot and exits clean (warnings baselined).
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg("--baseline")
        .arg(&baseline)
        .arg(&r5)
        .output()
        .expect("linter binary runs");
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("baseline written"), "stderr:\n{stderr}");

    // Same findings again: still clean.
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg("--baseline")
        .arg(&baseline)
        .arg(&r5)
        .output()
        .expect("linter binary runs");
    assert!(out.status.success(), "{out:?}");

    // A finding the baseline has never seen still fails the gate.
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg("--baseline")
        .arg(&baseline)
        .arg(&r1)
        .output()
        .expect("linter binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
