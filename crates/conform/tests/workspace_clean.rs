//! Meta-test: the live workspace is conform-clean, and the CLI's exit
//! codes match its contract (0 clean, 1 findings, 3 any P1, 2 usage).

use std::path::Path;
use std::process::Command;

fn workspace_root() -> &'static Path {
    // crates/conform -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("manifest dir sits two levels below the workspace root")
}

#[test]
fn live_workspace_has_no_findings() {
    let findings =
        cc_mis_conform::check_workspace(workspace_root()).expect("workspace sources are readable");
    assert!(
        findings.is_empty(),
        "the committed tree must be conform-clean:\n{}",
        findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn cli_workspace_scan_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .args(["--workspace", "--root"])
        .arg(workspace_root())
        .output()
        .expect("linter binary runs");
    assert!(
        out.status.success(),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn cli_firing_fixture_exits_nonzero_with_stable_diagnostics() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r1_fires.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg(&fixture)
        .output()
        .expect("linter binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Stable `file:line rule-id message` shape, using the effective path.
    assert!(
        stdout.contains("crates/core/src/fixture_demo.rs:") && stdout.contains(" R1 "),
        "stdout:\n{stdout}"
    );
}

#[test]
fn cli_json_output_is_well_formed() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r5_fires.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg("--json")
        .arg(&fixture)
        .output()
        .expect("linter binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"findings\""), "stdout:\n{stdout}");
    assert!(stdout.contains("\"count\": 2"), "stdout:\n{stdout}");
    assert!(stdout.contains("\"rule\": \"R5\""), "stdout:\n{stdout}");
}

#[test]
fn cli_list_rules_names_every_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg("--list-rules")
        .output()
        .expect("linter binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in cc_mis_conform::rules::RULES {
        assert!(
            stdout.contains(rule.id),
            "missing {} in:\n{stdout}",
            rule.id
        );
    }
}

#[test]
fn cli_explain_prints_contract_rationale_fix() {
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .args(["--explain", "R12"])
        .output()
        .expect("linter binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for section in ["R12", "contract:", "rationale:", "fix:"] {
        assert!(stdout.contains(section), "missing {section} in:\n{stdout}");
    }
}

#[test]
fn cli_explain_unknown_rule_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .args(["--explain", "R99"])
        .output()
        .expect("linter binary runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown rule"), "stderr:\n{stderr}");
}

#[test]
fn cli_sarif_writes_a_log_alongside_normal_output() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r12_fires.rs");
    let sarif_path = std::env::temp_dir().join("cc-mis-conform-test.sarif");
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg("--sarif")
        .arg(&sarif_path)
        .arg(&fixture)
        .output()
        .expect("linter binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let sarif = std::fs::read_to_string(&sarif_path).expect("SARIF log written");
    let _ = std::fs::remove_file(&sarif_path);
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"ruleId\": \"R12\""), "{sarif}");
}

#[test]
fn cli_p1_findings_exit_three() {
    let fixture =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/pragma_unjustified.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg(&fixture)
        .output()
        .expect("linter binary runs");
    // The unjustified pragma is a P1 ("error"), which outranks plain findings.
    assert_eq!(out.status.code(), Some(3), "{out:?}");
}

#[test]
fn cli_r16_pool_leak_exits_three() {
    // R16 findings are error severity (state corruption), same exit class
    // as a broken pragma.
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r16_fires.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg(&fixture)
        .output()
        .expect("linter binary runs");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
}

#[test]
fn cli_timings_render_per_phase_wall_clock() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r1_clean.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg("--timings")
        .arg(&fixture)
        .output()
        .expect("linter binary runs");
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for phase in [
        "timings: 1 file(s)",
        "index",
        "lexical",
        "structural",
        "dataflow",
    ] {
        assert!(stderr.contains(phase), "missing {phase} in:\n{stderr}");
    }
}

#[test]
fn cli_baseline_gates_on_new_findings_only() {
    let dir = std::env::temp_dir().join(format!("conform-baseline-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    let baseline = dir.join("baseline.txt");
    let r5 = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r5_fires.rs");
    let r1 = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/r1_fires.rs");

    // First run writes the snapshot and exits clean (warnings baselined).
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg("--baseline")
        .arg(&baseline)
        .arg(&r5)
        .output()
        .expect("linter binary runs");
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("baseline written"), "stderr:\n{stderr}");

    // Same findings again: still clean.
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg("--baseline")
        .arg(&baseline)
        .arg(&r5)
        .output()
        .expect("linter binary runs");
    assert!(out.status.success(), "{out:?}");

    // A finding the baseline has never seen still fails the gate.
    let out = Command::new(env!("CARGO_BIN_EXE_cc-mis-conform"))
        .arg("--baseline")
        .arg(&baseline)
        .arg(&r1)
        .output()
        .expect("linter binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
