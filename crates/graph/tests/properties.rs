//! Property-style tests of the graph substrate.
//!
//! Each test sweeps a deterministic, seeded family of cases (driven by
//! `cc_mis_graph::rng::SplitMix64`) instead of a property-testing crate:
//! the workspace must build offline with zero registry dependencies, and
//! reproducibility matters more here than shrinking. Failure messages
//! include the case seed so any counterexample replays exactly.

use cc_mis_graph::rng::SplitMix64;
use cc_mis_graph::{checks, generators, ops, Graph, GraphBuilder, NodeId};
use std::collections::BTreeSet;

const CASES: u64 = 48;

/// Deterministic `G(n, p)` instance for case index `case`.
fn gnp_case(case: u64) -> (Graph, u64) {
    let mut r = SplitMix64::new(0x9e3779b97f4a7c15u64.wrapping_mul(case + 1));
    let n = 1 + (r.next_below(59) as usize);
    let p = 0.5 * r.next_f64();
    let seed = r.next_below(500);
    (generators::erdos_renyi_gnp(n, p, seed), seed)
}

#[test]
fn generators_are_deterministic() {
    for case in 0..CASES {
        let mut r = SplitMix64::new(case);
        let n = 1 + r.next_below(59) as usize;
        let p = 0.5 * r.next_f64();
        let seed = r.next_below(100);
        let a = generators::erdos_renyi_gnp(n, p, seed);
        let b = generators::erdos_renyi_gnp(n, p, seed);
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn builder_rejects_exactly_self_loops_and_range() {
    for case in 0..CASES {
        let mut r = SplitMix64::new(1000 + case);
        let n = 2 + r.next_below(38) as usize;
        let mut b = GraphBuilder::new(n);
        for _ in 0..r.next_below(80) {
            let u = r.next_below(n as u64) as u32;
            let v = r.next_below(n as u64) as u32;
            let res = b.add_edge(NodeId::new(u), NodeId::new(v));
            assert_eq!(res.is_err(), u == v, "case {case}: u={u} v={v}");
        }
        let g = b.build();
        // Handshake: sum of degrees = 2m.
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert_eq!(degree_sum, 2 * g.edge_count(), "case {case}");
    }
}

#[test]
fn adjacency_is_symmetric_and_sorted() {
    for case in 0..CASES {
        let (g, _) = gnp_case(case);
        for v in g.nodes() {
            let nbrs = g.neighbors(v);
            assert!(
                nbrs.windows(2).all(|w| w[0] < w[1]),
                "case {case}: unsorted at {v}"
            );
            for &u in nbrs {
                assert!(g.has_edge(u, v), "case {case}: asymmetric {u} {v}");
                assert_ne!(u, v, "case {case}: self-loop at {v}");
            }
        }
    }
}

#[test]
fn gnm_has_exact_edge_count() {
    for case in 0..CASES {
        let mut r = SplitMix64::new(2000 + case);
        let n = 2 + r.next_below(38) as usize;
        let max = n * (n - 1) / 2;
        let m = r.next_below(max as u64 + 1) as usize;
        let g = generators::erdos_renyi_gnm(n, m, case);
        assert_eq!(g.edge_count(), m, "case {case}: n={n} m={m}");
    }
}

#[test]
fn power_is_monotone_in_k() {
    for case in 0..CASES {
        let (g, _) = gnp_case(case);
        let k = 1 + (case as usize % 3);
        let gk = ops::power(&g, k);
        let gk1 = ops::power(&g, k + 1);
        let e_k: BTreeSet<_> = gk.edges().collect();
        let e_k1: BTreeSet<_> = gk1.edges().collect();
        assert!(e_k.is_subset(&e_k1), "case {case}");
        // G^1 = G.
        assert_eq!(ops::power(&g, 1), g, "case {case}");
    }
}

#[test]
fn square_matches_power_two() {
    for case in 0..CASES {
        let (g, _) = gnp_case(case);
        assert_eq!(ops::square(&g), ops::power(&g, 2), "case {case}");
    }
}

#[test]
fn induced_subgraph_is_a_subgraph() {
    for case in 0..CASES {
        let (g, _) = gnp_case(case);
        let mask_seed = case % 100;
        // Select ~half the vertices deterministically from mask_seed.
        let verts: Vec<NodeId> = g
            .nodes()
            .filter(|v| {
                (v.raw() as u64)
                    .wrapping_mul(mask_seed + 1)
                    .is_multiple_of(2)
            })
            .collect();
        let (sub, back) = ops::induced_subgraph(&g, &verts);
        assert_eq!(sub.node_count(), verts.len(), "case {case}");
        for (u, v) in sub.edges() {
            assert!(g.has_edge(back[u.index()], back[v.index()]), "case {case}");
        }
        // Every original edge between selected vertices survives.
        let selected: BTreeSet<NodeId> = verts.iter().copied().collect();
        let surviving = g
            .edges()
            .filter(|(u, v)| selected.contains(u) && selected.contains(v))
            .count();
        assert_eq!(sub.edge_count(), surviving, "case {case}");
    }
}

#[test]
fn line_graph_counts() {
    for case in 0..CASES {
        let (g, _) = gnp_case(case);
        let (lg, edge_of) = ops::line_graph(&g);
        assert_eq!(lg.node_count(), g.edge_count(), "case {case}");
        assert_eq!(edge_of.len(), g.edge_count(), "case {case}");
        // |E(L(G))| = Σ_v C(deg v, 2) for simple graphs.
        let expected: usize = g
            .nodes()
            .map(|v| {
                let d = g.degree(v);
                d * d.saturating_sub(1) / 2
            })
            .sum();
        assert_eq!(lg.edge_count(), expected, "case {case}");
    }
}

#[test]
fn components_partition_the_graph() {
    for case in 0..CASES {
        let (g, _) = gnp_case(case);
        let (ids, count) = ops::connected_components(&g);
        assert_eq!(ids.len(), g.node_count(), "case {case}");
        assert!(ids.iter().all(|&c| c < count), "case {case}");
        // Endpoints of each edge share a component.
        for (u, v) in g.edges() {
            assert_eq!(ids[u.index()], ids[v.index()], "case {case}");
        }
        let sizes = ops::component_sizes(&g);
        assert_eq!(sizes.iter().sum::<usize>(), g.node_count(), "case {case}");
        assert!(
            sizes.windows(2).all(|w| w[0] >= w[1]),
            "case {case}: not sorted desc"
        );
    }
}

#[test]
fn coloring_product_structure_is_sound() {
    for case in 0..CASES {
        let (g, _) = gnp_case(case);
        let c = 1 + (case as usize % 3);
        let prod = ops::coloring_product(&g, c);
        assert_eq!(prod.node_count(), g.node_count() * c, "case {case}");
        let expected_edges = g.node_count() * c * (c - 1) / 2 + g.edge_count() * c;
        assert_eq!(prod.edge_count(), expected_edges, "case {case}");
        // decode ∘ encode is the identity.
        for id in prod.nodes() {
            let (v, i) = ops::decode_product(id, c);
            assert_eq!(v.index() * c + i, id.index(), "case {case}");
        }
    }
}

#[test]
fn greedy_style_selection_passes_checks() {
    for case in 0..CASES {
        let (g, _) = gnp_case(case);
        // A lowest-id greedy MIS computed inline must satisfy all three
        // checker predicates (cross-validating the checkers themselves).
        let n = g.node_count();
        let mut blocked = vec![false; n];
        let mut mis = Vec::new();
        for v in g.nodes() {
            if !blocked[v.index()] {
                mis.push(v);
                blocked[v.index()] = true;
                for &u in g.neighbors(v) {
                    blocked[u.index()] = true;
                }
            }
        }
        assert!(checks::is_independent_set(&g, &mis), "case {case}");
        assert!(checks::is_dominating_set(&g, &mis), "case {case}");
        assert!(checks::is_maximal_independent_set(&g, &mis), "case {case}");
        assert!(checks::is_k_ruling_set(&g, &mis, 1), "case {case}");
    }
}

#[test]
fn filter_vertices_drops_only_touching_edges() {
    for case in 0..CASES {
        let (g, _) = gnp_case(case);
        let f = ops::filter_vertices(&g, |v| v.raw() % 2 == 0);
        assert_eq!(f.node_count(), g.node_count(), "case {case}");
        for (u, v) in f.edges() {
            assert!(u.raw() % 2 == 0 && v.raw() % 2 == 0, "case {case}");
            assert!(g.has_edge(u, v), "case {case}");
        }
    }
}

#[test]
fn regular_generator_is_regular() {
    let configs = [(10, 3), (20, 4), (15, 2), (30, 5), (12, 6)];
    for case in 0..20u64 {
        let (n, d) = configs[case as usize % configs.len()];
        // ensure even product
        let d = if n * d % 2 == 1 { d - 1 } else { d };
        for seed in 0..5 {
            let g = generators::random_regular(n, d, case * 7 + seed);
            assert!(
                g.nodes().all(|v| g.degree(v) == d),
                "case {case} seed {seed}"
            );
        }
    }
}
