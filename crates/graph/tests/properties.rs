//! Property-based tests of the graph substrate.

use cc_mis_graph::{checks, generators, ops, Graph, GraphBuilder, NodeId};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Arbitrary `G(n, p)` instance.
fn arb_gnp() -> impl Strategy<Value = Graph> {
    (1usize..60, 0.0f64..0.5, 0u64..500)
        .prop_map(|(n, p, seed)| generators::erdos_renyi_gnp(n, p, seed))
}

/// Arbitrary edge list over `n` nodes.
fn arb_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..80);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generators_are_deterministic(n in 1usize..60, p in 0.0f64..0.5, seed in 0u64..100) {
        let a = generators::erdos_renyi_gnp(n, p, seed);
        let b = generators::erdos_renyi_gnp(n, p, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn builder_rejects_exactly_self_loops_and_range((n, edges) in arb_edges()) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            let r = b.add_edge(NodeId::new(u), NodeId::new(v));
            prop_assert_eq!(r.is_err(), u == v, "u={} v={}", u, v);
        }
        let g = b.build();
        // Handshake: sum of degrees = 2m.
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn adjacency_is_symmetric_and_sorted(g in arb_gnp()) {
        for v in g.nodes() {
            let nbrs = g.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "unsorted at {v}");
            for &u in nbrs {
                prop_assert!(g.has_edge(u, v), "asymmetric {u} {v}");
                prop_assert_ne!(u, v, "self-loop at {}", v);
            }
        }
    }

    #[test]
    fn gnm_has_exact_edge_count(n in 2usize..40, seed in 0u64..100) {
        let max = n * (n - 1) / 2;
        let m = seed as usize % (max + 1);
        let g = generators::erdos_renyi_gnm(n, m, seed);
        prop_assert_eq!(g.edge_count(), m);
    }

    #[test]
    fn power_is_monotone_in_k(g in arb_gnp(), k in 1usize..4) {
        let gk = ops::power(&g, k);
        let gk1 = ops::power(&g, k + 1);
        let e_k: BTreeSet<_> = gk.edges().collect();
        let e_k1: BTreeSet<_> = gk1.edges().collect();
        prop_assert!(e_k.is_subset(&e_k1));
        // G^1 = G.
        prop_assert_eq!(ops::power(&g, 1), g);
    }

    #[test]
    fn square_matches_power_two(g in arb_gnp()) {
        prop_assert_eq!(ops::square(&g), ops::power(&g, 2));
    }

    #[test]
    fn induced_subgraph_is_a_subgraph(g in arb_gnp(), mask_seed in 0u64..100) {
        // Select ~half the vertices deterministically from mask_seed.
        let verts: Vec<NodeId> = g
            .nodes()
            .filter(|v| (v.raw() as u64).wrapping_mul(mask_seed + 1).is_multiple_of(2))
            .collect();
        let (sub, back) = ops::induced_subgraph(&g, &verts);
        prop_assert_eq!(sub.node_count(), verts.len());
        for (u, v) in sub.edges() {
            prop_assert!(g.has_edge(back[u.index()], back[v.index()]));
        }
        // Every original edge between selected vertices survives.
        let selected: BTreeSet<NodeId> = verts.iter().copied().collect();
        let surviving = g
            .edges()
            .filter(|(u, v)| selected.contains(u) && selected.contains(v))
            .count();
        prop_assert_eq!(sub.edge_count(), surviving);
    }

    #[test]
    fn line_graph_counts(g in arb_gnp()) {
        let (lg, edge_of) = ops::line_graph(&g);
        prop_assert_eq!(lg.node_count(), g.edge_count());
        prop_assert_eq!(edge_of.len(), g.edge_count());
        // |E(L(G))| = Σ_v C(deg v, 2) for simple graphs.
        let expected: usize = g.nodes().map(|v| {
            let d = g.degree(v);
            d * d.saturating_sub(1) / 2
        }).sum();
        prop_assert_eq!(lg.edge_count(), expected);
    }

    #[test]
    fn components_partition_the_graph(g in arb_gnp()) {
        let (ids, count) = ops::connected_components(&g);
        prop_assert_eq!(ids.len(), g.node_count());
        prop_assert!(ids.iter().all(|&c| c < count));
        // Endpoints of each edge share a component.
        for (u, v) in g.edges() {
            prop_assert_eq!(ids[u.index()], ids[v.index()]);
        }
        let sizes = ops::component_sizes(&g);
        prop_assert_eq!(sizes.iter().sum::<usize>(), g.node_count());
        prop_assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "not sorted desc");
    }

    #[test]
    fn coloring_product_structure_is_sound(g in arb_gnp(), c in 1usize..4) {
        let prod = ops::coloring_product(&g, c);
        prop_assert_eq!(prod.node_count(), g.node_count() * c);
        let expected_edges = g.node_count() * c * (c - 1) / 2 + g.edge_count() * c;
        prop_assert_eq!(prod.edge_count(), expected_edges);
        // decode ∘ encode is the identity.
        for id in prod.nodes() {
            let (v, i) = ops::decode_product(id, c);
            prop_assert_eq!(v.index() * c + i, id.index());
        }
    }

    #[test]
    fn greedy_style_selection_passes_checks(g in arb_gnp()) {
        // A lowest-id greedy MIS computed inline must satisfy all three
        // checker predicates (cross-validating the checkers themselves).
        let n = g.node_count();
        let mut blocked = vec![false; n];
        let mut mis = Vec::new();
        for v in g.nodes() {
            if !blocked[v.index()] {
                mis.push(v);
                blocked[v.index()] = true;
                for &u in g.neighbors(v) {
                    blocked[u.index()] = true;
                }
            }
        }
        prop_assert!(checks::is_independent_set(&g, &mis));
        prop_assert!(checks::is_dominating_set(&g, &mis));
        prop_assert!(checks::is_maximal_independent_set(&g, &mis));
        prop_assert!(checks::is_k_ruling_set(&g, &mis, 1));
    }

    #[test]
    fn filter_vertices_drops_only_touching_edges(g in arb_gnp()) {
        let f = ops::filter_vertices(&g, |v| v.raw() % 2 == 0);
        prop_assert_eq!(f.node_count(), g.node_count());
        for (u, v) in f.edges() {
            prop_assert!(u.raw() % 2 == 0 && v.raw() % 2 == 0);
            prop_assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn regular_generator_is_regular(idx in 0usize..20, seed in 0u64..50) {
        let configs = [(10, 3), (20, 4), (15, 2), (30, 5), (12, 6)];
        let (n, d) = configs[idx % configs.len()];
        // ensure even product
        let d = if n * d % 2 == 1 { d - 1 } else { d };
        let g = generators::random_regular(n, d, seed);
        prop_assert!(g.nodes().all(|v| g.degree(v) == d));
    }
}
