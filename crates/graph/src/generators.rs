//! Seeded, deterministic graph generators.
//!
//! Every generator takes an explicit `seed` (where randomness is involved)
//! and is fully deterministic given its arguments, so experiments are
//! reproducible across machines. The families here are the workloads of the
//! experiment index in `DESIGN.md`:
//!
//! * [`erdos_renyi_gnp`] / [`erdos_renyi_gnm`] — the default random family;
//!   sweeping `p` sweeps the max degree `Δ`.
//! * [`random_regular`] — uniform degree, isolates the `Δ` dependence.
//! * [`barabasi_albert`] and [`chung_lu_power_law`] — heavy-tailed degrees;
//!   exercise the super-heavy machinery of §2.3.
//! * [`disjoint_cliques`] — the classic hard instance where `Δ` is large but
//!   the MIS is tiny (one vertex per clique).
//! * [`kronecker`] — GAPBS-style R-MAT/Kronecker graphs; the synthetic
//!   scale-free family for large batch workloads (`2^16+` nodes).
//! * structured families ([`cycle`], [`path`], [`complete`], [`star`],
//!   [`grid`], [`balanced_tree`], [`caterpillar`], [`complete_bipartite`],
//!   [`planted_independent_set`]) for unit tests and edge cases.

use crate::rng::{mix3, SplitMix64};
use crate::{Graph, GraphBuilder, NodeId};

/// Stream tag separating Kronecker edge draws from every other consumer of
/// the counter-based [`mix3`] domain (ASCII `"KRON"`).
const KRONECKER_STREAM: u64 = 0x4B52_4F4E;

/// Kronecker (R-MAT) graph in the style of the GAP Benchmark Suite /
/// Graph500: `n = 2^scale` vertices and about `edge_factor · n` undirected
/// edges (self-loops dropped, duplicates merged), drawn with the standard
/// quadrant probabilities `A = 0.57`, `B = 0.19`, `C = 0.19`, `D = 0.05`.
///
/// Each candidate edge `e` is drawn from its own counter-based stream
/// `SplitMix64::new(mix3(seed, e, KRON))`, so the edge list is a pure
/// function of `(scale, edge_factor, seed)` — independent of evaluation
/// order, like the simulators' per-`(node, round)` coins. Vertex labels are
/// *not* scrambled (unlike GAPBS's optional permutation): low-numbered
/// vertices are the heavy hitters, which the heavy-tail tests rely on.
///
/// # Panics
///
/// Panics if `scale >= 32` (node ids are `u32`).
///
/// # Example
///
/// ```
/// use cc_mis_graph::generators::kronecker;
/// let g = kronecker(8, 4, 42);
/// assert_eq!(g.node_count(), 256);
/// assert_eq!(g, kronecker(8, 4, 42)); // deterministic per (scale, ef, seed)
/// ```
pub fn kronecker(scale: u32, edge_factor: usize, seed: u64) -> Graph {
    assert!(scale < 32, "scale = {scale} must be < 32 (u32 node ids)");
    const A: f64 = 0.57;
    const B: f64 = 0.19;
    const C: f64 = 0.19;
    let n = 1usize << scale;
    let draws = (n as u64) * (edge_factor as u64);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(edge_factor * n);
    for e in 0..draws {
        // conform: allow(R11) -- counter-based keying: mix3(seed, e, stream) derives an independent substream per candidate edge, the sanctioned alternative to re-seeding
        let mut rng = SplitMix64::new(mix3(seed, e, KRONECKER_STREAM));
        let (mut src, mut dst) = (0u32, 0u32);
        // One quadrant choice per bit of the address space, most significant
        // bit first (the recursive R-MAT descent, unrolled).
        for _ in 0..scale {
            let r = rng.next_f64();
            src <<= 1;
            dst <<= 1;
            if r < A + B {
                if r >= A {
                    dst |= 1;
                }
            } else {
                src |= 1;
                if r >= A + B + C {
                    dst |= 1;
                }
            }
        }
        if src != dst {
            edges.push(order_pair((src, dst)));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Graph::from_sorted_unique_edges(n, &edges)
}

/// Erdős–Rényi `G(n, p)`: each of the `n(n-1)/2` possible edges appears
/// independently with probability `p`.
///
/// Uses geometric skipping, so generation costs `O(n + m)` rather than
/// `O(n^2)` for small `p`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or is NaN.
///
/// # Example
///
/// ```
/// use cc_mis_graph::generators::erdos_renyi_gnp;
/// let g = erdos_renyi_gnp(100, 0.1, 7);
/// assert_eq!(g.node_count(), 100);
/// // Expected m = p * n(n-1)/2 = 495; very loose bounds:
/// assert!(g.edge_count() > 200 && g.edge_count() < 900);
/// ```
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    if n == 0 || p == 0.0 {
        return Graph::empty(n);
    }
    if p >= 1.0 {
        return complete(n);
    }
    let mut rng = SplitMix64::new(seed);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Iterate over the linearized strictly-upper-triangular index space,
    // jumping ahead by geometric gaps.
    let total: u64 = (n as u64) * (n as u64 - 1) / 2;
    let log_q = (1.0 - p).ln();
    let mut idx: u64 = 0;
    loop {
        // Geometric(p) gap: floor(ln(U) / ln(1-p)).
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        let gap = (u.ln() / log_q).floor() as u64;
        idx = match idx.checked_add(gap) {
            Some(i) => i,
            None => break,
        };
        if idx >= total {
            break;
        }
        edges.push(unrank_edge(idx, n as u64));
        idx += 1;
    }
    Graph::from_sorted_unique_edges(n, &edges)
}

/// Maps a linear index in `[0, n(n-1)/2)` to the corresponding edge `(u, v)`
/// with `u < v`, in row-major upper-triangular order.
fn unrank_edge(idx: u64, n: u64) -> (u32, u32) {
    // Row u owns (n-1-u) entries. Solve for the row via the quadratic
    // formula, then fix up any off-by-one from floating point.
    let total = n * (n - 1) / 2;
    debug_assert!(idx < total);
    let rev = total - 1 - idx; // index from the end
                               // rev falls in the triangle of size k(k+1)/2 for row n-2-...; invert:
    let k = (((8.0 * rev as f64 + 1.0).sqrt() - 1.0) / 2.0).floor() as u64;
    let mut k = k.min(n - 2);
    while k < n - 2 && (k + 1) * (k + 2) / 2 <= rev {
        k += 1;
    }
    while k * (k + 1) / 2 > rev {
        k -= 1;
    }
    let u = n - 2 - k;
    let offset = rev - k * (k + 1) / 2; // position from the row's end
    let v = n - 1 - offset;
    debug_assert!(u < v && v < n);
    (u as u32, v as u32)
}

/// Erdős–Rényi `G(n, m)`: a graph drawn uniformly among those with exactly
/// `m` edges.
///
/// # Panics
///
/// Panics if `m` exceeds `n(n-1)/2`.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Graph {
    let total = n as u64 * (n as u64).saturating_sub(1) / 2;
    assert!(
        (m as u64) <= total,
        "m = {m} exceeds the maximum {total} edges on {n} vertices"
    );
    let mut rng = SplitMix64::new(seed);
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < m {
        chosen.insert(rng.next_below(total));
    }
    let edges: Vec<(u32, u32)> = chosen
        .into_iter()
        .map(|i| unrank_edge(i, n as u64))
        .collect();
    Graph::from_sorted_unique_edges(n, &edges)
}

/// A random `d`-regular graph via the configuration model with restarts.
///
/// Each vertex gets `d` stubs; stubs are paired uniformly at random. Pairings
/// that create self-loops or multi-edges are retried (whole-pairing restart,
/// up to an internal attempt limit, then a local-repair pass). For `d ≪ n`
/// the restart succeeds quickly with high probability.
///
/// # Panics
///
/// Panics if `n * d` is odd or `d >= n`.
///
/// # Example
///
/// ```
/// use cc_mis_graph::generators::random_regular;
/// let g = random_regular(50, 4, 3);
/// assert!(g.nodes().all(|v| g.degree(v) == 4));
/// ```
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!((n * d).is_multiple_of(2), "n*d must be even (n={n}, d={d})");
    assert!(d < n, "degree d={d} must be < n={n}");
    if d == 0 {
        return Graph::empty(n);
    }
    let mut rng = SplitMix64::new(seed);
    // A uniformly paired configuration is simple with probability
    // ≈ e^{-(d²-1)/4}, so whole-pairing restarts are only worth attempting
    // for small d; beyond that, go straight to edge-swap repair.
    let attempts = if d <= 4 { 50 } else { 3 };
    for _attempt in 0..attempts {
        if let Some(g) = try_configuration_pairing(n, d, &mut rng) {
            return g;
        }
    }
    // Pairing with edge-swap repair; this keeps determinism and always
    // terminates, at the cost of slight nonuniformity (documented).
    configuration_with_repair(n, d, &mut rng)
}

fn try_configuration_pairing(n: usize, d: usize, rng: &mut SplitMix64) -> Option<Graph> {
    let mut stubs: Vec<u32> = (0..n as u32)
        .flat_map(|v| std::iter::repeat_n(v, d))
        .collect();
    rng.shuffle(&mut stubs);
    let mut b = GraphBuilder::new(n);
    for pair in stubs.chunks(2) {
        let (u, v) = (pair[0], pair[1]);
        if u == v {
            return None;
        }
        match b.add_edge(NodeId::new(u), NodeId::new(v)) {
            Ok(true) => {}
            _ => return None, // duplicate edge
        }
    }
    Some(b.build())
}

fn configuration_with_repair(n: usize, d: usize, rng: &mut SplitMix64) -> Graph {
    let mut stubs: Vec<u32> = (0..n as u32)
        .flat_map(|v| std::iter::repeat_n(v, d))
        .collect();
    rng.shuffle(&mut stubs);
    let mut pairs: Vec<(u32, u32)> = stubs.chunks(2).map(|c| (c[0], c[1])).collect();
    // Repair loop: swap endpoints of conflicting pairs with random partners
    // until the multigraph is simple.
    let mut guard = 0usize;
    loop {
        let mut seen = std::collections::BTreeSet::new();
        let mut bad: Vec<usize> = Vec::new();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let key = if u < v { (u, v) } else { (v, u) };
            if u == v || !seen.insert(key) {
                bad.push(i);
            }
        }
        if bad.is_empty() {
            break;
        }
        guard += 1;
        assert!(guard < 100_000, "regular-graph repair failed to converge");
        for i in bad {
            let j = rng.next_below(pairs.len() as u64) as usize;
            let (a, b2) = pairs[i];
            let (c, e) = pairs[j];
            pairs[i] = (a, e);
            pairs[j] = (c, b2);
        }
    }
    let mut b = GraphBuilder::new(n);
    for (u, v) in pairs {
        b.add_edge(NodeId::new(u), NodeId::new(v))
            .expect("repaired pairing is simple");
    }
    b.build()
}

/// Barabási–Albert preferential attachment: starts from a clique on
/// `m0 = m + 1` vertices, then each new vertex attaches to `m` existing
/// vertices chosen proportionally to degree.
///
/// Produces a heavy-tailed degree distribution with `Δ ≈ n^{1/2}`.
///
/// # Panics
///
/// Panics if `m == 0` or `n < m + 1`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m > 0, "m must be positive");
    assert!(n > m, "need n >= m+1 (n={n}, m={m})");
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new(n);
    // Degree-proportional sampling via the repeated-endpoints trick.
    let mut endpoints: Vec<u32> = Vec::with_capacity(4 * n * m);
    let m0 = m + 1;
    for u in 0..m0 as u32 {
        for v in (u + 1)..m0 as u32 {
            b.add_edge(NodeId::new(u), NodeId::new(v))
                .expect("clique edge");
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in m0 as u32..n as u32 {
        let mut targets = std::collections::BTreeSet::new();
        let mut guard = 0;
        while targets.len() < m {
            let t = endpoints[rng.next_below(endpoints.len() as u64) as usize];
            targets.insert(t);
            guard += 1;
            if guard > 100 * m + 1000 {
                // Extremely unlikely; fall back to uniform fill.
                for u in 0..v {
                    if targets.len() >= m {
                        break;
                    }
                    targets.insert(u);
                }
            }
        }
        for &t in &targets {
            b.add_edge(NodeId::new(v), NodeId::new(t)).expect("BA edge");
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

/// Chung–Lu power-law graph: vertex `i` gets weight `w_i ∝ (i+1)^{-1/(β-1)}`
/// scaled to the target average degree, and edge `{i, j}` appears with
/// probability `min(1, w_i w_j / Σw)`.
///
/// `beta` is the power-law exponent (typically `2 < β < 3`).
///
/// # Panics
///
/// Panics if `beta <= 1` or `avg_degree <= 0`.
pub fn chung_lu_power_law(n: usize, beta: f64, avg_degree: f64, seed: u64) -> Graph {
    assert!(beta > 1.0, "beta must exceed 1, got {beta}");
    assert!(avg_degree > 0.0, "avg_degree must be positive");
    if n == 0 {
        return Graph::empty(0);
    }
    let mut rng = SplitMix64::new(seed);
    let gamma = 1.0 / (beta - 1.0);
    let mut w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-gamma)).collect();
    let sum_w: f64 = w.iter().sum();
    let scale = avg_degree * n as f64 / sum_w;
    for wi in &mut w {
        *wi *= scale;
    }
    let total_w: f64 = w.iter().sum();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let p = (w[i] * w[j] / total_w).min(1.0);
            if p > 0.0 && rng.next_bool(p) {
                b.add_edge(NodeId::new(i as u32), NodeId::new(j as u32))
                    .expect("CL edge");
            }
        }
    }
    b.build()
}

/// The cycle `C_n`.
///
/// # Example
///
/// ```
/// use cc_mis_graph::generators::cycle;
/// let g = cycle(5);
/// assert_eq!(g.edge_count(), 5);
/// assert_eq!(g.max_degree(), 2);
/// ```
pub fn cycle(n: usize) -> Graph {
    if n < 3 {
        return path(n);
    }
    let edges: Vec<(u32, u32)> = (0..n as u32)
        .map(|i| (i, (i + 1) % n as u32))
        .map(order_pair)
        .collect();
    Graph::from_edges(n, edges).expect("cycle edges are valid")
}

/// The path `P_n` on `n` vertices (`n-1` edges).
pub fn path(n: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (i - 1, i)).collect();
    Graph::from_edges(n, edges).expect("path edges are valid")
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    Graph::from_sorted_unique_edges(n, &edges)
}

/// The complete bipartite graph `K_{a,b}`: sides `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a as u32 {
        for v in 0..b as u32 {
            edges.push((u, a as u32 + v));
        }
    }
    Graph::from_sorted_unique_edges(a + b, &edges)
}

/// The star `S_n`: center `0`, leaves `1..n`. Total `n` vertices.
///
/// The extreme instance for local complexity: the center has degree `n-1`
/// while all leaves have degree 1.
pub fn star(n: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
    Graph::from_sorted_unique_edges(n, &edges)
}

/// The `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    Graph::from_sorted_unique_edges(rows * cols, &edges)
}

/// A complete `arity`-ary tree of the given `depth` (depth 0 = single root).
pub fn balanced_tree(arity: usize, depth: usize) -> Graph {
    assert!(arity >= 1, "arity must be at least 1");
    let mut edges = Vec::new();
    let mut level: Vec<u32> = vec![0];
    let mut next_id: u32 = 1;
    for _ in 0..depth {
        let mut next_level = Vec::with_capacity(level.len() * arity);
        for &parent in &level {
            for _ in 0..arity {
                edges.push((parent, next_id));
                next_level.push(next_id);
                next_id += 1;
            }
        }
        level = next_level;
    }
    Graph::from_sorted_unique_edges(next_id as usize, &edges)
}

/// A caterpillar: a spine path of `spine` vertices, each with `legs` pendant
/// leaves.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut edges = Vec::new();
    for i in 1..spine as u32 {
        edges.push((i - 1, i));
    }
    let mut next = spine as u32;
    for s in 0..spine as u32 {
        for _ in 0..legs {
            edges.push((s, next));
            next += 1;
        }
    }
    Graph::from_sorted_unique_edges(n, &edges)
}

/// `k` disjoint cliques of `size` vertices each.
///
/// The adversarial instance for degree-based bounds: `Δ = size - 1` while the
/// unique-per-clique MIS has exactly `k` vertices.
pub fn disjoint_cliques(k: usize, size: usize) -> Graph {
    let mut edges = Vec::new();
    for c in 0..k {
        let base = (c * size) as u32;
        for u in 0..size as u32 {
            for v in (u + 1)..size as u32 {
                edges.push((base + u, base + v));
            }
        }
    }
    Graph::from_sorted_unique_edges(k * size, &edges)
}

/// `G(n, p)` with a planted independent set: vertices `0..is_size` get no
/// internal edges; all other pairs appear with probability `p`.
///
/// Useful for checking that MIS algorithms do not merely find *some*
/// independent set but a *maximal* one (the planted set need not be returned,
/// but whatever is returned must dominate it).
pub fn planted_independent_set(n: usize, p: f64, is_size: usize, seed: u64) -> Graph {
    assert!(is_size <= n, "planted set larger than the graph");
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            let both_planted = (u as usize) < is_size && (v as usize) < is_size;
            if !both_planted && rng.next_bool(p) {
                b.add_edge(NodeId::new(u), NodeId::new(v))
                    .expect("valid edge");
            }
        }
    }
    b.build()
}

/// Watts–Strogatz small-world graph: a ring lattice where each vertex
/// connects to its `k/2` nearest neighbors on each side, with every edge
/// rewired (its far endpoint resampled uniformly) with probability `beta`.
///
/// `beta = 0` is the pure lattice; `beta = 1` approaches `G(n, k/n)`.
///
/// # Panics
///
/// Panics if `k` is odd, `k >= n`, or `beta ∉ [0, 1]`.
///
/// # Example
///
/// ```
/// use cc_mis_graph::generators::watts_strogatz;
/// let lattice = watts_strogatz(30, 4, 0.0, 1);
/// assert!(lattice.nodes().all(|v| lattice.degree(v) == 4));
/// ```
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(k.is_multiple_of(2), "k must be even, got {k}");
    assert!(k < n, "k = {k} must be < n = {n}");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u32 {
        for j in 1..=(k / 2) as u32 {
            let mut w = (v + j) % n as u32;
            if beta > 0.0 && rng.next_bool(beta) {
                // Rewire: pick a uniform non-self target; skip on the rare
                // duplicate rather than retry forever (keeps determinism
                // simple; degree stays ≈ k).
                w = rng.next_below(n as u64) as u32;
                if w == v {
                    w = (v + j) % n as u32;
                }
            }
            if w != v {
                let _ = b.add_edge(NodeId::new(v), NodeId::new(w));
            }
        }
    }
    b.build()
}

/// Random geometric graph: `n` points uniform in the unit square, an edge
/// between every pair within Euclidean distance `radius`.
///
/// The standard model for wireless/beeping networks (the §2.2 algorithm's
/// natural habitat per [Cornejo–Kuhn]).
///
/// # Example
///
/// ```
/// use cc_mis_graph::generators::random_geometric;
/// let g = random_geometric(100, 0.15, 3);
/// assert_eq!(g.node_count(), 100);
/// ```
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    assert!(radius >= 0.0, "radius must be nonnegative");
    let mut rng = SplitMix64::new(seed);
    let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.next_f64(), rng.next_f64())).collect();
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = points[i].0 - points[j].0;
            let dy = points[i].1 - points[j].1;
            if dx * dx + dy * dy <= r2 {
                b.add_edge(NodeId::new(i as u32), NodeId::new(j as u32))
                    .expect("geometric edge");
            }
        }
    }
    b.build()
}

/// A random bipartite graph: sides `0..a` and `a..a+b`, each cross pair kept
/// with probability `p`.
pub fn random_bipartite(a: usize, b: usize, p: f64, seed: u64) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a as u32 {
        for v in 0..b as u32 {
            if rng.next_bool(p) {
                builder
                    .add_edge(NodeId::new(u), NodeId::new(a as u32 + v))
                    .expect("valid edge");
            }
        }
    }
    builder.build()
}

fn order_pair((u, v): (u32, u32)) -> (u32, u32) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_extremes() {
        assert_eq!(erdos_renyi_gnp(10, 0.0, 1).edge_count(), 0);
        assert_eq!(erdos_renyi_gnp(10, 1.0, 1).edge_count(), 45);
        assert_eq!(erdos_renyi_gnp(0, 0.5, 1).node_count(), 0);
        assert_eq!(erdos_renyi_gnp(1, 0.5, 1).edge_count(), 0);
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = erdos_renyi_gnp(64, 0.2, 42);
        let b = erdos_renyi_gnp(64, 0.2, 42);
        let c = erdos_renyi_gnp(64, 0.2, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let n = 200;
        let p = 0.1;
        let g = erdos_renyi_gnp(n, p, 5);
        let expected = p * (n * (n - 1) / 2) as f64;
        let m = g.edge_count() as f64;
        assert!(
            (m - expected).abs() < 0.25 * expected,
            "m={m} expected≈{expected}"
        );
    }

    #[test]
    fn unrank_edge_is_bijective_small() {
        for n in 2..=12u64 {
            let total = n * (n - 1) / 2;
            let mut seen = std::collections::BTreeSet::new();
            for idx in 0..total {
                let (u, v) = unrank_edge(idx, n);
                assert!(u < v && (v as u64) < n, "bad edge ({u},{v}) for n={n}");
                assert!(seen.insert((u, v)), "duplicate edge for idx {idx}, n={n}");
            }
            assert_eq!(seen.len() as u64, total);
        }
    }

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi_gnm(30, 100, 9);
        assert_eq!(g.edge_count(), 100);
        assert_eq!(g.node_count(), 30);
    }

    #[test]
    #[should_panic(expected = "exceeds the maximum")]
    fn gnm_rejects_too_many_edges() {
        erdos_renyi_gnm(4, 7, 0);
    }

    #[test]
    fn regular_graph_has_uniform_degree() {
        for (n, d) in [(20, 3), (31, 4), (50, 6), (10, 0)] {
            let g = random_regular(n, d, 77);
            assert_eq!(g.node_count(), n);
            for v in g.nodes() {
                assert_eq!(g.degree(v), d, "vertex {v} in {n}-node {d}-regular");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn regular_rejects_odd_total() {
        random_regular(5, 3, 0);
    }

    #[test]
    fn barabasi_albert_degrees() {
        let g = barabasi_albert(100, 3, 4);
        assert_eq!(g.node_count(), 100);
        // Every non-seed vertex has degree >= m.
        for v in g.nodes().skip(4) {
            assert!(g.degree(v) >= 3);
        }
        // Edge count: C(4,2) + 96*3 = 6 + 288.
        assert_eq!(g.edge_count(), 6 + 96 * 3);
    }

    #[test]
    fn chung_lu_produces_heavy_head() {
        let g = chung_lu_power_law(300, 2.5, 6.0, 8);
        assert_eq!(g.node_count(), 300);
        // Vertex 0 has the largest weight; its degree should be well above
        // the average.
        let d0 = g.degree(NodeId::new(0));
        assert!(
            d0 as f64 > g.average_degree(),
            "d0={d0} avg={}",
            g.average_degree()
        );
    }

    #[test]
    fn structured_families_basic_counts() {
        assert_eq!(cycle(6).edge_count(), 6);
        assert_eq!(cycle(2).edge_count(), 1); // degenerates to path
        assert_eq!(path(1).edge_count(), 0);
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(complete(5).edge_count(), 10);
        assert_eq!(complete_bipartite(3, 4).edge_count(), 12);
        assert_eq!(star(10).edge_count(), 9);
        assert_eq!(star(10).max_degree(), 9);
        assert_eq!(grid(3, 4).node_count(), 12);
        assert_eq!(grid(3, 4).edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(balanced_tree(2, 3).node_count(), 15);
        assert_eq!(balanced_tree(2, 3).edge_count(), 14);
        assert_eq!(caterpillar(4, 2).node_count(), 12);
        assert_eq!(caterpillar(4, 2).edge_count(), 3 + 8);
        assert_eq!(disjoint_cliques(3, 4).edge_count(), 3 * 6);
        assert_eq!(disjoint_cliques(3, 4).max_degree(), 3);
    }

    #[test]
    fn kronecker_is_deterministic_and_sized() {
        let a = kronecker(7, 8, 11);
        let b = kronecker(7, 8, 11);
        let c = kronecker(7, 8, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.node_count(), 128);
        // Self-loop drops and dedup only ever shrink the edge list.
        assert!(a.edge_count() <= 8 * 128);
        assert!(a.edge_count() > 128, "ef = 8 should survive dedup");
    }

    #[test]
    fn kronecker_has_a_heavy_tail() {
        let g = kronecker(10, 8, 3);
        // R-MAT without label scrambling concentrates degree on vertex 0.
        assert!(
            g.degree(NodeId::new(0)) as f64 > 4.0 * g.average_degree(),
            "d0 = {} avg = {}",
            g.degree(NodeId::new(0)),
            g.average_degree()
        );
    }

    #[test]
    fn kronecker_scales_past_2_16() {
        let g = kronecker(16, 2, 9);
        assert_eq!(g.node_count(), 1 << 16);
        assert!(g.edge_count() > 1 << 14);
    }

    #[test]
    #[should_panic(expected = "must be < 32")]
    fn kronecker_rejects_scale_32() {
        kronecker(32, 1, 0);
    }

    #[test]
    fn watts_strogatz_lattice_and_rewired() {
        let lattice = watts_strogatz(40, 6, 0.0, 1);
        assert!(lattice.nodes().all(|v| lattice.degree(v) == 6));
        assert!(lattice.has_edge(NodeId::new(0), NodeId::new(3)));
        assert!(!lattice.has_edge(NodeId::new(0), NodeId::new(4)));

        let rewired = watts_strogatz(40, 6, 0.5, 1);
        assert_ne!(rewired, lattice, "beta = 0.5 should rewire something");
        // Edge count stays close to n·k/2 (duplicates may drop a few).
        assert!(rewired.edge_count() > 40 * 3 - 20);
        assert!(rewired.edge_count() <= 40 * 3);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn watts_strogatz_rejects_odd_k() {
        watts_strogatz(10, 3, 0.1, 0);
    }

    #[test]
    fn random_geometric_radius_extremes() {
        let none = random_geometric(30, 0.0, 2);
        assert_eq!(none.edge_count(), 0);
        let all = random_geometric(30, 1.5, 2); // √2 < 1.5 covers the square
        assert_eq!(all.edge_count(), 30 * 29 / 2);
        // Determinism.
        assert_eq!(random_geometric(30, 0.2, 7), random_geometric(30, 0.2, 7));
    }

    #[test]
    fn planted_set_is_independent() {
        let g = planted_independent_set(50, 0.3, 10, 3);
        for u in 0..10u32 {
            for v in (u + 1)..10u32 {
                assert!(!g.has_edge(NodeId::new(u), NodeId::new(v)));
            }
        }
    }

    #[test]
    fn random_bipartite_has_no_internal_edges() {
        let g = random_bipartite(10, 12, 0.5, 6);
        for u in 0..10u32 {
            for v in (u + 1)..10u32 {
                assert!(!g.has_edge(NodeId::new(u), NodeId::new(v)));
            }
        }
        for u in 10..22u32 {
            for v in (u + 1)..22u32 {
                assert!(!g.has_edge(NodeId::new(u), NodeId::new(v)));
            }
        }
        assert!(g.edge_count() > 20, "p=0.5 should keep many cross edges");
    }

    #[test]
    fn bipartite_complete_structure() {
        let g = complete_bipartite(2, 3);
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert_eq!(g.degree(NodeId::new(0)), 3);
        assert_eq!(g.degree(NodeId::new(4)), 2);
    }
}
