//! Incremental, validated graph construction.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use crate::{Graph, NodeId};

/// Error produced when constructing a [`Graph`] from invalid input.
///
/// # Example
///
/// ```
/// use cc_mis_graph::{GraphBuilder, GraphError, NodeId};
///
/// let mut b = GraphBuilder::new(3);
/// let err = b.add_edge(NodeId::new(1), NodeId::new(1)).unwrap_err();
/// assert!(matches!(err, GraphError::SelfLoop { .. }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// An edge connected a vertex to itself; simple graphs forbid this.
    SelfLoop {
        /// The offending vertex.
        node: NodeId,
    },
    /// An edge endpoint was `>= n` for a graph with `n` vertices.
    NodeOutOfRange {
        /// The offending vertex.
        node: NodeId,
        /// The number of vertices in the graph under construction.
        node_count: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop at {node} is not allowed in a simple graph")
            }
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "{node} is out of range for a graph with {node_count} vertices"
                )
            }
        }
    }
}

impl Error for GraphError {}

/// Builds a [`Graph`] incrementally, validating and deduplicating edges.
///
/// # Example
///
/// ```
/// use cc_mis_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(NodeId::new(0), NodeId::new(1))?;
/// b.add_edge(NodeId::new(1), NodeId::new(0))?; // duplicate, ignored
/// b.add_edge(NodeId::new(2), NodeId::new(3))?;
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), cc_mis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    node_count: usize,
    edges: BTreeSet<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices (`0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            node_count: n,
            edges: BTreeSet::new(),
        }
    }

    /// Number of vertices of the graph under construction.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of distinct edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if the edge was new,
    /// `false` if it was already present.
    ///
    /// # Errors
    ///
    /// * [`GraphError::SelfLoop`] if `u == v`.
    /// * [`GraphError::NodeOutOfRange`] if either endpoint is `>= n`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        for w in [u, v] {
            if w.index() >= self.node_count {
                return Err(GraphError::NodeOutOfRange {
                    node: w,
                    node_count: self.node_count,
                });
            }
        }
        let key = if u < v {
            (u.raw(), v.raw())
        } else {
            (v.raw(), u.raw())
        };
        Ok(self.edges.insert(key))
    }

    /// Whether the undirected edge `{u, v}` has been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u < v {
            (u.raw(), v.raw())
        } else {
            (v.raw(), u.raw())
        };
        self.edges.contains(&key)
    }

    /// Finalizes the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let edges: Vec<(u32, u32)> = self.edges.into_iter().collect();
        Graph::from_sorted_unique_edges(self.node_count, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_dedups_and_counts() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(NodeId::new(0), NodeId::new(1)).unwrap());
        assert!(!b.add_edge(NodeId::new(1), NodeId::new(0)).unwrap());
        assert_eq!(b.edge_count(), 1);
        assert!(b.has_edge(NodeId::new(1), NodeId::new(0)));
        assert!(!b.has_edge(NodeId::new(1), NodeId::new(2)));
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loop_is_rejected() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_edge(NodeId::new(1), NodeId::new(1)).unwrap_err();
        assert_eq!(
            err,
            GraphError::SelfLoop {
                node: NodeId::new(1)
            }
        );
        assert_eq!(
            err.to_string(),
            "self-loop at v1 is not allowed in a simple graph"
        );
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_edge(NodeId::new(0), NodeId::new(5)).unwrap_err();
        assert!(matches!(
            err,
            GraphError::NodeOutOfRange { node_count: 2, .. }
        ));
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<GraphError>();
    }

    #[test]
    fn default_builder_is_empty() {
        let b = GraphBuilder::default();
        assert_eq!(b.node_count(), 0);
        let g = b.build();
        assert!(g.is_empty());
    }

    #[test]
    fn build_empty_with_nodes() {
        let g = GraphBuilder::new(10).build();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 0);
    }
}
