//! Graph substrate for the `clique-mis` reproduction of
//! *"Distributed MIS via All-to-All Communication"* (Ghaffari, PODC 2017).
//!
//! This crate provides everything the distributed-model simulators and the
//! MIS algorithms need from a graph library:
//!
//! * [`Graph`] — a compact, immutable, undirected simple graph in CSR form,
//!   with sorted adjacency for `O(log deg)` edge queries.
//! * [`GraphBuilder`] — incremental construction with validation
//!   (no self-loops, no out-of-range endpoints, duplicate edges deduplicated).
//! * [`generators`] — seeded, deterministic random and structured graph
//!   families used by the experiments (Erdős–Rényi, random regular,
//!   Barabási–Albert, Chung–Lu power law, grids, trees, cliques, …).
//! * [`ops`] — structural operations: induced subgraphs, graph powers
//!   (needed by the graph-exponentiation primitive of Lemma 2.14), line
//!   graphs and coloring products (for the standard reductions of `[Linial]`),
//!   connected components.
//! * [`checks`] — solution verifiers: independence, maximality, domination,
//!   matchings, colorings, and `k`-ruling sets.
//! * [`rng`] — small, dependency-free deterministic RNG primitives
//!   (SplitMix64 and a counter-based stream) shared by the whole workspace.
//!   They live here because this is the lowest layer of the workspace.
//!
//! # Example
//!
//! ```
//! use cc_mis_graph::{generators, checks, NodeId};
//!
//! let g = generators::erdos_renyi_gnp(200, 0.05, 42);
//! assert_eq!(g.node_count(), 200);
//! // A single vertex is always an independent set.
//! assert!(checks::is_independent_set(&g, &[NodeId::new(0)]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod checks;
pub mod generators;
pub mod io;
pub mod ops;
pub mod rng;

mod graph_impl;

pub use builder::{GraphBuilder, GraphError};
pub use graph_impl::{EdgeIter, Graph, NodeId, NodeIter};
