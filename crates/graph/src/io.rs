//! Reading and writing graphs in common text formats.
//!
//! Two formats are supported:
//!
//! * **Edge list** — one `u v` pair per line, `#` comments, with an
//!   optional first line `n <count>` pinning the vertex count (otherwise
//!   it is `max id + 1`).
//! * **DIMACS** — the classic `p edge <n> <m>` / `e <u> <v>` format
//!   (1-indexed on disk, 0-indexed in memory).
//!
//! Both readers are streaming (`R: Read`) and validate through
//! [`GraphBuilder`], so malformed input yields a structured error rather
//! than a bad graph.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// Error produced when parsing a graph file.
#[derive(Debug)]
pub enum ParseGraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line could not be parsed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A structurally invalid edge (self-loop / out-of-range endpoint).
    Graph {
        /// 1-based line number.
        line: usize,
        /// The underlying validation error.
        source: GraphError,
    },
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseGraphError::Io(e) => write!(f, "i/o error: {e}"),
            ParseGraphError::Syntax { line, message } => {
                write!(f, "syntax error on line {line}: {message}")
            }
            ParseGraphError::Graph { line, source } => {
                write!(f, "invalid edge on line {line}: {source}")
            }
        }
    }
}

impl Error for ParseGraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseGraphError::Io(e) => Some(e),
            ParseGraphError::Graph { source, .. } => Some(source),
            ParseGraphError::Syntax { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseGraphError {
    fn from(e: std::io::Error) -> Self {
        ParseGraphError::Io(e)
    }
}

/// Reads an edge-list graph. Pass `&mut reader` to keep ownership.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on I/O failure, unparsable lines, self-loops,
/// or out-of-range endpoints (when an `n` header is present).
///
/// # Example
///
/// ```
/// use cc_mis_graph::io::read_edge_list;
///
/// let text = "n 4\n# a comment\n0 1\n2 3\n";
/// let g = read_edge_list(text.as_bytes())?;
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), cc_mis_graph::io::ParseGraphError>(())
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, ParseGraphError> {
    let buf = BufReader::new(reader);
    let mut declared_n: Option<usize> = None;
    let mut edges: Vec<(u32, u32, usize)> = Vec::new();
    let mut max_id: u32 = 0;
    let mut any_node = false;
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let first = parts.next().expect("nonempty line has a token");
        if first == "n" {
            let count = parts
                .next()
                .ok_or_else(|| ParseGraphError::Syntax {
                    line: line_no,
                    message: "expected a count after 'n'".into(),
                })?
                .parse::<usize>()
                .map_err(|e| ParseGraphError::Syntax {
                    line: line_no,
                    message: format!("bad node count: {e}"),
                })?;
            declared_n = Some(count);
            continue;
        }
        let u = first.parse::<u32>().map_err(|e| ParseGraphError::Syntax {
            line: line_no,
            message: format!("bad endpoint: {e}"),
        })?;
        let v = parts
            .next()
            .ok_or_else(|| ParseGraphError::Syntax {
                line: line_no,
                message: "expected two endpoints".into(),
            })?
            .parse::<u32>()
            .map_err(|e| ParseGraphError::Syntax {
                line: line_no,
                message: format!("bad endpoint: {e}"),
            })?;
        max_id = max_id.max(u).max(v);
        any_node = true;
        edges.push((u, v, line_no));
    }
    let n = declared_n.unwrap_or(if any_node { max_id as usize + 1 } else { 0 });
    let mut b = GraphBuilder::new(n);
    for (u, v, line) in edges {
        b.add_edge(NodeId::new(u), NodeId::new(v))
            .map_err(|source| ParseGraphError::Graph { line, source })?;
    }
    Ok(b.build())
}

/// Writes a graph as an edge list (with an `n` header so isolated trailing
/// vertices round-trip).
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "n {}", g.node_count())?;
    for (u, v) in g.edges() {
        writeln!(writer, "{} {}", u.raw(), v.raw())?;
    }
    Ok(())
}

/// Reads a DIMACS `p edge` file (1-indexed vertices on disk).
///
/// # Errors
///
/// Returns [`ParseGraphError`] on I/O failure, unparsable lines, a missing
/// `p` line, zero vertex ids, self-loops, or out-of-range endpoints.
///
/// # Example
///
/// ```
/// use cc_mis_graph::io::read_dimacs;
///
/// let text = "c example\np edge 3 2\ne 1 2\ne 2 3\n";
/// let g = read_dimacs(text.as_bytes())?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), cc_mis_graph::io::ParseGraphError>(())
/// ```
pub fn read_dimacs<R: Read>(reader: R) -> Result<Graph, ParseGraphError> {
    let buf = BufReader::new(reader);
    let mut builder: Option<GraphBuilder> = None;
    for (idx, line) in buf.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("p ") {
            let mut parts = rest.split_whitespace();
            let kind = parts.next().unwrap_or("");
            if kind != "edge" && kind != "col" {
                return Err(ParseGraphError::Syntax {
                    line: line_no,
                    message: format!("unsupported problem kind '{kind}'"),
                });
            }
            let n = parts
                .next()
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| ParseGraphError::Syntax {
                    line: line_no,
                    message: "bad vertex count in p line".into(),
                })?;
            builder = Some(GraphBuilder::new(n));
        } else if let Some(rest) = trimmed.strip_prefix("e ") {
            let b = builder.as_mut().ok_or_else(|| ParseGraphError::Syntax {
                line: line_no,
                message: "edge before p line".into(),
            })?;
            let mut parts = rest.split_whitespace();
            let parse = |tok: Option<&str>| -> Result<u32, ParseGraphError> {
                tok.and_then(|s| s.parse::<u32>().ok())
                    .filter(|&x| x >= 1)
                    .ok_or_else(|| ParseGraphError::Syntax {
                        line: line_no,
                        message: "bad 1-indexed endpoint".into(),
                    })
            };
            let u = parse(parts.next())?;
            let v = parse(parts.next())?;
            b.add_edge(NodeId::new(u - 1), NodeId::new(v - 1))
                .map_err(|source| ParseGraphError::Graph {
                    line: line_no,
                    source,
                })?;
        } else {
            return Err(ParseGraphError::Syntax {
                line: line_no,
                message: format!("unrecognized line '{trimmed}'"),
            });
        }
    }
    let builder = builder.ok_or_else(|| ParseGraphError::Syntax {
        line: 0,
        message: "missing p line".into(),
    })?;
    Ok(builder.build())
}

/// Writes a graph in DIMACS `p edge` format (1-indexed on disk).
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_dimacs<W: Write>(g: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "p edge {} {}", g.node_count(), g.edge_count())?;
    for (u, v) in g.edges() {
        writeln!(writer, "e {} {}", u.raw() + 1, v.raw() + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn edge_list_roundtrip() {
        let g = generators::erdos_renyi_gnp(40, 0.1, 3);
        let mut bytes = Vec::new();
        write_edge_list(&g, &mut bytes).unwrap();
        let back = read_edge_list(bytes.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn edge_list_without_header_infers_n() {
        let g = read_edge_list("0 1\n5 2\n".as_bytes()).unwrap();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn edge_list_empty_input_is_empty_graph() {
        let g = read_edge_list("# nothing\n\n".as_bytes()).unwrap();
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn edge_list_reports_line_numbers() {
        let err = read_edge_list("0 1\nbogus\n".as_bytes()).unwrap_err();
        assert!(
            matches!(err, ParseGraphError::Syntax { line: 2, .. }),
            "{err}"
        );
        let err = read_edge_list("n 2\n0 5\n".as_bytes()).unwrap_err();
        assert!(
            matches!(err, ParseGraphError::Graph { line: 2, .. }),
            "{err}"
        );
        let err = read_edge_list("3 3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("self-loop"));
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = generators::grid(4, 5);
        let mut bytes = Vec::new();
        write_dimacs(&g, &mut bytes).unwrap();
        let back = read_dimacs(bytes.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn dimacs_rejects_malformed() {
        assert!(read_dimacs("e 1 2\n".as_bytes()).is_err()); // edge before p
        assert!(read_dimacs("p edge 3 1\ne 0 1\n".as_bytes()).is_err()); // 0-index
        assert!(read_dimacs("p matching 3 1\n".as_bytes()).is_err()); // kind
        assert!(read_dimacs("".as_bytes()).is_err()); // no p line
        assert!(read_dimacs("p edge 3 1\nx 1 2\n".as_bytes()).is_err()); // junk
    }

    #[test]
    fn dimacs_comments_ignored() {
        let g = read_dimacs("c hi\np edge 2 1\nc mid\ne 1 2\n".as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn error_type_is_well_behaved() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<ParseGraphError>();
        let e = ParseGraphError::Syntax {
            line: 3,
            message: "x".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
