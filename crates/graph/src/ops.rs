//! Structural graph operations.
//!
//! These are the building blocks the algorithms in `cc-mis-core` rely on:
//!
//! * [`induced_subgraph`] — restriction to a vertex subset (used for the
//!   sampled set `S` of §2.4 and the residual graph of the clean-up step).
//! * [`power`] / [`square`] — the graph powers `G^k` underlying the
//!   graph-exponentiation primitive (Lemma 2.14).
//! * [`line_graph`] and [`coloring_product`] — the standard reductions of
//!   [Linial, SICOMP'92] from maximal matching and `(Δ+1)`-coloring to MIS.
//! * [`connected_components`] — shattering analysis (Lemma 2.11) looks at
//!   the components of the residual graph.

use std::collections::VecDeque;

use crate::{Graph, GraphBuilder, NodeId};

/// The subgraph induced by `vertices`, together with the mapping from new
/// vertex indices back to the original ones.
///
/// Duplicate entries in `vertices` are an error in the caller's logic and
/// trigger a panic, because silently deduplicating would desynchronize the
/// returned mapping.
///
/// # Panics
///
/// Panics if `vertices` contains duplicates or out-of-range nodes.
///
/// # Example
///
/// ```
/// use cc_mis_graph::{generators, ops, NodeId};
///
/// let g = generators::cycle(5);
/// let (sub, back) = ops::induced_subgraph(&g, &[NodeId::new(0), NodeId::new(1), NodeId::new(3)]);
/// assert_eq!(sub.node_count(), 3);
/// assert_eq!(sub.edge_count(), 1); // only {0,1} survives
/// assert_eq!(back[0], NodeId::new(0));
/// ```
pub fn induced_subgraph(g: &Graph, vertices: &[NodeId]) -> (Graph, Vec<NodeId>) {
    let mut index_of: Vec<Option<u32>> = vec![None; g.node_count()];
    for (i, &v) in vertices.iter().enumerate() {
        assert!(v.index() < g.node_count(), "vertex {v} out of range");
        assert!(
            index_of[v.index()].is_none(),
            "duplicate vertex {v} in induced_subgraph"
        );
        index_of[v.index()] = Some(i as u32);
    }
    let mut b = GraphBuilder::new(vertices.len());
    for (i, &v) in vertices.iter().enumerate() {
        for &u in g.neighbors(v) {
            if let Some(j) = index_of[u.index()] {
                if (i as u32) < j {
                    b.add_edge(NodeId::new(i as u32), NodeId::new(j))
                        .expect("induced edges are valid");
                }
            }
        }
    }
    (b.build(), vertices.to_vec())
}

/// The `k`-th power `G^k`: same vertex set, an edge between every pair of
/// distinct vertices at distance `≤ k` in `G`.
///
/// Computed by `⌈log₂ k⌉` squarings plus one multiply, mirroring how the
/// congested-clique algorithm itself gathers neighborhoods (Lemma 2.14).
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Example
///
/// ```
/// use cc_mis_graph::{generators, ops, NodeId};
/// let p = generators::path(5); // 0-1-2-3-4
/// let p2 = ops::power(&p, 2);
/// assert!(p2.has_edge(NodeId::new(0), NodeId::new(2)));
/// assert!(!p2.has_edge(NodeId::new(0), NodeId::new(3)));
/// ```
pub fn power(g: &Graph, k: usize) -> Graph {
    assert!(k > 0, "graph power requires k >= 1");
    // BFS to depth k from each vertex. For the moderate sizes and small k
    // used here this is simpler and no slower than repeated squaring.
    let n = g.node_count();
    let mut b = GraphBuilder::new(n);
    let mut dist: Vec<u32> = vec![u32::MAX; n];
    let mut touched: Vec<usize> = Vec::new();
    for s in g.nodes() {
        dist[s.index()] = 0;
        touched.push(s.index());
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            let d = dist[v.index()];
            if d as usize >= k {
                continue;
            }
            for &u in g.neighbors(v) {
                if dist[u.index()] == u32::MAX {
                    dist[u.index()] = d + 1;
                    touched.push(u.index());
                    queue.push_back(u);
                }
            }
        }
        for &t in &touched {
            if t != s.index() {
                let (a, bb) = (s.index().min(t) as u32, s.index().max(t) as u32);
                b.add_edge(NodeId::new(a), NodeId::new(bb))
                    .expect("power edge");
            }
            dist[t] = u32::MAX;
        }
        touched.clear();
    }
    b.build()
}

/// The square `G²` (edges between vertices at distance ≤ 2). Equivalent to
/// [`power`]`(g, 2)` but computed by direct neighbor merging.
pub fn square(g: &Graph) -> Graph {
    let mut b = GraphBuilder::new(g.node_count());
    for v in g.nodes() {
        for &u in g.neighbors(v) {
            if v < u {
                b.add_edge(v, u).expect("original edge");
            }
            for &w in g.neighbors(u) {
                if v < w {
                    b.add_edge(v, w).expect("2-hop edge");
                }
            }
        }
    }
    b.build()
}

/// Connected components: returns `(component_id_per_vertex, component_count)`.
///
/// # Example
///
/// ```
/// use cc_mis_graph::{generators, ops};
/// let g = generators::disjoint_cliques(3, 4);
/// let (ids, count) = ops::connected_components(&g);
/// assert_eq!(count, 3);
/// assert_eq!(ids[0], ids[1]);
/// assert_ne!(ids[0], ids[4]);
/// ```
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0usize;
    for s in g.nodes() {
        if comp[s.index()] != usize::MAX {
            continue;
        }
        let id = count;
        count += 1;
        comp[s.index()] = id;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if comp[u.index()] == usize::MAX {
                    comp[u.index()] = id;
                    queue.push_back(u);
                }
            }
        }
    }
    (comp, count)
}

/// Sizes of all connected components, sorted descending.
pub fn component_sizes(g: &Graph) -> Vec<usize> {
    let (ids, count) = connected_components(g);
    let mut sizes = vec![0usize; count];
    for id in ids {
        sizes[id] += 1;
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

/// The line graph `L(G)`: one vertex per edge of `G`, adjacent when the
/// edges share an endpoint. Returns the line graph together with the list
/// mapping each line-graph vertex to its original edge.
///
/// An MIS of `L(G)` is exactly a maximal matching of `G` — the standard
/// reduction the paper cites from [Linial, SICOMP'92].
///
/// # Example
///
/// ```
/// use cc_mis_graph::{generators, ops};
/// let g = generators::path(4); // edges {0,1},{1,2},{2,3}
/// let (lg, edges) = ops::line_graph(&g);
/// assert_eq!(lg.node_count(), 3);
/// assert_eq!(lg.edge_count(), 2); // consecutive edges share endpoints
/// assert_eq!(edges.len(), 3);
/// ```
pub fn line_graph(g: &Graph) -> (Graph, Vec<(NodeId, NodeId)>) {
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    // For each vertex, the indices of incident edges.
    let mut incident: Vec<Vec<u32>> = vec![Vec::new(); g.node_count()];
    for (i, &(u, v)) in edges.iter().enumerate() {
        incident[u.index()].push(i as u32);
        incident[v.index()].push(i as u32);
    }
    let mut b = GraphBuilder::new(edges.len());
    for list in &incident {
        for (a, &i) in list.iter().enumerate() {
            for &j in &list[a + 1..] {
                b.add_edge(NodeId::new(i), NodeId::new(j))
                    .expect("line edge");
            }
        }
    }
    (b.build(), edges)
}

/// The coloring product `G □ K_c`: vertex set `V × {0..c}`, with
/// `(v,i) ~ (v,j)` for `i ≠ j` and `(u,i) ~ (v,i)` for every edge `{u,v}`.
///
/// For `c = Δ+1`, an MIS of the product selects exactly one color per vertex
/// and no two adjacent vertices share a color — i.e. a proper
/// `(Δ+1)`-coloring (the standard reduction the paper cites from `[Linial]`).
///
/// Vertex `(v, i)` is encoded as index `v * c + i`; use [`decode_product`] to
/// invert.
pub fn coloring_product(g: &Graph, c: usize) -> Graph {
    assert!(c >= 1, "need at least one color");
    let n = g.node_count();
    let id = |v: usize, i: usize| (v * c + i) as u32;
    let mut b = GraphBuilder::new(n * c);
    for v in 0..n {
        for i in 0..c {
            for j in (i + 1)..c {
                b.add_edge(NodeId::new(id(v, i)), NodeId::new(id(v, j)))
                    .expect("color-clique edge");
            }
        }
    }
    for (u, v) in g.edges() {
        for i in 0..c {
            b.add_edge(NodeId::new(id(u.index(), i)), NodeId::new(id(v.index(), i)))
                .expect("cross edge");
        }
    }
    b.build()
}

/// Decodes a [`coloring_product`] vertex index back to `(vertex, color)`.
pub fn decode_product(id: NodeId, c: usize) -> (NodeId, usize) {
    (NodeId::new((id.index() / c) as u32), id.index() % c)
}

/// Restriction of `g` to the edges whose *both* endpoints satisfy `keep`.
/// Unlike [`induced_subgraph`], the vertex set (and numbering) is unchanged;
/// discarded vertices simply become isolated.
pub fn filter_vertices(g: &Graph, keep: impl Fn(NodeId) -> bool) -> Graph {
    let mut b = GraphBuilder::new(g.node_count());
    for (u, v) in g.edges() {
        if keep(u) && keep(v) {
            b.add_edge(u, v).expect("filtered edge");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn induced_subgraph_maps_back() {
        let g = generators::complete(5);
        let verts = [NodeId::new(1), NodeId::new(3), NodeId::new(4)];
        let (sub, back) = induced_subgraph(&g, &verts);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 3);
        assert_eq!(back, verts.to_vec());
    }

    #[test]
    #[should_panic(expected = "duplicate vertex")]
    fn induced_subgraph_rejects_duplicates() {
        let g = generators::complete(3);
        induced_subgraph(&g, &[NodeId::new(0), NodeId::new(0)]);
    }

    #[test]
    fn power_of_path_matches_distance() {
        let p = generators::path(8);
        for k in 1..=4 {
            let pk = power(&p, k);
            for u in 0..8u32 {
                for v in (u + 1)..8u32 {
                    let expected = (v - u) as usize <= k;
                    assert_eq!(
                        pk.has_edge(NodeId::new(u), NodeId::new(v)),
                        expected,
                        "k={k} u={u} v={v}"
                    );
                }
            }
        }
    }

    #[test]
    fn square_equals_power_two() {
        for seed in 0..5 {
            let g = generators::erdos_renyi_gnp(40, 0.08, seed);
            assert_eq!(square(&g), power(&g, 2), "seed {seed}");
        }
    }

    #[test]
    fn power_one_is_identity() {
        let g = generators::erdos_renyi_gnp(30, 0.15, 1);
        assert_eq!(power(&g, 1), g);
    }

    #[test]
    fn power_saturates_to_component_cliques() {
        let g = generators::disjoint_cliques(2, 3);
        let big = power(&g, 10);
        // Each clique stays its own component-clique.
        assert_eq!(big.edge_count(), 2 * 3);
        assert!(!big.has_edge(NodeId::new(0), NodeId::new(3)));
    }

    #[test]
    fn components_of_union() {
        let g = generators::disjoint_cliques(4, 3);
        let (_, count) = connected_components(&g);
        assert_eq!(count, 4);
        assert_eq!(component_sizes(&g), vec![3, 3, 3, 3]);
    }

    #[test]
    fn components_of_empty_graph() {
        let g = Graph::empty(5);
        let (ids, count) = connected_components(&g);
        assert_eq!(count, 5);
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn line_graph_of_star_is_complete() {
        let g = generators::star(5); // 4 edges all sharing the center
        let (lg, _) = line_graph(&g);
        assert_eq!(lg.node_count(), 4);
        assert_eq!(lg.edge_count(), 6); // K_4
    }

    #[test]
    fn line_graph_of_cycle_is_cycle() {
        let g = generators::cycle(6);
        let (lg, _) = line_graph(&g);
        assert_eq!(lg.node_count(), 6);
        assert_eq!(lg.edge_count(), 6);
        assert!(lg.nodes().all(|v| lg.degree(v) == 2));
    }

    #[test]
    fn coloring_product_structure() {
        let g = generators::path(3); // Δ = 2, so c = 3
        let prod = coloring_product(&g, 3);
        assert_eq!(prod.node_count(), 9);
        // per-vertex clique edges: 3 * C(3,2) = 9; cross edges: 2 edges * 3 = 6
        assert_eq!(prod.edge_count(), 9 + 6);
        let (v, c) = decode_product(NodeId::new(7), 3);
        assert_eq!((v.raw(), c), (2, 1));
    }

    #[test]
    fn filter_vertices_isolates_dropped() {
        let g = generators::complete(4);
        let f = filter_vertices(&g, |v| v.raw() != 0);
        assert_eq!(f.node_count(), 4);
        assert_eq!(f.edge_count(), 3); // K_3 among {1,2,3}
        assert_eq!(f.degree(NodeId::new(0)), 0);
    }
}
