//! Dependency-free deterministic random number primitives.
//!
//! The whole workspace needs randomness that is (a) reproducible across
//! platforms and runs, and (b) *addressable*: the congested-clique simulation
//! of §2.4 of the paper only works because each node's coin for round `t`
//! can be drawn *by any party that knows `(seed, node, round)`*. The paper
//! phrases this as each node drawing all of its `r_t(v)` values at the start
//! of a phase; we implement it with a counter-based generator so the direct
//! execution and the simulated execution consume bit-identical randomness.
//!
//! Two flavors are provided:
//!
//! * [`SplitMix64`] — a tiny sequential PRNG, used by the graph generators.
//! * [`mix3`] / [`unit_f64`] — stateless counter-based draws keyed by up to
//!   three 64-bit words, used by the simulators (`cc-mis-sim`) to implement
//!   per-`(seed, node, round)` streams.

/// A minimal SplitMix64 pseudo-random generator.
///
/// SplitMix64 passes BigCrush and is the standard seeding generator for
/// xoshiro-family PRNGs; its statistical quality is far beyond what the
/// experiments here need, while being fully deterministic and portable.
///
/// # Example
///
/// ```
/// use cc_mis_graph::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        finalize(self.state)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        to_unit_f64(self.next_u64())
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// SplitMix64 finalizer: bijective 64-bit mixing.
#[inline]
const fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Converts 64 random bits to a uniform `f64` in `[0, 1)` using the top 53
/// bits.
#[inline]
pub fn to_unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Stateless counter-based mix of three 64-bit words into 64 pseudo-random
/// bits. Distinct inputs give statistically independent outputs (this is the
/// SplitMix64 finalizer applied to a distinct-prime linear combination).
///
/// The simulators use `mix3(seed, node, round)` so that any party that knows
/// the address of a coin can reproduce it — the exact property Lemma 2.13 of
/// the paper needs for local replay.
///
/// # Example
///
/// ```
/// use cc_mis_graph::rng::mix3;
/// assert_eq!(mix3(1, 2, 3), mix3(1, 2, 3));
/// assert_ne!(mix3(1, 2, 3), mix3(1, 2, 4));
/// ```
#[inline]
pub fn mix3(a: u64, b: u64, c: u64) -> u64 {
    // Distinct odd multipliers keep the three coordinates from aliasing.
    let x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add(c.wrapping_mul(0x1656_67B1_9E37_79F9));
    finalize(finalize(x).wrapping_add(0x632B_E593_04B4_92ED))
}

/// Uniform `f64` in `[0, 1)` addressed by three 64-bit words.
///
/// # Example
///
/// ```
/// use cc_mis_graph::rng::unit_f64;
/// let r = unit_f64(42, 7, 0);
/// assert!((0.0..1.0).contains(&r));
/// ```
#[inline]
pub fn unit_f64(a: u64, b: u64, c: u64) -> f64 {
    to_unit_f64(mix3(a, b, c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = r.next_below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn next_bool_frequency_tracks_p() {
        let mut r = SplitMix64::new(7);
        let trials = 20_000;
        let hits = (0..trials).filter(|_| r.next_bool(0.25)).count();
        let freq = hits as f64 / trials as f64;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq} too far from 0.25");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        // conform: allow(R11) -- clones the shuffled Vec for a sort check, not an RNG stream
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<u32>>(),
            "shuffle should move things"
        );
    }

    #[test]
    fn mix3_distinct_inputs_distinct_outputs() {
        // Not a cryptographic claim, just a smoke test for aliasing bugs
        // such as swapping coordinates or losing a word.
        let a = mix3(1, 2, 3);
        assert_ne!(a, mix3(3, 2, 1));
        assert_ne!(a, mix3(2, 1, 3));
        assert_ne!(a, mix3(1, 2, 4));
        assert_ne!(a, mix3(0, 2, 3));
    }

    #[test]
    fn mix3_no_collisions_over_grid() {
        // BTreeSet keeps even test code on deterministic collections
        // (conform R1 exempts tests, but there is no reason to differ).
        use std::collections::BTreeSet;
        let mut seen = BTreeSet::new();
        for node in 0..64u64 {
            for round in 0..64u64 {
                assert!(
                    seen.insert(mix3(42, node, round)),
                    "collision at ({node}, {round})"
                );
            }
        }
    }

    #[test]
    fn unit_f64_mean_is_near_half() {
        let mut sum = 0.0;
        let trials = 10_000u64;
        for i in 0..trials {
            sum += unit_f64(9, i, 0);
        }
        let mean = sum / trials as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }
}
