//! Solution verifiers.
//!
//! Every algorithm in the workspace is checked against these verifiers in its
//! tests; the experiment binaries also verify every output before reporting
//! round counts, so a buggy algorithm cannot silently "win" a benchmark.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Whether `set` is an independent set of `g` (no two members adjacent).
///
/// # Example
///
/// ```
/// use cc_mis_graph::{generators, checks, NodeId};
/// let g = generators::path(4);
/// assert!(checks::is_independent_set(&g, &[NodeId::new(0), NodeId::new(2)]));
/// assert!(!checks::is_independent_set(&g, &[NodeId::new(0), NodeId::new(1)]));
/// ```
pub fn is_independent_set(g: &Graph, set: &[NodeId]) -> bool {
    let mut member = vec![false; g.node_count()];
    for &v in set {
        if v.index() >= g.node_count() || member[v.index()] {
            return false; // out of range or duplicate
        }
        member[v.index()] = true;
    }
    for &v in set {
        if g.neighbors(v).iter().any(|&u| member[u.index()]) {
            return false;
        }
    }
    true
}

/// Whether `set` dominates `g`: every vertex is in `set` or adjacent to it.
pub fn is_dominating_set(g: &Graph, set: &[NodeId]) -> bool {
    let mut covered = vec![false; g.node_count()];
    for &v in set {
        if v.index() >= g.node_count() {
            return false;
        }
        covered[v.index()] = true;
        for &u in g.neighbors(v) {
            covered[u.index()] = true;
        }
    }
    covered.into_iter().all(|c| c)
}

/// Whether `set` is a **maximal** independent set: independent, and no
/// vertex can be added (equivalently, independent and dominating).
///
/// This is the verifier every MIS algorithm's output must pass.
///
/// # Example
///
/// ```
/// use cc_mis_graph::{generators, checks, NodeId};
/// let g = generators::path(4); // 0-1-2-3
/// assert!(checks::is_maximal_independent_set(&g, &[NodeId::new(0), NodeId::new(2)]));
/// // {0, 3} is independent but not maximal: 1 or 2 could still... actually
/// // 1 is adjacent to 0 and 2 is adjacent to 3, so {0,3} IS maximal.
/// assert!(checks::is_maximal_independent_set(&g, &[NodeId::new(0), NodeId::new(3)]));
/// // {1} alone is not maximal: 3 has no neighbor in it.
/// assert!(!checks::is_maximal_independent_set(&g, &[NodeId::new(1)]));
/// ```
pub fn is_maximal_independent_set(g: &Graph, set: &[NodeId]) -> bool {
    is_independent_set(g, set) && is_dominating_set(g, set)
}

/// Whether `matching` is a valid matching of `g`: every pair is an edge of
/// `g` and no vertex appears twice.
pub fn is_matching(g: &Graph, matching: &[(NodeId, NodeId)]) -> bool {
    let mut used = vec![false; g.node_count()];
    for &(u, v) in matching {
        if u.index() >= g.node_count() || v.index() >= g.node_count() {
            return false;
        }
        if !g.has_edge(u, v) || used[u.index()] || used[v.index()] {
            return false;
        }
        used[u.index()] = true;
        used[v.index()] = true;
    }
    true
}

/// Whether `matching` is a **maximal** matching: valid, and every edge of
/// `g` touches a matched vertex.
pub fn is_maximal_matching(g: &Graph, matching: &[(NodeId, NodeId)]) -> bool {
    if !is_matching(g, matching) {
        return false;
    }
    let mut used = vec![false; g.node_count()];
    for &(u, v) in matching {
        used[u.index()] = true;
        used[v.index()] = true;
    }
    g.edges().all(|(u, v)| used[u.index()] || used[v.index()])
}

/// Whether `colors` (one entry per vertex) is a proper coloring of `g` using
/// colors `< palette`.
pub fn is_proper_coloring(g: &Graph, colors: &[usize], palette: usize) -> bool {
    if colors.len() != g.node_count() {
        return false;
    }
    if colors.iter().any(|&c| c >= palette) {
        return false;
    }
    g.edges()
        .all(|(u, v)| colors[u.index()] != colors[v.index()])
}

/// Whether `set` is a `k`-ruling set: independent, and every vertex of `g`
/// is within distance `k` of some member.
///
/// A 1-ruling set is exactly an MIS. The paper's related work (§1.1)
/// discusses 2- and 3-ruling sets as relaxations.
///
/// # Example
///
/// ```
/// use cc_mis_graph::{generators, checks, NodeId};
/// let g = generators::path(5); // 0-1-2-3-4
/// assert!(checks::is_k_ruling_set(&g, &[NodeId::new(2)], 2));
/// assert!(!checks::is_k_ruling_set(&g, &[NodeId::new(2)], 1));
/// ```
pub fn is_k_ruling_set(g: &Graph, set: &[NodeId], k: usize) -> bool {
    if !is_independent_set(g, set) {
        return false;
    }
    // Multi-source BFS to depth k.
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut queue = VecDeque::new();
    for &v in set {
        dist[v.index()] = 0;
        queue.push_back(v);
    }
    while let Some(v) = queue.pop_front() {
        if dist[v.index()] >= k {
            continue;
        }
        for &u in g.neighbors(v) {
            if dist[u.index()] == usize::MAX {
                dist[u.index()] = dist[v.index()] + 1;
                queue.push_back(u);
            }
        }
    }
    dist.into_iter().all(|d| d != usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn ids(raw: &[u32]) -> Vec<NodeId> {
        raw.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn empty_set_on_empty_graph_is_mis() {
        let g = Graph::empty(0);
        assert!(is_maximal_independent_set(&g, &[]));
    }

    #[test]
    fn empty_set_on_nonempty_graph_is_not_mis() {
        let g = Graph::empty(3); // three isolated vertices
        assert!(is_independent_set(&g, &[]));
        assert!(!is_maximal_independent_set(&g, &[]));
        assert!(is_maximal_independent_set(&g, &ids(&[0, 1, 2])));
    }

    #[test]
    fn duplicate_members_rejected() {
        let g = generators::path(3);
        assert!(!is_independent_set(&g, &ids(&[0, 0])));
    }

    #[test]
    fn out_of_range_rejected() {
        let g = generators::path(3);
        assert!(!is_independent_set(&g, &ids(&[5])));
        assert!(!is_dominating_set(&g, &ids(&[5])));
    }

    #[test]
    fn cycle_mis() {
        let g = generators::cycle(6);
        assert!(is_maximal_independent_set(&g, &ids(&[0, 2, 4])));
        // Adjacent pair is never independent.
        assert!(!is_maximal_independent_set(&g, &ids(&[0, 1])));
    }

    #[test]
    fn cycle_mis_two_apart_is_maximal() {
        let g = generators::cycle(6);
        // Re-check the case above carefully: {0,3} covers 1,5 (via 0) and
        // 2,4 (via 3), so it IS maximal.
        assert!(is_maximal_independent_set(&g, &ids(&[0, 3])));
        // But {0} alone is not.
        assert!(!is_maximal_independent_set(&g, &ids(&[0])));
    }

    #[test]
    fn star_center_is_mis() {
        let g = generators::star(10);
        assert!(is_maximal_independent_set(&g, &ids(&[0])));
        let leaves: Vec<NodeId> = (1..10).map(NodeId::new).collect();
        assert!(is_maximal_independent_set(&g, &leaves));
    }

    #[test]
    fn matching_checks() {
        let g = generators::path(4); // 0-1-2-3
        let m1 = [
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(2), NodeId::new(3)),
        ];
        assert!(is_maximal_matching(&g, &m1));
        let m2 = [(NodeId::new(1), NodeId::new(2))];
        assert!(is_matching(&g, &m2));
        assert!(is_maximal_matching(&g, &m2)); // edges {0,1},{2,3} both touch
        let bad = [(NodeId::new(0), NodeId::new(2))]; // not an edge
        assert!(!is_matching(&g, &bad));
        let overlap = [
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(1), NodeId::new(2)),
        ];
        assert!(!is_matching(&g, &overlap));
    }

    #[test]
    fn empty_matching_maximality() {
        let g = Graph::empty(4);
        assert!(is_maximal_matching(&g, &[]));
        let p = generators::path(2);
        assert!(!is_maximal_matching(&p, &[]));
    }

    #[test]
    fn coloring_checks() {
        let g = generators::cycle(4);
        assert!(is_proper_coloring(&g, &[0, 1, 0, 1], 2));
        assert!(!is_proper_coloring(&g, &[0, 0, 1, 1], 2)); // 0-1 conflict
        assert!(!is_proper_coloring(&g, &[0, 1, 0, 2], 2)); // palette overflow
        assert!(!is_proper_coloring(&g, &[0, 1, 0], 2)); // wrong length
    }

    #[test]
    fn ruling_set_distances() {
        let g = generators::path(7); // 0..6
        assert!(is_k_ruling_set(&g, &ids(&[0, 3, 6]), 1)); // an MIS
        assert!(is_k_ruling_set(&g, &ids(&[3]), 3));
        assert!(!is_k_ruling_set(&g, &ids(&[3]), 2));
        // Dependent set is rejected no matter the radius.
        assert!(!is_k_ruling_set(&g, &ids(&[2, 3]), 5));
    }

    #[test]
    fn mis_is_one_ruling() {
        let g = generators::erdos_renyi_gnp(60, 0.1, 4);
        // greedy MIS here, inline: lowest-id first
        let mut in_set = [false; 60];
        let mut blocked = [false; 60];
        let mut set = Vec::new();
        for v in g.nodes() {
            if !blocked[v.index()] {
                in_set[v.index()] = true;
                set.push(v);
                for &u in g.neighbors(v) {
                    blocked[u.index()] = true;
                }
                blocked[v.index()] = true;
            }
        }
        assert!(is_maximal_independent_set(&g, &set));
        assert!(is_k_ruling_set(&g, &set, 1));
    }
}
