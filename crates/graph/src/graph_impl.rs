//! The compact undirected graph representation.

use std::fmt;

/// Identifier of a vertex in a [`Graph`].
///
/// A `NodeId` is an index in `0..n` for a graph with `n` vertices. It is a
/// newtype over `u32` so that vertex indices cannot be confused with other
/// integer quantities (round numbers, degrees, bit counts) flowing through
/// the simulators.
///
/// # Example
///
/// ```
/// use cc_mis_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the raw index as a `usize`, suitable for indexing per-node
    /// arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index as a `u32`.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

/// An immutable, undirected, simple graph in compressed sparse row form.
///
/// Vertices are `0..n`. Adjacency lists are sorted, enabling
/// `O(log deg)` [`Graph::has_edge`] queries and linear-time sorted-merge
/// operations in [`crate::ops`].
///
/// Construct a `Graph` through [`crate::GraphBuilder`], one of the
/// [`crate::generators`], or [`Graph::from_edges`].
///
/// # Example
///
/// ```
/// use cc_mis_graph::{Graph, NodeId};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
/// assert!(!g.has_edge(NodeId::new(0), NodeId::new(3)));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR offsets; `offsets[v]..offsets[v+1]` indexes `adj`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists.
    adj: Vec<NodeId>,
    /// Number of undirected edges.
    edge_count: usize,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count)
            .finish()
    }
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    ///
    /// # Example
    ///
    /// ```
    /// use cc_mis_graph::Graph;
    /// let g = Graph::empty(5);
    /// assert_eq!(g.node_count(), 5);
    /// assert_eq!(g.edge_count(), 0);
    /// ```
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            adj: Vec::new(),
            edge_count: 0,
        }
    }

    /// Builds a graph with `n` vertices from an edge iterator of raw index
    /// pairs. Duplicate edges are merged; edge direction is ignored.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError`] if an edge is a self-loop or references
    /// a vertex `>= n`.
    ///
    /// # Example
    ///
    /// ```
    /// use cc_mis_graph::Graph;
    /// let g = Graph::from_edges(3, [(0, 1), (1, 0), (1, 2)]).unwrap();
    /// assert_eq!(g.edge_count(), 2); // (0,1) deduplicated
    /// ```
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, crate::GraphError>
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut b = crate::GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(NodeId::new(u), NodeId::new(v))?;
        }
        Ok(b.build())
    }

    /// Internal: assembles the CSR form from a deduplicated, validated edge
    /// list. Used by [`crate::GraphBuilder`].
    pub(crate) fn from_sorted_unique_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0usize; n];
        for &(u, v) in edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![NodeId::new(0); acc];
        for &(u, v) in edges {
            adj[cursor[u as usize]] = NodeId::new(v);
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = NodeId::new(u);
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph {
            offsets,
            adj,
            edge_count: edges.len(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Maximum degree `Δ` over all vertices (0 for an empty graph).
    ///
    /// The paper's round bounds are stated in terms of this quantity.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.degree(NodeId::new(v as u32)))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2m / n` (0.0 for an empty graph).
    pub fn average_degree(&self) -> f64 {
        let n = self.node_count();
        if n == 0 {
            0.0
        } else {
            2.0 * self.edge_count as f64 / n as f64
        }
    }

    /// The sorted adjacency list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all vertices in index order.
    ///
    /// # Example
    ///
    /// ```
    /// use cc_mis_graph::Graph;
    /// let g = Graph::empty(3);
    /// let ids: Vec<u32> = g.nodes().map(|v| v.raw()).collect();
    /// assert_eq!(ids, vec![0, 1, 2]);
    /// ```
    pub fn nodes(&self) -> NodeIter {
        NodeIter {
            next: 0,
            n: self.node_count() as u32,
        }
    }

    /// Iterates over all undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            graph: self,
            u: 0,
            pos: 0,
        }
    }

    /// Collects all edges as `(u, v)` raw index pairs with `u < v`.
    pub fn edge_list(&self) -> Vec<(u32, u32)> {
        self.edges().map(|(u, v)| (u.raw(), v.raw())).collect()
    }

    /// Returns the degree histogram: `hist[d]` = number of vertices with
    /// degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_degree() + 1];
        for v in self.nodes() {
            hist[self.degree(v)] += 1;
        }
        hist
    }
}

/// Iterator over the vertices of a [`Graph`], produced by [`Graph::nodes`].
#[derive(Debug, Clone)]
pub struct NodeIter {
    next: u32,
    n: u32,
}

impl Iterator for NodeIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.next < self.n {
            let v = NodeId::new(self.next);
            self.next += 1;
            Some(v)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.n - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NodeIter {}

/// Iterator over the undirected edges of a [`Graph`], produced by
/// [`Graph::edges`]. Yields each edge once, as `(u, v)` with `u < v`.
#[derive(Debug, Clone)]
pub struct EdgeIter<'a> {
    graph: &'a Graph,
    u: u32,
    pos: usize,
}

impl<'a> Iterator for EdgeIter<'a> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        let n = self.graph.node_count() as u32;
        while self.u < n {
            let u = NodeId::new(self.u);
            let nbrs = self.graph.neighbors(u);
            while self.pos < nbrs.len() {
                let v = nbrs[self.pos];
                self.pos += 1;
                if u < v {
                    return Some((u, v));
                }
            }
            self.u += 1;
            self.pos = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(7);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        for v in g.nodes() {
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert!(g.is_empty());
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn triangle_structure() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(g.edge_count(), 3);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(g.has_edge(NodeId::new(2), NodeId::new(0)));
        assert_eq!(g.edges().count(), 3);
    }

    #[test]
    fn from_edges_deduplicates_and_ignores_direction() {
        let g = Graph::from_edges(4, [(0, 1), (1, 0), (0, 1), (2, 3)]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(NodeId::new(0)), 1);
    }

    #[test]
    fn from_edges_rejects_self_loop() {
        assert!(Graph::from_edges(3, [(1, 1)]).is_err());
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        assert!(Graph::from_edges(3, [(0, 3)]).is_err());
    }

    #[test]
    fn adjacency_is_sorted() {
        let g = Graph::from_edges(5, [(2, 4), (2, 0), (2, 3), (2, 1)]).unwrap();
        let nbrs: Vec<u32> = g
            .neighbors(NodeId::new(2))
            .iter()
            .map(|v| v.raw())
            .collect();
        assert_eq!(nbrs, vec![0, 1, 3, 4]);
    }

    #[test]
    fn edge_iterator_yields_each_edge_once() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2)]).unwrap();
        let edges: Vec<(u32, u32)> = g.edge_list();
        assert_eq!(edges, vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
    }

    #[test]
    fn degree_histogram_counts() {
        // star with center 0 and 3 leaves
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        let hist = g.degree_histogram();
        assert_eq!(hist, vec![0, 3, 0, 1]);
    }

    #[test]
    fn node_id_display_and_conversions() {
        let v: NodeId = 9u32.into();
        assert_eq!(v.to_string(), "v9");
        assert_eq!(v.index(), 9);
        assert_eq!(v.raw(), 9);
    }

    #[test]
    fn debug_representation_is_nonempty() {
        let g = Graph::empty(2);
        let s = format!("{g:?}");
        assert!(s.contains("Graph"));
        assert!(s.contains("nodes"));
    }
}
