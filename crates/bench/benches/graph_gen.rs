//! Microbenchmarks of the graph substrate: generators and structural ops.

use cc_mis_bench::harness::Harness;
use cc_mis_graph::{generators, ops};

fn main() {
    let mut h = Harness::new("generators");
    for n in [256usize, 1024, 4096] {
        let p = 16.0 / n as f64;
        h.bench(&format!("gnp_avg16/n{n}"), || {
            generators::erdos_renyi_gnp(n, p, 1)
        });
        h.bench(&format!("regular_d8/n{n}"), || {
            generators::random_regular(n, 8, 1)
        });
        h.bench(&format!("barabasi_albert_m4/n{n}"), || {
            generators::barabasi_albert(n, 4, 1)
        });
    }
    h.finish();

    let mut h = Harness::new("ops");
    let g = generators::erdos_renyi_gnp(1024, 8.0 / 1024.0, 2);
    h.bench("square_n1024", || ops::square(&g));
    h.bench("power3_n1024", || ops::power(&g, 3));
    h.bench("components_n1024", || ops::connected_components(&g));
    h.bench("line_graph_n1024", || ops::line_graph(&g));
    h.finish();
}
