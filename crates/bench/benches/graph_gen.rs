//! Microbenchmarks of the graph substrate: generators and structural ops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cc_mis_graph::{generators, ops};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    for n in [256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::new("gnp_avg16", n), &n, |b, &n| {
            let p = 16.0 / n as f64;
            b.iter(|| generators::erdos_renyi_gnp(n, p, 1))
        });
        group.bench_with_input(BenchmarkId::new("regular_d8", n), &n, |b, &n| {
            b.iter(|| generators::random_regular(n, 8, 1))
        });
        group.bench_with_input(BenchmarkId::new("barabasi_albert_m4", n), &n, |b, &n| {
            b.iter(|| generators::barabasi_albert(n, 4, 1))
        });
    }
    group.finish();
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("ops");
    let g = generators::erdos_renyi_gnp(1024, 8.0 / 1024.0, 2);
    group.bench_function("square_n1024", |b| b.iter(|| ops::square(&g)));
    group.bench_function("power3_n1024", |b| b.iter(|| ops::power(&g, 3)));
    group.bench_function("components_n1024", |b| b.iter(|| ops::connected_components(&g)));
    group.bench_function("line_graph_n1024", |b| b.iter(|| ops::line_graph(&g)));
    group.finish();
}

criterion_group!(benches, bench_generators, bench_ops);
criterion_main!(benches);
