//! Microbenchmarks of the Lemma 2.14 gathering primitive.

use cc_mis_bench::harness::Harness;
use cc_mis_core::exponentiation::gather_balls;
use cc_mis_graph::generators;
use cc_mis_sim::bits::standard_bandwidth;
use cc_mis_sim::clique::CliqueEngine;

fn main() {
    let mut h = Harness::new("gather_balls");
    for radius in [2usize, 4, 8] {
        let n = 512;
        let g = generators::random_regular(n, 4, 2);
        h.bench(&format!("regular4_n512/r{radius}"), || {
            let mut engine = CliqueEngine::strict(n, standard_bandwidth(n));
            gather_balls(&mut engine, &g, &vec![true; n], radius, 24)
        });
    }
    for n in [256usize, 1024] {
        let g = generators::cycle(n);
        h.bench(&format!("cycle_r8/n{n}"), || {
            let mut engine = CliqueEngine::strict(n, standard_bandwidth(n));
            gather_balls(&mut engine, &g, &vec![true; n], 8, 24)
        });
    }
    h.finish();
}
