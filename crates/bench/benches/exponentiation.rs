//! Microbenchmarks of the Lemma 2.14 gathering primitive.

use cc_mis_core::exponentiation::gather_balls;
use cc_mis_graph::generators;
use cc_mis_sim::bits::standard_bandwidth;
use cc_mis_sim::clique::CliqueEngine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_gather(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_balls");
    group.sample_size(10);
    for radius in [2usize, 4, 8] {
        let n = 512;
        let g = generators::random_regular(n, 4, 2);
        group.bench_with_input(BenchmarkId::new("regular4_n512", radius), &radius, |b, &r| {
            b.iter(|| {
                let mut engine = CliqueEngine::strict(n, standard_bandwidth(n));
                gather_balls(&mut engine, &g, &vec![true; n], r, 24)
            })
        });
    }
    for n in [256usize, 1024] {
        let g = generators::cycle(n);
        group.bench_with_input(BenchmarkId::new("cycle_r8", n), &n, |b, _| {
            b.iter(|| {
                let mut engine = CliqueEngine::strict(n, standard_bandwidth(n));
                gather_balls(&mut engine, &g, &vec![true; n], 8, 24)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gather);
criterion_main!(benches);
