//! Microbenchmarks of the simulator engines: per-round overhead of the
//! clique, CONGEST, and beeping engines.

use cc_mis_bench::harness::Harness;
use cc_mis_graph::{generators, NodeId};
use cc_mis_sim::beeping::BeepingEngine;
use cc_mis_sim::clique::CliqueEngine;
use cc_mis_sim::congest::CongestEngine;

fn main() {
    // Engines persist across the bench iterations (as they do across the
    // rounds of a real run), so these cases measure the steady-state round
    // hot path with warm pooled buffers; the harness's untimed warmup call
    // primes the pool.
    let mut h = Harness::new("clique_all_to_all_round");
    for n in [64usize, 256, 1024] {
        let mut e = CliqueEngine::strict(n, 64);
        h.bench(&format!("n{n}"), move || {
            let mut r = e.begin_round::<u32>();
            for i in 0..n as u32 {
                for j in 0..n as u32 {
                    if i != j {
                        r.send(NodeId::new(i), NodeId::new(j), 16, i ^ j).unwrap();
                    }
                }
            }
            r.deliver()
        });
    }
    h.finish();

    // Frame-based sharded delivery vs the direct scatter, same all-to-all
    // round. The shard mode latches at an engine's first deliver (the
    // harness warmup), so the override is set before each engine is built
    // and the engines then coexist safely.
    let mut h = Harness::new("sharded_round_frames");
    let n = 1024usize;
    for (name, shards) in [
        ("n1024_direct", None),
        ("n1024_s1", Some(1)),
        ("n1024_s4", Some(4)),
    ] {
        cc_mis_sim::shard::set_shards_override(shards);
        let mut e = CliqueEngine::strict(n, 64);
        h.bench(name, move || {
            let mut r = e.begin_round::<u32>();
            for i in 0..n as u32 {
                for j in 0..n as u32 {
                    if i != j {
                        r.send(NodeId::new(i), NodeId::new(j), 16, i ^ j).unwrap();
                    }
                }
            }
            r.deliver()
        });
    }
    cc_mis_sim::shard::set_shards_override(None);
    h.finish();

    let mut h = Harness::new("congest_broadcast_round");
    for n in [256usize, 1024, 4096] {
        let g = generators::erdos_renyi_gnp(n, 16.0 / n as f64, 3);
        let mut e = CongestEngine::strict(&g, 64);
        h.bench(&format!("n{n}"), move || {
            let mut r = e.begin_round::<u32>();
            for v in 0..n as u32 {
                r.broadcast(NodeId::new(v), 16, v).unwrap();
            }
            r.deliver()
        });
    }
    h.finish();

    let mut h = Harness::new("beeping_round");
    for n in [1024usize, 8192] {
        let g = generators::erdos_renyi_gnp(n, 16.0 / n as f64, 4);
        let beeps: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        h.bench(&format!("n{n}"), || BeepingEngine::new(&g).round(&beeps));
    }
    h.finish();
}
