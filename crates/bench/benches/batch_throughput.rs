//! Throughput of the batch scheduler on a 256-job mixed workload: every
//! step-driven algorithm over a small graph pool, scheduled unbounded
//! (pure fan-in overhead) and at quantum 8 (steady preemption: each park
//! pays a CCMS snapshot, each revive a fresh `make()` plus restore).
//!
//! The gap between the two lines is the full cost of preemption at the
//! default `--quantum`; `scripts/bench.sh --check` gates the quantum-8
//! line against results/bench_batch_throughput.json.

use cc_mis_bench::harness::Harness;
use cc_mis_core::beeping_mis::{BeepingExecution, BeepingParams, BeepingRun};
use cc_mis_core::clique_mis::{CliqueMisExecution, CliqueMisParams, CliqueMisResult};
use cc_mis_core::ghaffari16::{Ghaffari16CliqueExecution, Ghaffari16Execution, Ghaffari16Params};
use cc_mis_core::lowdeg::{AutoExecution, Strategy};
use cc_mis_core::luby::{LubyExecution, LubyParams};
use cc_mis_core::sparsified::{SparsifiedExecution, SparsifiedParams, SparsifiedRun};
use cc_mis_core::MisOutcome;
use cc_mis_graph::{generators, Graph};
use cc_mis_sim::{BatchScheduler, BoxedExecution, JobSpec, MapOutcome};

const JOBS: usize = 256;

/// One job's factory: algorithm index cycles through the mix, seed varies
/// per job so no two jobs replay the same coins.
fn make_exec<'a>(
    which: usize,
    graphs: &'a [Graph; 3],
    seed: u64,
) -> Box<dyn FnMut() -> BoxedExecution<'a, usize> + 'a> {
    let g = &graphs[which % graphs.len()];
    match which % 7 {
        0 => Box::new(move || {
            Box::new(MapOutcome::new(
                LubyExecution::new(g, &LubyParams::for_graph(g), seed),
                |o: MisOutcome| o.mis.len(),
            ))
        }),
        1 => Box::new(move || {
            Box::new(MapOutcome::new(
                Ghaffari16Execution::new(g, &Ghaffari16Params::for_graph(g), seed),
                |o: MisOutcome| o.mis.len(),
            ))
        }),
        2 => Box::new(move || {
            Box::new(MapOutcome::new(
                Ghaffari16CliqueExecution::new(g, &Ghaffari16Params::for_graph(g), seed),
                |o: MisOutcome| o.mis.len(),
            ))
        }),
        3 => Box::new(move || {
            Box::new(MapOutcome::new(
                BeepingExecution::new(g, &BeepingParams::for_graph(g), seed),
                |r: BeepingRun| r.mis.len(),
            ))
        }),
        4 => Box::new(move || {
            Box::new(MapOutcome::new(
                SparsifiedExecution::new(g, &SparsifiedParams::for_graph(g), seed),
                |r: SparsifiedRun| r.mis.len(),
            ))
        }),
        5 => Box::new(move || {
            Box::new(MapOutcome::new(
                CliqueMisExecution::new(g, &CliqueMisParams::default(), seed),
                |r: CliqueMisResult| r.mis.len(),
            ))
        }),
        _ => Box::new(move || {
            Box::new(MapOutcome::new(
                AutoExecution::new(g, seed),
                |(o, _): (MisOutcome, Strategy)| o.mis.len(),
            ))
        }),
    }
}

fn run_batch(graphs: &[Graph; 3], quantum: Option<u64>) -> usize {
    let specs: Vec<JobSpec<'_, usize>> = (0..JOBS)
        .map(|i| JobSpec::new(format!("job-{i}"), make_exec(i, graphs, 1 + i as u64)))
        .collect();
    let scheduler = match quantum {
        None => BatchScheduler::unbounded(),
        Some(q) => BatchScheduler::with_quantum(q),
    };
    scheduler.run(specs).iter().map(|r| r.outcome).sum()
}

fn main() {
    let mut h = Harness::new("batch_throughput");
    let graphs: [Graph; 3] = [
        generators::erdos_renyi_gnp(96, 8.0 / 95.0, 5),
        generators::grid(8, 8),
        generators::cycle(64),
    ];
    // Sanity: the mix must actually solve (a broken scheduler that dropped
    // jobs would otherwise "win" every benchmark).
    let mis_total = run_batch(&graphs, Some(8));
    assert_eq!(mis_total, run_batch(&graphs, None));
    assert!(mis_total > 0, "the mixed batch must produce MIS nodes");

    h.bench("mixed256/unbounded", || run_batch(&graphs, None));
    h.bench("mixed256/quantum8", || run_batch(&graphs, Some(8)));
    h.finish();
}
