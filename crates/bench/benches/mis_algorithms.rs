//! End-to-end wall-clock benchmarks of every MIS algorithm on a common
//! workload (complementing the round-count experiments, which measure the
//! distributed cost rather than simulation time).

use cc_mis_analysis::trace::JsonlTraceSink;
use cc_mis_bench::harness::Harness;
use cc_mis_core::beeping_mis::{run_beeping_to_completion, BeepingParams};
use cc_mis_core::clique_mis::{
    run_clique_mis, run_clique_mis_observed, CliqueMisExecution, CliqueMisParams,
};
use cc_mis_core::ghaffari16::{run_ghaffari16, run_ghaffari16_clique, Ghaffari16Params};
use cc_mis_core::greedy::greedy_mis;
use cc_mis_core::lowdeg::{run_lowdeg, LowDegParams};
use cc_mis_core::luby::{run_luby, LubyParams};
use cc_mis_core::sparsified::{run_sparsified_with_cleanup, SparsifiedParams};
use cc_mis_graph::generators;

fn main() {
    let mut h = Harness::new("mis_algorithms");
    for n in [256usize, 1024] {
        let g = generators::erdos_renyi_gnp(n, 16.0 / n as f64, 5);
        h.bench(&format!("greedy/n{n}"), || greedy_mis(&g));
        h.bench(&format!("luby/n{n}"), || {
            run_luby(&g, &LubyParams::for_graph(&g), 1)
        });
        h.bench(&format!("ghaffari16/n{n}"), || {
            run_ghaffari16(&g, &Ghaffari16Params::for_graph(&g), 1)
        });
        h.bench(&format!("ghaffari16_clique/n{n}"), || {
            run_ghaffari16_clique(&g, &Ghaffari16Params::for_graph(&g), 1)
        });
        h.bench(&format!("beeping/n{n}"), || {
            run_beeping_to_completion(&g, &BeepingParams::for_graph(&g), 1)
        });
        h.bench(&format!("sparsified/n{n}"), || {
            run_sparsified_with_cleanup(&g, &SparsifiedParams::for_graph(&g), 1)
        });
        h.bench(&format!("clique_mis_thm11/n{n}"), || {
            run_clique_mis(&g, &CliqueMisParams::default(), 1)
        });
        // Same run with the JSONL trace observer attached: the gap between
        // this and the line above is the full cost of `--trace`.
        let trace_path = std::env::temp_dir().join(format!(
            "cc-mis-bench-trace-{}-{n}.jsonl",
            std::process::id()
        ));
        h.bench(&format!("clique_mis_thm11_traced/n{n}"), || {
            let sink = JsonlTraceSink::new(&trace_path).shared();
            let out = run_clique_mis_observed(
                &g,
                &CliqueMisParams::default(),
                1,
                Some(JsonlTraceSink::as_observer(&sink)),
            );
            JsonlTraceSink::finish_shared(&sink).expect("write bench trace");
            out
        });
        let _ = std::fs::remove_file(&trace_path);
        // Same run snapshotting every 8th step into a byte sink: the gap
        // between this and the plain thm11 line is the full cost of
        // `--checkpoint-every 8` minus the disk write.
        h.bench(&format!("clique_mis_thm11_checkpointed/n{n}"), || {
            let mut snapshot_bytes = 0usize;
            let out = cc_mis_sim::drive_with_checkpoints(
                CliqueMisExecution::new(&g, &CliqueMisParams::default(), 1),
                None,
                8,
                |_, bytes| snapshot_bytes = bytes.len(),
            );
            (out, snapshot_bytes)
        });
    }
    let sparse = generators::random_regular(1024, 4, 6);
    h.bench("lowdeg_regular4_n1024", || {
        run_lowdeg(&sparse, &LowDegParams::default(), 1)
    });
    h.finish();
}
