//! End-to-end wall-clock benchmarks of every MIS algorithm on a common
//! workload (complementing the round-count experiments, which measure the
//! distributed cost rather than simulation time).

use cc_mis_core::beeping_mis::{run_beeping_to_completion, BeepingParams};
use cc_mis_core::clique_mis::{run_clique_mis, CliqueMisParams};
use cc_mis_core::ghaffari16::{run_ghaffari16, run_ghaffari16_clique, Ghaffari16Params};
use cc_mis_core::greedy::greedy_mis;
use cc_mis_core::lowdeg::{run_lowdeg, LowDegParams};
use cc_mis_core::luby::{run_luby, LubyParams};
use cc_mis_core::sparsified::{run_sparsified_with_cleanup, SparsifiedParams};
use cc_mis_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_all_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis_algorithms");
    group.sample_size(10);
    for n in [256usize, 1024] {
        let g = generators::erdos_renyi_gnp(n, 16.0 / n as f64, 5);
        group.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, _| {
            b.iter(|| greedy_mis(&g))
        });
        group.bench_with_input(BenchmarkId::new("luby", n), &n, |b, _| {
            b.iter(|| run_luby(&g, &LubyParams::for_graph(&g), 1))
        });
        group.bench_with_input(BenchmarkId::new("ghaffari16", n), &n, |b, _| {
            b.iter(|| run_ghaffari16(&g, &Ghaffari16Params::for_graph(&g), 1))
        });
        group.bench_with_input(BenchmarkId::new("ghaffari16_clique", n), &n, |b, _| {
            b.iter(|| run_ghaffari16_clique(&g, &Ghaffari16Params::for_graph(&g), 1))
        });
        group.bench_with_input(BenchmarkId::new("beeping", n), &n, |b, _| {
            b.iter(|| run_beeping_to_completion(&g, &BeepingParams::for_graph(&g), 1))
        });
        group.bench_with_input(BenchmarkId::new("sparsified", n), &n, |b, _| {
            b.iter(|| run_sparsified_with_cleanup(&g, &SparsifiedParams::for_graph(&g), 1))
        });
        group.bench_with_input(BenchmarkId::new("clique_mis_thm11", n), &n, |b, _| {
            b.iter(|| run_clique_mis(&g, &CliqueMisParams::default(), 1))
        });
    }
    let sparse = generators::random_regular(1024, 4, 6);
    group.bench_function("lowdeg_regular4_n1024", |b| {
        b.iter(|| run_lowdeg(&sparse, &LowDegParams::default(), 1))
    });
    group.finish();
}

criterion_group!(benches, bench_all_algorithms);
criterion_main!(benches);
