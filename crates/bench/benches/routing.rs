//! Microbenchmarks of the Lenzen-routing scheduler.

use cc_mis_bench::harness::Harness;
use cc_mis_graph::NodeId;
use cc_mis_sim::clique::CliqueEngine;
use cc_mis_sim::routing::{route, Packet};

/// The canonical Lenzen workload: every node sends ~n packets, spread.
fn full_load(n: usize) -> Vec<Packet<u32>> {
    let mut packets = Vec::with_capacity(n * (n - 1));
    for s in 0..n as u32 {
        for k in 1..n as u32 {
            packets.push(Packet {
                src: NodeId::new(s),
                dst: NodeId::new((s + k) % n as u32),
                bits: 32,
                payload: k,
            });
        }
    }
    packets
}

/// Hotspot: one destination receives everything.
fn hotspot_load(n: usize) -> Vec<Packet<u32>> {
    let mut packets = Vec::new();
    for s in 1..n as u32 {
        for k in 0..(n as u32 / 2) {
            packets.push(Packet {
                src: NodeId::new(s),
                dst: NodeId::new(0),
                bits: 32,
                payload: k,
            });
        }
    }
    packets
}

fn main() {
    let mut h = Harness::new("lenzen_routing");
    for n in [64usize, 256] {
        h.bench(&format!("full_load/n{n}"), || {
            let mut e = CliqueEngine::strict(n, 64);
            route(&mut e, full_load(n)).unwrap()
        });
        h.bench(&format!("hotspot/n{n}"), || {
            let mut e = CliqueEngine::strict(n, 64);
            route(&mut e, hotspot_load(n)).unwrap()
        });
    }
    h.finish();
}
