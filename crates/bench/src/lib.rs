//! Shared plumbing for the experiment binaries (`src/bin/e*.rs`,
//! `src/bin/a1_ablation.rs`) and the wall-clock benches (which use the
//! in-tree [`harness`] — the workspace carries no registry dependencies).
//!
//! Each binary regenerates one claim of the paper (see DESIGN.md §4 and
//! EXPERIMENTS.md). This library provides the common workload definitions
//! and output conventions so every experiment reports comparable numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod regress;

use cc_mis_graph::{generators, Graph};

/// A named graph workload, reproducible from `(family, n, seed)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// `G(n, p)` with average degree `avg`.
    GnpAvgDeg(u32),
    /// `G(n, p)` with `Δ ≈ n^{alpha/100}` (alpha in percent).
    GnpPowerDelta(u32),
    /// Random `d`-regular.
    Regular(u32),
    /// Barabási–Albert with attachment `m`.
    PrefAttach(u32),
    /// `k` disjoint cliques of size `n/k` (here parameterized by clique
    /// size).
    Cliques(u32),
    /// Star graph (one hub).
    Star,
    /// 2-D grid (as square as possible).
    Grid,
}

impl Family {
    /// Short label for table rows.
    pub fn label(&self) -> String {
        match self {
            Family::GnpAvgDeg(d) => format!("gnp-avg{d}"),
            Family::GnpPowerDelta(a) => format!("gnp-n^{:.2}", *a as f64 / 100.0),
            Family::Regular(d) => format!("reg-{d}"),
            Family::PrefAttach(m) => format!("ba-{m}"),
            Family::Cliques(s) => format!("cliques-{s}"),
            Family::Star => "star".to_string(),
            Family::Grid => "grid".to_string(),
        }
    }

    /// Instantiates the workload at size `n` with the given seed.
    pub fn build(&self, n: usize, seed: u64) -> Graph {
        match *self {
            Family::GnpAvgDeg(d) => {
                let p = (d as f64 / (n.max(2) - 1) as f64).min(1.0);
                generators::erdos_renyi_gnp(n, p, seed)
            }
            Family::GnpPowerDelta(a) => {
                let target_delta = (n as f64).powf(a as f64 / 100.0);
                let p = (target_delta / (n.max(2) - 1) as f64).min(1.0);
                generators::erdos_renyi_gnp(n, p, seed)
            }
            Family::Regular(d) => {
                let d = (d as usize).min(n.saturating_sub(1));
                let d = if n * d % 2 == 1 {
                    d.saturating_sub(1)
                } else {
                    d
                };
                generators::random_regular(n, d, seed)
            }
            Family::PrefAttach(m) => {
                let m = (m as usize).min(n.saturating_sub(1)).max(1);
                generators::barabasi_albert(n.max(m + 1), m, seed)
            }
            Family::Cliques(s) => {
                let s = (s as usize).max(2).min(n);
                generators::disjoint_cliques(n / s, s)
            }
            Family::Star => generators::star(n),
            Family::Grid => {
                let side = (n as f64).sqrt().round() as usize;
                generators::grid(side.max(1), side.max(1))
            }
        }
    }
}

/// The standard multi-seed count used across experiments (overridable via
/// the `TRIALS` environment variable).
pub fn default_trials() -> usize {
    std::env::var("TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
}

/// The standard "quick mode" switch (set `QUICK=1` to shrink sweeps — used
/// by the smoke tests so every experiment binary stays CI-runnable).
pub fn quick_mode() -> bool {
    std::env::var("QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Writes a CSV string next to the experiment output when `CSV_DIR` is set;
/// returns the path it wrote to, if any.
pub fn maybe_write_csv(name: &str, csv: &str) -> Option<std::path::PathBuf> {
    let dir = std::env::var("CSV_DIR").ok()?;
    let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
    if std::fs::create_dir_all(&dir).is_ok() && std::fs::write(&path, csv).is_ok() {
        Some(path)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_build_at_small_sizes() {
        let fams = [
            Family::GnpAvgDeg(8),
            Family::GnpPowerDelta(50),
            Family::Regular(4),
            Family::PrefAttach(3),
            Family::Cliques(5),
            Family::Star,
            Family::Grid,
        ];
        for f in fams {
            let g = f.build(64, 1);
            assert!(g.node_count() > 0, "{}", f.label());
            assert!(!f.label().is_empty());
        }
    }

    #[test]
    fn gnp_power_delta_tracks_target() {
        let f = Family::GnpPowerDelta(50); // Δ ≈ √n
        let g = f.build(1024, 3);
        let delta = g.max_degree() as f64;
        let target = (1024.0f64).sqrt();
        assert!(delta > target / 3.0 && delta < target * 3.0, "Δ = {delta}");
    }

    #[test]
    fn regular_handles_odd_products() {
        let g = Family::Regular(3).build(7, 0); // 7*3 odd → degree drops to 2
        assert!(g.nodes().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn trials_default() {
        assert!(default_trials() >= 1);
    }
}
