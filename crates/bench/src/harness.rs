//! Minimal wall-clock benchmark harness.
//!
//! The workspace builds fully offline, so the `[[bench]]` targets use this
//! instead of Criterion: each bench registers closures with a [`Harness`],
//! which warms up, times a fixed number of samples, prints a table, and —
//! when `BENCH_JSON` names a path — appends machine-readable results for
//! `scripts/bench.sh` to collect into `results/bench_<exp>.json`.
//!
//! Determinism note: sample counts and iteration counts come from the
//! environment (`BENCH_SAMPLES`, default 10), not from elapsed-time
//! calibration, so two runs measure identical work.

use cc_mis_analysis::json::Json;
use std::time::Instant;

/// Timing summary for one benchmark case.
#[derive(Debug, Clone)]
pub struct Sample {
    /// `group/name` label.
    pub name: String,
    /// Number of timed samples.
    pub samples: u32,
    /// Fastest sample, nanoseconds.
    pub min_ns: u64,
    /// Median sample, nanoseconds.
    pub median_ns: u64,
    /// Mean sample, nanoseconds.
    pub mean_ns: u64,
}

impl Sample {
    /// JSON object for `results/bench_*.json`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::from(self.name.as_str())),
            ("samples", Json::from(self.samples as u64)),
            ("min_ns", Json::from(self.min_ns)),
            ("median_ns", Json::from(self.median_ns)),
            ("mean_ns", Json::from(self.mean_ns)),
        ])
    }
}

/// Collects and reports benchmark timings for one group.
pub struct Harness {
    group: String,
    samples: u32,
    results: Vec<Sample>,
}

impl Harness {
    /// Creates a harness; sample count comes from `BENCH_SAMPLES` (default
    /// 10, minimum 3 so the median is meaningful).
    pub fn new(group: &str) -> Self {
        let samples = std::env::var("BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or(10)
            .max(3);
        Harness {
            group: group.to_string(),
            samples,
            results: Vec::new(),
        }
    }

    /// Times `f` (one warmup call, then `self.samples` timed calls) and
    /// records the result under `group/name`.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        std::hint::black_box(f());
        let mut times: Vec<u64> = (0..self.samples)
            .map(|_| {
                // conform: allow(R3) -- wall-clock timing harness measures real elapsed time; nothing simulated or charged depends on it
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed().as_nanos() as u64
            })
            .collect();
        times.sort_unstable();
        let sample = Sample {
            name: format!("{}/{}", self.group, name),
            samples: self.samples,
            min_ns: times[0],
            median_ns: times[times.len() / 2],
            mean_ns: times.iter().sum::<u64>() / times.len() as u64,
        };
        println!(
            "{:<48} min {:>12}  median {:>12}  mean {:>12}",
            sample.name,
            fmt_ns(sample.min_ns),
            fmt_ns(sample.median_ns),
            fmt_ns(sample.mean_ns),
        );
        self.results.push(sample);
    }

    /// Finishes the group: if `BENCH_JSON` is set, appends one JSON line
    /// (`{"group": ..., "results": [...]}`) to that file.
    pub fn finish(self) {
        let Ok(path) = std::env::var("BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let record = Json::obj(vec![
            ("group", Json::from(self.group.as_str())),
            (
                "results",
                Json::Arr(self.results.iter().map(Sample::to_json).collect()),
            ),
        ]);
        use std::io::Write as _;
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path);
        match file {
            Ok(mut f) => {
                let _ = writeln!(f, "{}", record.render());
            }
            Err(e) => eprintln!("warning: cannot write BENCH_JSON={path}: {e}"),
        }
    }
}

/// Human-readable nanoseconds.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_records_every_registered_case() {
        let mut h = Harness::new("unit");
        h.bench("noop", || 1 + 1);
        h.bench("spin", || (0..100u64).sum::<u64>());
        assert_eq!(h.results.len(), 2);
        assert!(h.results[0].name.starts_with("unit/"));
        assert!(h.results.iter().all(|s| s.min_ns <= s.median_ns));
    }

    #[test]
    fn nanosecond_formatting_picks_sane_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
