//! Benchmark regression gate: compares a fresh harness run against the
//! pinned medians in `results/bench_*.json`.
//!
//! Both inputs are the JSON-lines format written by
//! [`crate::harness::Harness::finish`] — one object per group, each with a
//! `results` array of `{name, samples, min_ns, median_ns, mean_ns}`
//! records. The gate compares **medians** (robust to a single noisy
//! sample) and fails when a case slows down by more than the allowed
//! percentage, or disappears from the fresh run entirely.
//!
//! Used by `scripts/bench.sh --check` via the `bench_check` binary; see
//! `scripts/tier1.sh` for the opt-in CI hook.

/// One pinned case matched (or not) against the fresh run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseCheck {
    /// `group/name` label from the pinned file.
    pub name: String,
    /// Pinned median, nanoseconds.
    pub pinned_ns: u64,
    /// Fresh median, nanoseconds; `None` if the case vanished.
    pub fresh_ns: Option<u64>,
}

impl CaseCheck {
    /// True if this case regressed: missing from the fresh run, or slower
    /// than `pinned * (100 + max_regress_pct) / 100`. Integer
    /// cross-multiplication — no rounding to argue about.
    pub fn regressed(&self, max_regress_pct: u64) -> bool {
        match self.fresh_ns {
            None => true,
            Some(fresh) => fresh * 100 > self.pinned_ns * (100 + max_regress_pct),
        }
    }
}

/// Extracts `(case name, median_ns)` pairs for `group` from harness
/// JSON-lines text. Lines for other groups are ignored; a malformed record
/// is skipped rather than guessed at.
pub fn parse_medians(text: &str, group: &str) -> Vec<(String, u64)> {
    let tag = format!("\"group\":\"{group}\"");
    let mut out = Vec::new();
    for line in text.lines() {
        if !line.contains(&tag) {
            continue;
        }
        let mut rest = line;
        while let Some(i) = rest.find("\"name\":\"") {
            rest = &rest[i + 8..];
            let Some(j) = rest.find('"') else { break };
            let name = rest[..j].to_string();
            rest = &rest[j..];
            let Some(k) = rest.find("\"median_ns\":") else {
                break;
            };
            rest = &rest[k + 12..];
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            if let Ok(median) = digits.parse::<u64>() {
                out.push((name, median));
            }
        }
    }
    out
}

/// Matches every pinned case against the fresh medians by name.
pub fn compare(pinned: &[(String, u64)], fresh: &[(String, u64)]) -> Vec<CaseCheck> {
    pinned
        .iter()
        .map(|(name, pinned_ns)| CaseCheck {
            name: name.clone(),
            pinned_ns: *pinned_ns,
            fresh_ns: fresh
                .iter()
                .find(|(fname, _)| fname == name)
                .map(|&(_, median)| median),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PINNED: &str = concat!(
        r#"{"group":"clique_all_to_all_round","results":[{"name":"clique_all_to_all_round/n64","samples":10,"min_ns":50,"median_ns":100,"mean_ns":110},{"name":"clique_all_to_all_round/n256","samples":10,"min_ns":900,"median_ns":1000,"mean_ns":1010}]}"#,
        "\n",
        r#"{"group":"beeping_round","results":[{"name":"beeping_round/n1024","samples":10,"min_ns":5,"median_ns":7,"mean_ns":8}]}"#,
        "\n",
    );

    #[test]
    fn parses_only_the_requested_group() {
        let medians = parse_medians(PINNED, "clique_all_to_all_round");
        assert_eq!(
            medians,
            vec![
                ("clique_all_to_all_round/n64".to_string(), 100),
                ("clique_all_to_all_round/n256".to_string(), 1000),
            ]
        );
        assert_eq!(
            parse_medians(PINNED, "beeping_round"),
            vec![("beeping_round/n1024".to_string(), 7)]
        );
        assert!(parse_medians(PINNED, "absent_group").is_empty());
    }

    #[test]
    fn regression_threshold_is_a_strict_percentage() {
        let case = CaseCheck {
            name: "g/n".to_string(),
            pinned_ns: 1000,
            fresh_ns: Some(1250),
        };
        assert!(!case.regressed(25), "exactly +25% is allowed");
        let case = CaseCheck {
            fresh_ns: Some(1251),
            ..case
        };
        assert!(case.regressed(25), "+25.1% fails");
    }

    #[test]
    fn missing_and_faster_cases() {
        let pinned = parse_medians(PINNED, "clique_all_to_all_round");
        let fresh = vec![("clique_all_to_all_round/n64".to_string(), 40u64)];
        let checks = compare(&pinned, &fresh);
        assert_eq!(checks.len(), 2);
        assert!(!checks[0].regressed(25), "6x faster passes");
        assert!(checks[1].regressed(25), "vanished case fails the gate");
        assert_eq!(checks[1].fresh_ns, None);
    }
}
