//! Experiment binary: see `cc_mis_bench::experiments::e2_delta_scaling`.
fn main() {
    let quick = cc_mis_bench::quick_mode();
    let tables = cc_mis_bench::experiments::e2_delta_scaling::run(quick);
    cc_mis_bench::experiments::emit("e2_delta_scaling", &tables);
}
