//! Experiment binary: see `cc_mis_bench::experiments::e7_exponentiation`.
fn main() {
    let quick = cc_mis_bench::quick_mode();
    let tables = cc_mis_bench::experiments::e7_exponentiation::run(quick);
    cc_mis_bench::experiments::emit("e7_exponentiation", &tables);
}
