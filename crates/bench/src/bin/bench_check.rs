//! Benchmark regression gate for `scripts/bench.sh --check`.
//!
//! Usage: `bench_check <pinned.json> <fresh.json> [group] [max_regress_pct]`
//!
//! Compares the fresh harness medians against the pinned ones for `group`
//! (default `clique_all_to_all_round`) and exits non-zero if any case is
//! more than `max_regress_pct` percent slower (default 25) or missing.

use cc_mis_bench::regress::{compare, parse_medians};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (Some(pinned_path), Some(fresh_path)) = (args.get(1), args.get(2)) else {
        eprintln!("usage: bench_check <pinned.json> <fresh.json> [group] [max_regress_pct]");
        return ExitCode::FAILURE;
    };
    let group = args
        .get(3)
        .map_or("clique_all_to_all_round", String::as_str);
    let max_pct: u64 = match args.get(4).map_or(Ok(25), |s| s.parse()) {
        Ok(pct) => pct,
        Err(_) => {
            eprintln!("bench_check: max_regress_pct must be an integer percentage");
            return ExitCode::FAILURE;
        }
    };

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            None
        }
    };
    let (Some(pinned_text), Some(fresh_text)) = (read(pinned_path), read(fresh_path)) else {
        return ExitCode::FAILURE;
    };

    let pinned = parse_medians(&pinned_text, group);
    if pinned.is_empty() {
        eprintln!(
            "bench_check: no `{group}` medians in {pinned_path}; re-pin via scripts/bench.sh"
        );
        return ExitCode::FAILURE;
    }
    let fresh = parse_medians(&fresh_text, group);

    let mut failed = false;
    for case in compare(&pinned, &fresh) {
        let regressed = case.regressed(max_pct);
        failed |= regressed;
        let verdict = if regressed { "REGRESSED" } else { "ok" };
        match case.fresh_ns {
            Some(fresh_ns) => println!(
                "{:<40} pinned {:>12} ns   fresh {:>12} ns   {verdict}",
                case.name, case.pinned_ns, fresh_ns
            ),
            None => println!(
                "{:<40} pinned {:>12} ns   fresh      MISSING   {verdict}",
                case.name, case.pinned_ns
            ),
        }
    }
    if failed {
        eprintln!("bench_check: `{group}` medians regressed >{max_pct}% vs {pinned_path}");
        return ExitCode::FAILURE;
    }
    println!("bench_check: `{group}` within {max_pct}% of pinned medians");
    ExitCode::SUCCESS
}
