//! Experiment binary: see `cc_mis_bench::experiments::a1_ablation`.
fn main() {
    let quick = cc_mis_bench::quick_mode();
    let tables = cc_mis_bench::experiments::a1_ablation::run(quick);
    cc_mis_bench::experiments::emit("a1_ablation", &tables);
}
