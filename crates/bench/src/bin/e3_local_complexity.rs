//! Experiment binary: see `cc_mis_bench::experiments::e3_local_complexity`.
fn main() {
    let quick = cc_mis_bench::quick_mode();
    let tables = cc_mis_bench::experiments::e3_local_complexity::run(quick);
    cc_mis_bench::experiments::emit("e3_local_complexity", &tables);
}
