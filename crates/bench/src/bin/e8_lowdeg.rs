//! Experiment binary: see `cc_mis_bench::experiments::e8_lowdeg`.
fn main() {
    let quick = cc_mis_bench::quick_mode();
    let tables = cc_mis_bench::experiments::e8_lowdeg::run(quick);
    cc_mis_bench::experiments::emit("e8_lowdeg", &tables);
}
