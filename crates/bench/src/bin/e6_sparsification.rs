//! Experiment binary: see `cc_mis_bench::experiments::e6_sparsification`.
fn main() {
    let quick = cc_mis_bench::quick_mode();
    let tables = cc_mis_bench::experiments::e6_sparsification::run(quick);
    cc_mis_bench::experiments::emit("e6_sparsification", &tables);
}
