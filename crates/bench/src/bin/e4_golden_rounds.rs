//! Experiment binary: see `cc_mis_bench::experiments::e4_golden_rounds`.
fn main() {
    let quick = cc_mis_bench::quick_mode();
    let tables = cc_mis_bench::experiments::e4_golden_rounds::run(quick);
    cc_mis_bench::experiments::emit("e4_golden_rounds", &tables);
}
