//! Experiment binary: see `cc_mis_bench::experiments::e11_reductions`.
fn main() {
    let quick = cc_mis_bench::quick_mode();
    let tables = cc_mis_bench::experiments::e11_reductions::run(quick);
    cc_mis_bench::experiments::emit("e11_reductions", &tables);
}
