//! Experiment binary: see `cc_mis_bench::experiments::e1_headline`.
fn main() {
    let quick = cc_mis_bench::quick_mode();
    let tables = cc_mis_bench::experiments::e1_headline::run(quick);
    cc_mis_bench::experiments::emit("e1_headline", &tables);
}
