//! Experiment binary: see `cc_mis_bench::experiments::e10_accounting`.
fn main() {
    let quick = cc_mis_bench::quick_mode();
    let tables = cc_mis_bench::experiments::e10_accounting::run(quick);
    cc_mis_bench::experiments::emit("e10_accounting", &tables);
}
