//! Experiment binary: see `cc_mis_bench::experiments::e5_shattering`.
fn main() {
    let quick = cc_mis_bench::quick_mode();
    let tables = cc_mis_bench::experiments::e5_shattering::run(quick);
    cc_mis_bench::experiments::emit("e5_shattering", &tables);
}
