//! Experiment binary: see `cc_mis_bench::experiments::e12_lca`.
fn main() {
    let quick = cc_mis_bench::quick_mode();
    let tables = cc_mis_bench::experiments::e12_lca::run(quick);
    cc_mis_bench::experiments::emit("e12_lca", &tables);
}
