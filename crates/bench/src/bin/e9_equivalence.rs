//! Experiment binary: see `cc_mis_bench::experiments::e9_equivalence`.
fn main() {
    let quick = cc_mis_bench::quick_mode();
    let tables = cc_mis_bench::experiments::e9_equivalence::run(quick);
    cc_mis_bench::experiments::emit("e9_equivalence", &tables);
}
