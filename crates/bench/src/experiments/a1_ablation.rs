//! **A1 — ablation of the sparsification parameters.**
//!
//! DESIGN.md's design choices under the knife:
//!
//! * **Phase length `P`** — `P = 1` is the paper's own constant at feasible
//!   `n`; larger `P` packs more iterations per phase (fewer phases) but
//!   inflates the gathered balls (`D^{2P}` growth) and, once ball bits
//!   approach the `n·B` capacity, routing rounds explode — the `n^δ`
//!   condition of Lemma 2.14 becoming binding is directly visible here.
//! * **Super-heavy threshold `L = 2^ℓ`** — smaller `ℓ` stabilizes more
//!   nodes deterministically (cheaper phases, sparser `S`) at the cost of
//!   more iterations; the paper's relationship is `ℓ = 2P`.

use cc_mis_analysis::table::Table;
use cc_mis_core::clique_mis::{run_clique_mis, CliqueMisParams};
use cc_mis_core::common::iterations_for_max_degree;
use cc_mis_core::sparsified::SparsifiedParams;
use cc_mis_graph::checks;

use crate::Family;

/// Runs A1 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 96 } else { 300 };
    let phase_lens: &[usize] = if quick { &[1, 2] } else { &[1, 2, 3] };
    let sh_exps: &[u32] = if quick { &[2] } else { &[1, 2, 3, 4, 6] };

    let g = Family::GnpAvgDeg(12).build(n, 17);
    let budget = iterations_for_max_degree(g.max_degree(), 6.0);

    let mut t = Table::new(
        format!(
            "A1: phase length P × super-heavy threshold 2^ℓ (G({n},12/n), Δ = {}, single seed)",
            g.max_degree()
        ),
        &[
            "P",
            "ℓ",
            "rounds",
            "iters",
            "phases",
            "max ball",
            "max gather rounds",
            "residual edges",
        ],
    );
    for &p in phase_lens {
        for &sh in sh_exps {
            let params = SparsifiedParams {
                phase_len: p,
                super_heavy_log2: sh,
                max_iterations: budget,
                record_trace: false,
            };
            let out = run_clique_mis(
                &g,
                &CliqueMisParams {
                    sparsified: Some(params),
                    skip_cleanup: false,
                },
                1,
            );
            assert!(checks::is_maximal_independent_set(&g, &out.mis));
            let max_ball = out
                .phases
                .iter()
                .map(|x| x.max_ball_edges)
                .max()
                .unwrap_or(0);
            let max_gather = out
                .phases
                .iter()
                .map(|x| x.gather_rounds)
                .max()
                .unwrap_or(0);
            t.row(&[
                p.to_string(),
                sh.to_string(),
                out.rounds.to_string(),
                out.iterations.to_string(),
                out.phases.len().to_string(),
                max_ball.to_string(),
                max_gather.to_string(),
                out.residual_edges.to_string(),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn a1_smoke() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 2);
    }
}
