//! **E8 — the low-degree fast path (Lemma 2.15) and the Theorem 1.1
//! case split.**
//!
//! When `Δ ≤ 2^{c√(δ log n)}` *and* the `O(log Δ)`-hop balls stay below
//! `n^δ`, gather-and-replay solves MIS in `O(log log Δ)` routing
//! invocations. Both conditions matter:
//!
//! * On **locally finite** families (cycles, grids, trees) balls grow
//!   polynomially with the radius, the capacity condition holds, and the
//!   measured gather is a handful of doubling steps of few rounds each.
//! * On **expander-like** families (random regular), *any* `Θ(log Δ)`
//!   radius covers the entire graph once `n ≤ Δ^{O(log Δ)}` — at laptop
//!   scale the ball is the whole graph and the measured rounds blow up.
//!   The paper's `n^δ` budget needs astronomically larger `n` there; the
//!   table reports the blow-up honestly.
//!
//! The second table records which branch the Theorem 1.1 dispatcher takes.

use cc_mis_analysis::table::Table;
use cc_mis_core::lowdeg::{run_lowdeg, run_theorem_1_1, LowDegParams, Strategy};
use cc_mis_graph::{checks, generators, Graph};

use crate::Family;

/// Runs E8 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 128 } else { 1024 };

    let mut t = Table::new(
        format!(
            "E8: Lemma 2.15 fast path (n ≈ {n}; 'regular' rows are the expander counterexample)"
        ),
        &[
            "family",
            "Δ",
            "replay iters",
            "gather steps",
            "max ball edges",
            "gather rounds",
            "total rounds",
            "residual",
        ],
    );
    let families: Vec<(&str, Graph)> = if quick {
        vec![
            ("cycle", generators::cycle(n)),
            ("grid", generators::grid(11, 12)),
        ]
    } else {
        vec![
            ("cycle", generators::cycle(n)),
            ("grid", generators::grid(32, 32)),
            ("tree-2", generators::balanced_tree(2, 9)),
            ("caterpillar", generators::caterpillar(256, 3)),
            ("regular-3", generators::random_regular(n, 3, 11)),
            ("regular-4", generators::random_regular(n, 4, 11)),
        ]
    };
    for (name, g) in &families {
        let out = run_lowdeg(g, &LowDegParams::default(), 3);
        assert!(checks::is_maximal_independent_set(g, &out.mis));
        t.row(&[
            name.to_string(),
            g.max_degree().to_string(),
            out.iterations.to_string(),
            out.gather_steps.to_string(),
            out.max_ball_edges.to_string(),
            out.gather_rounds.to_string(),
            out.rounds.to_string(),
            out.residual_nodes.to_string(),
        ]);
    }

    let mut t2 = Table::new(
        format!("E8b: Theorem 1.1 dispatcher branch vs Δ (n = {n}, threshold 2^√log2 n)"),
        &["family", "Δ", "branch", "rounds"],
    );
    let families: &[Family] = if quick {
        &[Family::Regular(3), Family::GnpAvgDeg(32)]
    } else {
        &[
            Family::Grid,
            Family::Regular(3),
            Family::GnpAvgDeg(8),
            Family::GnpAvgDeg(32),
            Family::GnpPowerDelta(50),
            Family::Star,
        ]
    };
    for f in families {
        let g = f.build(n, 13);
        let (out, strategy) = run_theorem_1_1(&g, 4);
        assert!(checks::is_maximal_independent_set(&g, &out.mis));
        t2.row(&[
            f.label(),
            g.max_degree().to_string(),
            match strategy {
                Strategy::LowDegree => "low-degree (L2.15)".to_string(),
                Strategy::Sparsified => "sparsified (§2.4)".to_string(),
            },
            out.ledger.rounds.to_string(),
        ]);
    }
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_smoke() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 2);
        assert_eq!(tables[1].len(), 2);
    }
}
