//! **E7 — graph exponentiation (Lemma 2.14).**
//!
//! Learning the `r`-hop neighborhood costs `⌈log₂ r⌉` doubling steps, each
//! a single Lenzen-routing invocation — `O(1)` rounds per step whenever
//! the neighborhood stays far below `n^δ`. We sweep `r` on bounded-degree
//! graphs and report steps (expected: `⌈log₂ r⌉`), measured routing
//! rounds, and rounds per step; a second table shows how rounds-per-step
//! grow once ball bits approach the `n·B` per-node capacity.

use cc_mis_analysis::table::{f2, Table};
use cc_mis_core::exponentiation::gather_balls;
use cc_mis_graph::generators;
use cc_mis_sim::bits::standard_bandwidth;
use cc_mis_sim::clique::CliqueEngine;

/// Runs E7 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 128 } else { 1024 };
    let radii: &[usize] = if quick {
        &[2, 4]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };

    let mut t = Table::new(
        format!("E7: r-hop gathering on a cycle (n = {n}, 20-bit records)"),
        &[
            "radius",
            "steps",
            "expected ⌈log2 r⌉",
            "rounds",
            "rounds/step",
            "max ball edges",
        ],
    );
    for &r in radii {
        let g = generators::cycle(n);
        let mut engine = CliqueEngine::strict(n, standard_bandwidth(n));
        let res = gather_balls(&mut engine, &g, &vec![true; n], r, 20);
        let expected = if r <= 1 {
            0
        } else {
            (r as f64).log2().ceil() as u64
        };
        t.row(&[
            r.to_string(),
            res.steps.to_string(),
            expected.to_string(),
            res.rounds.to_string(),
            f2(res.rounds as f64 / res.steps.max(1) as f64),
            res.max_ball_edges.to_string(),
        ]);
    }

    let mut t2 = Table::new(
        format!("E7b: capacity pressure — radius-4 gathering vs degree (n = {n})"),
        &["d", "rounds", "max ball edges", "ball bits / (n·B)"],
    );
    let degrees: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8, 16, 32] };
    let record_bits = 24u64;
    for &d in degrees {
        let g = generators::random_regular(n, d, 3);
        let mut engine = CliqueEngine::strict(n, standard_bandwidth(n));
        let res = gather_balls(&mut engine, &g, &vec![true; n], 4, record_bits);
        let capacity = n as u64 * standard_bandwidth(n);
        let pressure = res.max_ball_edges as u64 * record_bits;
        t2.row(&[
            d.to_string(),
            res.rounds.to_string(),
            res.max_ball_edges.to_string(),
            f2(pressure as f64 / capacity as f64),
        ]);
    }
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_smoke() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 2);
    }
}
