//! **E3 — local complexity of the beeping MIS (Theorem 2.1).**
//!
//! The theorem: each node `v` decides within
//! `T = C(log deg(v) + log 1/ε)` iterations w.p. `≥ 1-ε`. Two measurable
//! consequences:
//!
//! 1. Mean (and p90) decision time grows linearly in `log deg` — measured
//!    on random regular graphs where every node has the same degree.
//! 2. The tail is exponential: the fraction of nodes still undecided after
//!    `t` iterations decays like `e^{-λ t}` beyond the `O(log Δ)` knee —
//!    fitted on a `G(n, p)` instance.

use cc_mis_analysis::stats::{fit_exponential_decay, fit_line, Summary};
use cc_mis_analysis::table::{f2, f3, Table};
use cc_mis_core::beeping_mis::{run_beeping, BeepingParams};
use cc_mis_graph::generators;

use crate::default_trials;

/// Runs E3 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 128 } else { 1024 };
    let degrees: &[usize] = if quick {
        &[4, 16]
    } else {
        &[2, 4, 8, 16, 32, 64]
    };
    let trials = if quick { 2 } else { default_trials() };

    // Part 1: decision time vs degree on regular graphs.
    let mut t1 = Table::new(
        format!("E3a: beeping-MIS decision time vs degree (regular graphs, n = {n})"),
        &["d", "log2 d", "mean removal iter", "p90", "max"],
    );
    let mut pts = Vec::new();
    for &d in degrees {
        let mut removal: Vec<f64> = Vec::new();
        for seed in 0..trials as u64 {
            let g = generators::random_regular(n, d, 100 + seed);
            let run = run_beeping(&g, &BeepingParams::for_graph(&g), seed);
            assert!(run.residual.is_empty(), "node left undecided");
            removal.extend(
                run.removed_at
                    .iter()
                    .map(|r| r.expect("decided") as f64 + 1.0),
            );
        }
        let s = Summary::of(&removal);
        let logd = (d.max(2) as f64).log2();
        pts.push((logd, s.mean));
        t1.row(&[d.to_string(), f2(logd), f2(s.mean), f2(s.p90), f2(s.max)]);
    }
    let mut shape = Table::new(
        "E3a fit: mean decision time ≈ C·log2(deg) + c0 (Theorem 2.1 shape)",
        &["C (slope)", "c0", "r^2"],
    );
    if pts.len() >= 2 {
        let fit = fit_line(&pts);
        shape.row(&[f2(fit.slope), f2(fit.intercept), f3(fit.r_squared)]);
    }

    // Part 2: survival tail on G(n, p).
    let g = generators::erdos_renyi_gnp(n, 16.0 / n as f64, 5);
    let mut survivors_at: Vec<f64> = Vec::new();
    let mut max_t = 0usize;
    let mut runs = Vec::new();
    for seed in 0..trials as u64 {
        let run = run_beeping(&g, &BeepingParams::for_graph(&g), 200 + seed);
        max_t = max_t.max(run.iterations as usize);
        runs.push(run);
    }
    for t in 0..max_t {
        let mut undecided = 0usize;
        let mut total = 0usize;
        for run in &runs {
            total += g.node_count();
            undecided += run
                .removed_at
                .iter()
                .filter(|r| r.map(|x| x as usize >= t).unwrap_or(true))
                .count();
        }
        survivors_at.push(undecided as f64 / total as f64);
    }
    let mut t2 = Table::new(
        format!("E3b: survival fraction after t iterations (G(n,16/n), n = {n})"),
        &["t", "undecided fraction"],
    );
    for (t, s) in survivors_at.iter().enumerate() {
        t2.row(&[t.to_string(), f3(*s)]);
    }
    let mut tail = Table::new(
        "E3b fit: undecided(t) ≈ a·exp(-λt) on the tail (exponential decay)",
        &["a", "lambda", "r^2"],
    );
    let tail_points: Vec<(f64, f64)> = survivors_at
        .iter()
        .enumerate()
        .skip(survivors_at.len() / 3) // beyond the knee
        .map(|(t, &s)| (t as f64, s))
        .collect();
    if tail_points.iter().filter(|p| p.1 > 0.0).count() >= 2 {
        let (a, lambda, r2) = fit_exponential_decay(&tail_points);
        tail.row(&[f3(a), f3(lambda), f3(r2)]);
    }

    vec![t1, shape, t2, tail]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e3_smoke() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 4);
        assert!(!tables[0].is_empty());
    }
}
