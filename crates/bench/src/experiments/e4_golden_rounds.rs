//! **E4 — golden rounds and wrong moves (Lemmas 2.3–2.5, 2.8–2.10).**
//!
//! The paper's analysis engine: during a node's undecided lifetime `T`,
//! at least `0.05 T` rounds are *golden* (w.p. `≥ 1-ε/2`, Lemma 2.3/2.8),
//! and each round is a *wrong move* with probability at most `0.02`
//! (Lemmas 2.4/2.5 and 2.9/2.10). We instrument both the plain beeping
//! algorithm (§2.2) and the sparsified variant (§2.3) and report the
//! per-node golden-round fraction and the empirical wrong-move rate.

use cc_mis_analysis::stats::Summary;
use cc_mis_analysis::table::{f3, Table};
use cc_mis_core::beeping_mis::{run_beeping, BeepingParams};
use cc_mis_core::sparsified::{run_sparsified, SparsifiedParams};
use cc_mis_graph::generators;

use crate::default_trials;

/// Runs E4 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 128 } else { 512 };
    let trials = if quick { 2 } else { default_trials() };

    let mut t = Table::new(
        format!("E4: golden-round fraction & wrong-move rate (n = {n}, G(n,16/n))"),
        &[
            "algorithm",
            "seed",
            "golden frac (mean)",
            "golden frac (min)",
            "frac nodes ≥ 0.05",
            "wrong-move rate",
        ],
    );

    for seed in 0..trials as u64 {
        let g = generators::erdos_renyi_gnp(n, 16.0 / n as f64, 300 + seed);

        // §2.2 beeping algorithm.
        let params = BeepingParams {
            max_iterations: BeepingParams::for_graph(&g).max_iterations,
            record_trace: true,
        };
        let run = run_beeping(&g, &params, seed);
        let (fracs, wrong_rate) = fractions(
            &run.trace.golden1,
            &run.trace.golden2,
            &run.trace.wrong_moves,
            &run.trace.undecided_iterations,
        );
        let s = Summary::of(&fracs);
        let above = fracs.iter().filter(|&&f| f >= 0.05).count() as f64 / fracs.len() as f64;
        t.row(&[
            "beeping (§2.2)".to_string(),
            seed.to_string(),
            f3(s.mean),
            f3(s.min),
            f3(above),
            f3(wrong_rate),
        ]);

        // §2.3 sparsified algorithm.
        let mut sp = SparsifiedParams::for_graph(&g);
        sp.record_trace = true;
        let run = run_sparsified(&g, &sp, seed);
        let zeros = vec![0u64; g.node_count()];
        let (fracs, _) = fractions(
            &run.trace.golden1,
            &run.trace.golden2,
            &zeros,
            &run.trace.undecided_iterations,
        );
        let s = Summary::of(&fracs);
        let above = fracs.iter().filter(|&&f| f >= 0.05).count() as f64 / fracs.len() as f64;
        t.row(&[
            "sparsified (§2.3)".to_string(),
            seed.to_string(),
            f3(s.mean),
            f3(s.min),
            f3(above),
            "n/a".to_string(),
        ]);
    }
    vec![t]
}

/// Per-node golden fraction (goldens / undecided-lifetime) and the pooled
/// wrong-move rate (wrong moves / node-iterations).
fn fractions(golden1: &[u64], golden2: &[u64], wrong: &[u64], lifetime: &[u64]) -> (Vec<f64>, f64) {
    let mut fracs = Vec::new();
    let mut wrong_total = 0u64;
    let mut life_total = 0u64;
    for i in 0..golden1.len() {
        if lifetime[i] > 0 {
            fracs.push((golden1[i] + golden2[i]) as f64 / lifetime[i] as f64);
            wrong_total += wrong[i];
            life_total += lifetime[i];
        }
    }
    let rate = if life_total > 0 {
        wrong_total as f64 / life_total as f64
    } else {
        0.0
    };
    (fracs, rate)
}

#[cfg(test)]
mod tests {
    #[test]
    fn e4_smoke() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].len() >= 2);
    }
}
