//! **E5 — shattering (Lemma 2.11).**
//!
//! After `Θ(log Δ)` iterations of the sparsified algorithm, the graph
//! induced by undecided nodes has `O(n)` edges w.h.p. We sweep `n` at
//! fixed average degree and report residual edges (absolute and per
//! vertex), plus the largest residual component — the quantity that makes
//! the leader clean-up `O(1)` rounds.

use cc_mis_analysis::experiment::run_trials;
use cc_mis_analysis::table::{f2, f3, Table};
use cc_mis_core::sparsified::{run_sparsified, SparsifiedParams};
use cc_mis_graph::ops::{component_sizes, induced_subgraph};
use cc_mis_graph::Graph;

use crate::{default_trials, Family};

/// Runs E5 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick {
        &[128, 256]
    } else {
        &[256, 512, 1024, 2048, 4096]
    };
    let trials = if quick { 2 } else { default_trials() };
    let family = Family::GnpAvgDeg(16);

    let mut t = Table::new(
        "E5: residual after Θ(log Δ) sparsified iterations (G(n,16/n), means over seeds)",
        &[
            "n",
            "m",
            "iters",
            "residual nodes",
            "residual edges",
            "edges / n",
            "largest comp",
        ],
    );
    for &n in sizes {
        let g = family.build(n, 9);
        let mut nodes = Vec::new();
        let mut comps = Vec::new();
        let mut iters = Vec::new();
        let edges = run_trials(400, trials, |seed| {
            let run = run_sparsified(&g, &SparsifiedParams::for_graph(&g), seed);
            nodes.push(run.residual.len() as f64);
            iters.push(run.iterations as f64);
            comps.push(largest_residual_component(&g, &run.residual) as f64);
            run.residual_edge_count as f64
        });
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let edge_vals: Vec<f64> = edges.iter().map(|t| t.value).collect();
        t.row(&[
            n.to_string(),
            g.edge_count().to_string(),
            f2(mean(&iters)),
            f2(mean(&nodes)),
            f2(mean(&edge_vals)),
            f3(mean(&edge_vals) / n as f64),
            f2(mean(&comps)),
        ]);
    }
    vec![t]
}

fn largest_residual_component(g: &Graph, residual: &[cc_mis_graph::NodeId]) -> usize {
    if residual.is_empty() {
        return 0;
    }
    let (sub, _) = induced_subgraph(g, residual);
    component_sizes(&sub).first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn e5_smoke() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 2);
    }
}
