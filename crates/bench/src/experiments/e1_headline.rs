//! **E1 — the headline result (Theorem 1.1).**
//!
//! Compares, across graph sizes with `Δ ≈ √n`:
//!
//! * Luby's `O(log n)` algorithm (the §1.1 baseline, CONGEST rounds —
//!   identical cost in the clique),
//! * the `O(log Δ)` congested-clique algorithm of [Ghaffari, SODA'16]
//!   (§1.1's previous best, which Theorem 1.1 improves on), and
//! * this paper's algorithm (`Õ(√(log Δ))` asymptotically).
//!
//! The *shape* claims to check: the new algorithm's **iteration count**
//! tracks `O(log Δ)` like `[13]`'s but is packed into `⌈iterations / P⌉`
//! phases, each simulated in `O(log log n)` routing invocations; measured
//! clique rounds additionally pay the routing load, which at laptop scale
//! (`n ≤ 2^{13}`, i.e. far below the `n^δ` capacity regime) is the
//! dominant term. Both the formula-level counts (iterations, phases) and
//! the measured rounds are reported.

use cc_mis_analysis::experiment::run_trials;
use cc_mis_analysis::table::{f2, Table};
use cc_mis_core::clique_mis::{run_clique_mis, CliqueMisParams};
use cc_mis_core::ghaffari16::{run_ghaffari16_clique, Ghaffari16Params};
use cc_mis_core::luby::{run_luby, LubyParams};
use cc_mis_graph::checks;

use crate::{default_trials, Family};

/// Runs E1 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick {
        &[128, 256]
    } else {
        &[256, 512, 1024, 2048, 4096]
    };
    let trials = if quick { 2 } else { default_trials() };
    let family = Family::GnpPowerDelta(50); // Δ ≈ √n

    let mut table = Table::new(
        "E1: MIS round complexity, Δ ≈ √n (means over seeds)",
        &[
            "n",
            "Δ",
            "luby rounds",
            "g16-clique rounds",
            "thm1.1 rounds",
            "thm1.1 formula rounds",
            "thm1.1 iters",
            "thm1.1 phases",
        ],
    );

    for &n in sizes {
        let g = family.build(n, 42);
        let delta = g.max_degree();

        let luby = run_trials(1, trials, |seed| {
            let out = run_luby(&g, &LubyParams::for_graph(&g), seed);
            assert!(checks::is_maximal_independent_set(&g, &out.mis));
            out.ledger.rounds as f64
        });
        let g16 = run_trials(1, trials, |seed| {
            let out = run_ghaffari16_clique(&g, &Ghaffari16Params::for_graph(&g), seed);
            assert!(checks::is_maximal_independent_set(&g, &out.mis));
            out.ledger.rounds as f64
        });
        let mut iters = Vec::new();
        let mut phases = Vec::new();
        let mut formula = Vec::new();
        let thm = run_trials(1, trials, |seed| {
            let out = run_clique_mis(&g, &CliqueMisParams::default(), seed);
            assert!(checks::is_maximal_independent_set(&g, &out.mis));
            iters.push(out.iterations as f64);
            phases.push(out.phases.len() as f64);
            formula.push(formula_rounds(&out));
            out.rounds as f64
        });

        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        table.row(&[
            n.to_string(),
            delta.to_string(),
            f2(mean(&luby.iter().map(|t| t.value).collect::<Vec<_>>())),
            f2(mean(&g16.iter().map(|t| t.value).collect::<Vec<_>>())),
            f2(mean(&thm.iter().map(|t| t.value).collect::<Vec<_>>())),
            f2(mean(&formula)),
            f2(mean(&iters)),
            f2(mean(&phases)),
        ]);
    }
    vec![table]
}

/// The round bill under the paper's asymptotic routing guarantee: each
/// phase costs its 4 fixed rounds plus `O(1)` rounds per doubling step
/// (we charge 2), i.e. what the measured bill converges to once gathered
/// balls are far below `n^δ` — plus a constant 8 for the clean-up. This is
/// the `O(log Δ · log log n / √(log n))` quantity of Theorem 1.1.
fn formula_rounds(out: &cc_mis_core::clique_mis::CliqueMisResult) -> f64 {
    let per_phase: u64 = out
        .phases
        .iter()
        .map(|ph| {
            let r = (2 * ph.len).max(1) as f64;
            4 + 2 * (r.log2().ceil() as u64)
        })
        .sum();
    (per_phase + 8) as f64
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_smoke() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 2);
    }
}
