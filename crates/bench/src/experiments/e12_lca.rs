//! **E12 — the local-computation-algorithm connection (§1.2).**
//!
//! §1.2 observes that Theorem 2.1's locality turns the beeping MIS into a
//! *local computation algorithm* à la [Parnas–Ron] / [Rubinfeld et al.]:
//! an MIS membership query probes only an `O(log deg)`-radius ball. Two
//! measurable claims:
//!
//! 1. **Per-query probes are independent of `n`** on bounded-degree
//!    graphs (sweep `n` at fixed degree).
//! 2. Probes grow with degree roughly like `d^{O(log d)}` — fast, which is
//!    exactly the "relatively open" high-degree regime the paper says its
//!    sparsification might improve.
//!
//! Every query is verified against the global execution.

use cc_mis_analysis::stats::Summary;
use cc_mis_analysis::table::{f2, Table};
use cc_mis_core::beeping_mis::{run_beeping, BeepingParams};
use cc_mis_core::lca::{MisAnswer, MisOracle};
use cc_mis_graph::generators;

/// Runs E12 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick {
        &[200, 400]
    } else {
        &[500, 1000, 2000, 4000, 8000]
    };
    let queries = if quick { 20 } else { 100 };

    // Part 1: probes vs n at fixed degree 4.
    let mut t1 = Table::new(
        "E12a: LCA probes per query vs n (4-regular graphs, 100 queries, verified)",
        &["n", "mean probes", "p90", "max", "mean ball nodes"],
    );
    for &n in sizes {
        let g = generators::random_regular(n, 4, 7);
        let seed = 3;
        let global = run_beeping(
            &g,
            &BeepingParams {
                max_iterations: 100_000,
                record_trace: false,
            },
            seed,
        );
        let oracle = MisOracle::new(&g, seed);
        let mut probes = Vec::new();
        let mut balls = Vec::new();
        for q in 0..queries {
            let v = cc_mis_graph::NodeId::new((q * (n / queries)) as u32);
            let (answer, stats) = oracle.query(v);
            let expected = if global.joined_at[v.index()].is_some() {
                MisAnswer::InMis
            } else {
                MisAnswer::Dominated
            };
            assert_eq!(answer, expected, "n={n} query {v}");
            probes.push(stats.probes as f64);
            balls.push(stats.ball_nodes as f64);
        }
        let s = Summary::of(&probes);
        let sb = Summary::of(&balls);
        t1.row(&[n.to_string(), f2(s.mean), f2(s.p90), f2(s.max), f2(sb.mean)]);
    }

    // Part 2: probes vs degree at fixed n.
    let n = if quick { 300 } else { 1500 };
    let degrees: &[usize] = if quick { &[3, 6] } else { &[2, 3, 4, 6, 8, 12] };
    let mut t2 = Table::new(
        format!("E12b: LCA probes per query vs degree (n = {n}, verified)"),
        &["d", "mean probes", "p90", "mean radius"],
    );
    for &d in degrees {
        let g = generators::random_regular(n, d, 9);
        let oracle = MisOracle::new(&g, 1);
        let mut probes = Vec::new();
        let mut radii = Vec::new();
        for q in 0..queries {
            let v = cc_mis_graph::NodeId::new((q * (n / queries)) as u32);
            let (_, stats) = oracle.query(v);
            probes.push(stats.probes as f64);
            radii.push(stats.radius as f64);
        }
        let s = Summary::of(&probes);
        t2.row(&[
            d.to_string(),
            f2(s.mean),
            f2(s.p90),
            f2(Summary::of(&radii).mean),
        ]);
    }
    vec![t1, t2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e12_smoke() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 2);
    }
}
