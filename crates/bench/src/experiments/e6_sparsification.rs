//! **E6 — local sparsity of the sampled set (Lemma 2.12).**
//!
//! W.h.p. every `s ∈ S` has at most `2^{1 + √(δ log n)/2}` neighbors in
//! `S`. In our parameterization (`P = √(δ log n)/10`) the bound reads
//! `2^{1 + 5P/2}`. We sweep `n` and `P`, record the maximum `G[S]`-degree
//! over every phase and seed, and compare against the bound; we also
//! report the gathered-ball sizes the sparsity translates into.

use cc_mis_analysis::table::{f2, Table};
use cc_mis_core::clique_mis::{run_clique_mis, CliqueMisParams};
use cc_mis_core::sparsified::SparsifiedParams;
use cc_mis_graph::checks;

use crate::{default_trials, Family};

/// Runs E6 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let sizes: &[usize] = if quick {
        &[128]
    } else {
        &[256, 512, 1024, 2048]
    };
    let phase_lens: &[usize] = if quick { &[1, 2] } else { &[1, 2, 3] };
    let trials = if quick { 2 } else { default_trials() };

    let mut t = Table::new(
        "E6: max |N(s) ∩ S| over phases & seeds vs Lemma 2.12 bound (G(n,16/n))",
        &[
            "n",
            "P",
            "bound 2^(1+5P/2)",
            "max S-degree",
            "max |S|",
            "max ball edges",
        ],
    );
    for &n in sizes {
        let g = Family::GnpAvgDeg(16).build(n, 21);
        for &p in phase_lens {
            // P ≥ 2 leaves the n^δ capacity regime quickly at this density;
            // at large n a single run takes minutes of wall clock for no
            // additional insight (the A1 ablation covers the blow-up).
            if (p >= 3 && n > 512) || (p >= 2 && n > 1024) {
                continue;
            }
            let params = SparsifiedParams {
                phase_len: p,
                super_heavy_log2: (2 * p) as u32,
                ..SparsifiedParams::for_graph(&g)
            };
            let mut max_sdeg = 0usize;
            let mut max_s = 0usize;
            let mut max_ball = 0usize;
            for seed in 0..trials as u64 {
                let out = run_clique_mis(
                    &g,
                    &CliqueMisParams {
                        sparsified: Some(params),
                        skip_cleanup: false,
                    },
                    500 + seed,
                );
                assert!(checks::is_maximal_independent_set(&g, &out.mis));
                for ph in &out.phases {
                    max_sdeg = max_sdeg.max(ph.max_s_degree);
                    max_s = max_s.max(ph.sampled);
                    max_ball = max_ball.max(ph.max_ball_edges);
                }
            }
            let bound = (1.0 + 2.5 * p as f64).exp2();
            t.row(&[
                n.to_string(),
                p.to_string(),
                f2(bound),
                max_sdeg.to_string(),
                max_s.to_string(),
                max_ball.to_string(),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_smoke() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 2);
    }
}
