//! **E2 — round growth in `Δ` at fixed `n`.**
//!
//! Theorem 1.1's complexity is `O(log Δ · log log Δ / √(log n) + log log Δ)`
//! versus `O(log Δ)` for `[13]` and `O(log n)` for Luby. At fixed `n`, Luby
//! should be flat in `Δ`, while both `[13]` and the new algorithm's
//! *iteration* count grow linearly in `log Δ` — the new algorithm divides
//! its iterations into phases of length `P`, so its phase count grows with
//! slope `1/P` relative to `[13]`'s. We regress each series against
//! `log₂ Δ` and report the fitted slopes.

use cc_mis_analysis::experiment::run_trials;
use cc_mis_analysis::stats::fit_line;
use cc_mis_analysis::table::{f2, Table};
use cc_mis_core::clique_mis::{run_clique_mis, CliqueMisParams};
use cc_mis_core::ghaffari16::{run_ghaffari16_clique, Ghaffari16Params};
use cc_mis_core::luby::{run_luby, LubyParams};
use cc_mis_graph::checks;

use crate::{default_trials, Family};

/// Runs E2 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 256 } else { 2048 };
    let degrees: &[u32] = if quick {
        &[4, 16]
    } else {
        &[4, 8, 16, 32, 64, 128]
    };
    let trials = if quick { 2 } else { default_trials() };

    let mut table = Table::new(
        format!("E2: rounds vs Δ at n = {n} (means over seeds)"),
        &[
            "avg deg",
            "Δ",
            "log2 Δ",
            "luby rounds",
            "g16 iters",
            "thm1.1 iters",
            "thm1.1 phases",
            "thm1.1 rounds",
        ],
    );

    let mut luby_pts = Vec::new();
    let mut g16_pts = Vec::new();
    let mut thm_iter_pts = Vec::new();
    let mut thm_phase_pts = Vec::new();

    for &d in degrees {
        let g = Family::GnpAvgDeg(d).build(n, 7);
        let delta = g.max_degree();
        let logd = (delta.max(2) as f64).log2();

        let mean = |v: Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        let luby = mean(
            run_trials(10, trials, |s| {
                let out = run_luby(&g, &LubyParams::for_graph(&g), s);
                assert!(checks::is_maximal_independent_set(&g, &out.mis));
                out.ledger.rounds as f64
            })
            .iter()
            .map(|t| t.value)
            .collect(),
        );
        let g16 = mean(
            run_trials(10, trials, |s| {
                let out = run_ghaffari16_clique(&g, &Ghaffari16Params::for_graph(&g), s);
                assert!(checks::is_maximal_independent_set(&g, &out.mis));
                out.iterations as f64
            })
            .iter()
            .map(|t| t.value)
            .collect(),
        );
        let mut thm_iters = Vec::new();
        let mut thm_phases = Vec::new();
        let thm_rounds = mean(
            run_trials(10, trials, |s| {
                let out = run_clique_mis(&g, &CliqueMisParams::default(), s);
                assert!(checks::is_maximal_independent_set(&g, &out.mis));
                thm_iters.push(out.iterations as f64);
                thm_phases.push(out.phases.len() as f64);
                out.rounds as f64
            })
            .iter()
            .map(|t| t.value)
            .collect(),
        );
        let thm_i = mean(thm_iters);
        let thm_p = mean(thm_phases);

        luby_pts.push((logd, luby));
        g16_pts.push((logd, g16));
        thm_iter_pts.push((logd, thm_i));
        thm_phase_pts.push((logd, thm_p));
        table.row(&[
            d.to_string(),
            delta.to_string(),
            f2(logd),
            f2(luby),
            f2(g16),
            f2(thm_i),
            f2(thm_p),
            f2(thm_rounds),
        ]);
    }

    let mut fits = Table::new(
        "E2: least-squares slope against log2 Δ (shape check)",
        &["series", "slope", "r^2", "expected shape"],
    );
    if luby_pts.len() >= 2 {
        let fl = fit_line(&luby_pts);
        fits.row(&[
            "luby rounds".to_string(),
            f2(fl.slope),
            f2(fl.r_squared),
            "≈ flat (O(log n))".to_string(),
        ]);
        let fg = fit_line(&g16_pts);
        fits.row(&[
            "g16 iterations".to_string(),
            f2(fg.slope),
            f2(fg.r_squared),
            "linear in log Δ".to_string(),
        ]);
        let ft = fit_line(&thm_iter_pts);
        fits.row(&[
            "thm1.1 iterations".to_string(),
            f2(ft.slope),
            f2(ft.r_squared),
            "linear in log Δ".to_string(),
        ]);
        let fp = fit_line(&thm_phase_pts);
        fits.row(&[
            "thm1.1 phases".to_string(),
            f2(fp.slope),
            f2(fp.r_squared),
            "slope ≈ iters-slope / P".to_string(),
        ]);
    }
    vec![table, fits]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e2_smoke() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 2);
    }
}
