//! **E10 — model-cost accounting.**
//!
//! Every algorithm runs on an engine that enforces its model's bandwidth
//! (`B = O(log n)` per link per round) in strict mode — so the mere fact
//! that these runs complete proves no message ever exceeded the budget.
//! This experiment tabulates rounds, messages, total bits, and the
//! violation counter (always 0 under strict engines) per algorithm on a
//! common workload, plus the per-phase breakdown of the Theorem 1.1 run.

use cc_mis_analysis::table::{f2, Table};
use cc_mis_core::beeping_mis::{run_beeping_to_completion, BeepingParams};
use cc_mis_core::clique_mis::{run_clique_mis, CliqueMisParams};
use cc_mis_core::ghaffari16::{run_ghaffari16, Ghaffari16Params};
use cc_mis_core::luby::{run_luby, LubyParams};
use cc_mis_core::sparsified::{run_sparsified_with_cleanup, SparsifiedParams};
use cc_mis_graph::checks;
use cc_mis_sim::bits::standard_bandwidth;

use crate::Family;

/// Runs E10 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 128 } else { 512 };
    let seed = 77;
    let g = Family::GnpAvgDeg(16).build(n, 55);
    let b = standard_bandwidth(n);

    let mut t = Table::new(
        format!("E10: cost accounting on G({n},16/n), B = {b} bits (single seed)"),
        &[
            "algorithm",
            "model",
            "rounds",
            "messages",
            "bits",
            "bits/round/node",
            "violations",
        ],
    );
    let mut push = |name: &str, model: &str, ledger: &cc_mis_sim::RoundLedger| {
        let bpn = ledger.bits as f64 / (ledger.rounds.max(1) as f64 * n as f64);
        t.row(&[
            name.to_string(),
            model.to_string(),
            ledger.rounds.to_string(),
            ledger.messages.to_string(),
            ledger.bits.to_string(),
            f2(bpn),
            ledger.violations.to_string(),
        ]);
    };

    let out = run_luby(&g, &LubyParams::for_graph(&g), seed);
    assert!(checks::is_maximal_independent_set(&g, &out.mis));
    push("luby", "CONGEST", &out.ledger);

    let out = run_ghaffari16(&g, &Ghaffari16Params::for_graph(&g), seed);
    assert!(checks::is_maximal_independent_set(&g, &out.mis));
    push("ghaffari16", "CONGEST", &out.ledger);

    let out = run_beeping_to_completion(&g, &BeepingParams::for_graph(&g), seed);
    assert!(checks::is_maximal_independent_set(&g, &out.mis));
    push("beeping (§2.2)", "BEEPING", &out.ledger);

    let out = run_sparsified_with_cleanup(&g, &SparsifiedParams::for_graph(&g), seed);
    assert!(checks::is_maximal_independent_set(&g, &out.mis));
    push("sparsified (§2.3)", "BEEPING+", &out.ledger);

    let clique = run_clique_mis(&g, &CliqueMisParams::default(), seed);
    assert!(checks::is_maximal_independent_set(&g, &clique.mis));
    push("thm 1.1 (§2.4)", "CLIQUE", &clique.ledger);

    // Per-phase breakdown of the clique run.
    let mut t2 = Table::new(
        "E10b: Theorem 1.1 per-phase breakdown",
        &[
            "phase",
            "iters",
            "alive",
            "super-heavy",
            "|S|",
            "max S-deg",
            "ball edges",
            "gather rounds",
            "phase rounds",
        ],
    );
    for (i, ph) in clique.phases.iter().enumerate() {
        t2.row(&[
            i.to_string(),
            ph.len.to_string(),
            ph.alive_at_start.to_string(),
            ph.super_heavy.to_string(),
            ph.sampled.to_string(),
            ph.max_s_degree.to_string(),
            ph.max_ball_edges.to_string(),
            ph.gather_rounds.to_string(),
            ph.phase_rounds.to_string(),
        ]);
    }
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e10_smoke() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 5);
        assert!(!tables[1].is_empty());
    }
}
