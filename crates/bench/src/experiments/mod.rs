//! The experiment implementations, one module per claim (DESIGN.md §4).
//!
//! Every module exposes `run(quick: bool) -> Vec<Table>`: `quick` shrinks
//! sweeps to smoke-test size (used by this crate's tests so each experiment
//! stays continuously runnable); the binaries in `src/bin/` call `run`
//! with `quick = cc_mis_bench::quick_mode()` and print the tables.

pub mod a1_ablation;
pub mod e10_accounting;
pub mod e11_reductions;
pub mod e12_lca;
pub mod e1_headline;
pub mod e2_delta_scaling;
pub mod e3_local_complexity;
pub mod e4_golden_rounds;
pub mod e5_shattering;
pub mod e6_sparsification;
pub mod e7_exponentiation;
pub mod e8_lowdeg;
pub mod e9_equivalence;

use cc_mis_analysis::table::Table;

/// Prints every table of an experiment and optionally dumps CSVs.
pub fn emit(name: &str, tables: &[Table]) {
    for (i, t) in tables.iter().enumerate() {
        println!("{t}");
        if let Some(path) = crate::maybe_write_csv(&format!("{name}_{i}"), &t.to_csv()) {
            println!("(csv written to {})", path.display());
        }
    }
}
