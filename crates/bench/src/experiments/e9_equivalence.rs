//! **E9 — simulation correctness (§2.4).**
//!
//! The congested-clique simulation must reproduce the direct sparsified
//! execution *bit-for-bit* under a shared seed: same joins, same removal
//! times, same probability trajectories. This is the semantic content of
//! Lemmas 2.13/2.14 (the replay is exact, not approximate). We run every
//! family over several seeds and phase lengths and count exact matches —
//! the experiment fails loudly on any mismatch.

use cc_mis_analysis::table::Table;
use cc_mis_core::clique_mis::{run_clique_mis, CliqueMisParams};
use cc_mis_core::sparsified::{run_sparsified, SparsifiedParams};

use crate::{default_trials, Family};

/// Runs E9 and returns its tables.
///
/// # Panics
///
/// Panics on any divergence between direct and simulated executions — a
/// mismatch is a correctness bug, not a data point.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 96 } else { 400 };
    let trials = if quick { 2 } else { default_trials() };
    let families: &[Family] = if quick {
        &[Family::GnpAvgDeg(12), Family::Star]
    } else {
        &[
            Family::GnpAvgDeg(4),
            Family::GnpAvgDeg(16),
            Family::GnpAvgDeg(48),
            Family::Regular(6),
            Family::PrefAttach(4),
            Family::Cliques(8),
            Family::Star,
            Family::Grid,
        ]
    };
    let phase_lens: &[usize] = if quick { &[2] } else { &[1, 2, 3] };

    let mut t = Table::new(
        format!("E9: direct vs simulated execution, exact-match count (n = {n})"),
        &[
            "family",
            "P",
            "seeds",
            "exact matches",
            "iterations checked",
        ],
    );
    for f in families {
        let g = f.build(n, 33);
        for &p in phase_lens {
            // Dense graphs at P = 3 gather near-whole-graph balls (the
            // n^δ blow-up) — minutes of wall clock with no extra coverage;
            // the dense × deep combination is exercised at small n by the
            // crate tests instead.
            if p >= 3 && g.average_degree() > 24.0 {
                continue;
            }
            let params = SparsifiedParams {
                phase_len: p,
                super_heavy_log2: (2 * p) as u32,
                ..SparsifiedParams::for_graph(&g)
            };
            let mut matches = 0usize;
            let mut iters = 0u64;
            for seed in 0..trials as u64 {
                let direct = run_sparsified(&g, &params, 700 + seed);
                let sim = run_clique_mis(
                    &g,
                    &CliqueMisParams {
                        sparsified: Some(params),
                        skip_cleanup: true,
                    },
                    700 + seed,
                );
                assert_eq!(
                    direct.joined_at,
                    sim.joined_at,
                    "JOIN DIVERGENCE: {} P={p} seed={seed}",
                    f.label()
                );
                assert_eq!(
                    direct.removed_at,
                    sim.removed_at,
                    "REMOVAL DIVERGENCE: {} P={p} seed={seed}",
                    f.label()
                );
                for i in 0..g.node_count() {
                    if direct.removed_at[i].is_none() {
                        assert_eq!(
                            direct.pexp[i],
                            sim.pexp[i],
                            "PEXP DIVERGENCE: {} P={p} seed={seed} node={i}",
                            f.label()
                        );
                    }
                }
                matches += 1;
                iters += direct.iterations;
            }
            t.row(&[
                f.label(),
                p.to_string(),
                trials.to_string(),
                matches.to_string(),
                iters.to_string(),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e9_smoke() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 2);
    }
}
