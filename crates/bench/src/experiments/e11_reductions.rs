//! **E11 — the standard reductions (§1.1, `[Linial]`).**
//!
//! Maximal matching = MIS on the line graph; `(Δ+1)`-coloring = MIS on the
//! coloring product. Both inherit whatever round complexity the underlying
//! MIS algorithm has (on a graph whose size/degree grows by the stated
//! factors). We run each reduction over three MIS engines, verify every
//! output, and report sizes, palette usage, and the underlying rounds.

use cc_mis_analysis::table::Table;
use cc_mis_core::clique_mis::{run_clique_mis, CliqueMisParams};
use cc_mis_core::greedy::greedy_mis;
use cc_mis_core::luby::{run_luby, LubyParams};
use cc_mis_core::reductions::{coloring_via_mis, maximal_matching_via_mis};
use cc_mis_graph::checks;

use crate::Family;

/// Runs E11 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 64 } else { 256 };
    let families: &[Family] = if quick {
        &[Family::GnpAvgDeg(8)]
    } else {
        &[Family::GnpAvgDeg(8), Family::Regular(6), Family::Grid]
    };

    let mut t = Table::new(
        format!("E11: maximal matching & (Δ+1)-coloring via MIS (n = {n})"),
        &[
            "family",
            "engine",
            "matching size",
            "palette (Δ+1)",
            "colors used",
            "MIS rounds",
        ],
    );
    for f in families {
        let g = f.build(n, 91);
        let palette = g.max_degree() + 1;

        for engine in ["greedy", "luby", "thm1.1"] {
            let mut rounds = 0u64;
            let mut mis_fn = |h: &cc_mis_graph::Graph| -> Vec<cc_mis_graph::NodeId> {
                match engine {
                    "greedy" => greedy_mis(h),
                    "luby" => {
                        let out = run_luby(h, &LubyParams::for_graph(h), 5);
                        rounds += out.ledger.rounds;
                        out.mis
                    }
                    _ => {
                        let out = run_clique_mis(h, &CliqueMisParams::default(), 5);
                        rounds += out.rounds;
                        out.mis
                    }
                }
            };

            let matching = maximal_matching_via_mis(&g, &mut mis_fn);
            assert!(
                checks::is_maximal_matching(&g, &matching),
                "{} {engine}: invalid matching",
                f.label()
            );
            let colors =
                coloring_via_mis(&g, palette, &mut mis_fn).expect("Δ+1 palette always succeeds");
            assert!(
                checks::is_proper_coloring(&g, &colors, palette),
                "{} {engine}: improper coloring",
                f.label()
            );
            let used = {
                let mut seen = vec![false; palette];
                for &c in &colors {
                    seen[c] = true;
                }
                seen.iter().filter(|&&s| s).count()
            };
            t.row(&[
                f.label(),
                engine.to_string(),
                matching.len().to_string(),
                palette.to_string(),
                used.to_string(),
                rounds.to_string(),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e11_smoke() {
        let tables = super::run(true);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 3);
    }
}
