//! Property-based tests of the simulators: routing delivery semantics,
//! engine bookkeeping, and randomness-stream invariants.

use cc_mis_graph::{generators, NodeId};
use cc_mis_sim::clique::CliqueEngine;
use cc_mis_sim::congest::CongestEngine;
use cc_mis_sim::routing::{route, route_executed, Packet};
use cc_mis_sim::rng::{SharedRandomness, Stream};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Arbitrary packet workload over `n ∈ [2, 24]` nodes.
fn arb_packets() -> impl Strategy<Value = (usize, Vec<Packet<u32>>)> {
    (2usize..24).prop_flat_map(|n| {
        let packet = (0..n as u32, 0..n as u32, 1u64..200, any::<u32>()).prop_map(
            |(s, d, bits, tag)| Packet {
                src: NodeId::new(s),
                dst: NodeId::new(d),
                bits,
                payload: tag,
            },
        );
        (Just(n), proptest::collection::vec(packet, 0..60))
    })
}

/// Multiset fingerprint of packets: (src, dst, bits, payload) counts.
fn fingerprint(packets: &[Packet<u32>]) -> BTreeMap<(u32, u32, u64, u32), usize> {
    let mut m = BTreeMap::new();
    for p in packets {
        *m.entry((p.src.raw(), p.dst.raw(), p.bits, p.payload)).or_insert(0) += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn routing_delivers_every_packet_exactly_once((n, packets) in arb_packets()) {
        let sent = fingerprint(&packets);
        let mut engine = CliqueEngine::strict(n, 32);
        let (inboxes, outcome) = route(&mut engine, packets).unwrap();
        let received: Vec<Packet<u32>> = inboxes.iter().flatten().cloned().collect();
        prop_assert_eq!(fingerprint(&received), sent);
        // Every packet sits in its destination's inbox.
        for (d, inbox) in inboxes.iter().enumerate() {
            for p in inbox {
                prop_assert_eq!(p.dst.index(), d);
            }
            // Sorted by source.
            prop_assert!(inbox.windows(2).all(|w| w[0].src <= w[1].src));
        }
        prop_assert_eq!(engine.ledger().rounds, outcome.rounds);
        prop_assert_eq!(engine.ledger().violations, 0);
    }

    #[test]
    fn executed_routing_agrees_with_analytic_delivery((n, packets) in arb_packets()) {
        let mut e1 = CliqueEngine::strict(n, 32);
        let (a, _) = route(&mut e1, packets.clone()).unwrap();
        let mut e2 = CliqueEngine::strict(n, 32);
        let (b, executed_rounds) = route_executed(&mut e2, packets.clone()).unwrap();
        prop_assert_eq!(a, b);
        // The executed direct schedule meets its analytic bound exactly:
        // per batch, rounds = max over pairs of total fragment slots. With
        // a single batch this equals the global max; with multiple batches
        // it is the sum of per-batch maxima — in all cases ≥ the global
        // pairwise lower bound.
        let mut pair_slots: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for p in &packets {
            if p.src != p.dst {
                *pair_slots.entry((p.src.raw(), p.dst.raw())).or_insert(0) +=
                    p.bits.div_ceil(32).max(1);
            }
        }
        let lower = pair_slots.values().copied().max().unwrap_or(0);
        prop_assert!(executed_rounds >= lower);
    }

    #[test]
    fn routing_rounds_meet_congestion_lower_bound((n, packets) in arb_packets()) {
        // Information-theoretic: a pair carrying k fragment-slots of load
        // needs ≥ ... the *relay* schedule can beat the per-pair direct
        // bound, but never the per-source egress bound ⌈out_slots / n⌉.
        let bw = 32u64;
        let mut src_slots = vec![0u64; n];
        for p in &packets {
            if p.src != p.dst {
                src_slots[p.src.index()] += p.bits.div_ceil(bw).max(1);
            }
        }
        let egress_lower = src_slots
            .iter()
            .map(|&s| s.div_ceil(n as u64))
            .max()
            .unwrap_or(0);
        let mut engine = CliqueEngine::strict(n, bw);
        let (_, outcome) = route(&mut engine, packets).unwrap();
        prop_assert!(
            outcome.rounds >= egress_lower,
            "rounds {} below egress bound {}",
            outcome.rounds,
            egress_lower
        );
    }

    #[test]
    fn clique_engine_counts_match_sends(n in 2usize..16, count in 0usize..40, seed in 0u64..50) {
        let rng = SharedRandomness::new(seed);
        let mut engine = CliqueEngine::audit(n, 16);
        let mut round = engine.begin_round::<u64>();
        let mut expected_bits = 0u64;
        for i in 0..count {
            let s = (rng.bits(Stream::Aux, NodeId::new(0), i as u64) % n as u64) as u32;
            let d = (rng.bits(Stream::Aux, NodeId::new(1), i as u64) % n as u64) as u32;
            if s != d {
                round.send(NodeId::new(s), NodeId::new(d), 8, i as u64).unwrap();
                expected_bits += 8;
            }
        }
        let sent = round.pending();
        let inboxes = round.deliver();
        prop_assert_eq!(inboxes.iter().map(Vec::len).sum::<usize>(), sent);
        prop_assert_eq!(engine.ledger().bits, expected_bits);
        prop_assert_eq!(engine.ledger().messages, sent as u64);
        prop_assert_eq!(engine.ledger().rounds, 1);
    }

    #[test]
    fn congest_engine_only_accepts_graph_edges(n in 3usize..30, p in 0.0f64..0.5, seed in 0u64..50) {
        let g = generators::erdos_renyi_gnp(n, p, seed);
        let mut engine = CongestEngine::strict(&g, 64);
        let mut round = engine.begin_round::<()>();
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                let ok = round.send(NodeId::new(u), NodeId::new(v), 1, ()).is_ok();
                prop_assert_eq!(ok, g.has_edge(NodeId::new(u), NodeId::new(v)));
            }
        }
    }

    #[test]
    fn coins_are_pure_functions_of_their_address(seed in any::<u64>(), node in 0u32..1000, round in 0u64..1000) {
        let a = SharedRandomness::new(seed);
        let b = SharedRandomness::new(seed);
        let v = NodeId::new(node);
        prop_assert_eq!(a.coin(Stream::Beep, v, round), b.coin(Stream::Beep, v, round));
        prop_assert_eq!(a.bits(Stream::Priority, v, round), b.bits(Stream::Priority, v, round));
        let c = a.coin(Stream::Beep, v, round);
        prop_assert!((0.0..1.0).contains(&c));
    }

    #[test]
    fn neighboring_addresses_give_distinct_coins(seed in any::<u64>(), node in 0u32..100, round in 0u64..100) {
        let r = SharedRandomness::new(seed);
        let v = NodeId::new(node);
        let w = NodeId::new(node + 1);
        // 64-bit outputs collide with probability ~2^-64; a collision here
        // indicates an addressing bug, not bad luck.
        prop_assert_ne!(r.bits(Stream::Beep, v, round), r.bits(Stream::Beep, w, round));
        prop_assert_ne!(r.bits(Stream::Beep, v, round), r.bits(Stream::Beep, v, round + 1));
    }
}
