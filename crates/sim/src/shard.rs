//! Sharded worker runtime: framed delivery, checkpointed workers, recovery.
//!
//! The paper's congested-clique model assumes perfectly reliable all-to-all
//! communication; this module drops that assumption. Round delivery can
//! cross a *serialization boundary*: a [`ShardedTransport`] partitions the
//! destination id space over `S` worker shards, each of which receives its
//! slice of the round's messages as a length-prefixed byte frame, performs
//! the shard-local counting scatter over opaque payload bytes, and returns
//! the reordered slice as another frame. The coordinator concatenates the
//! shard inboxes — dst-major, send order within each destination — which is
//! byte-identical to the direct in-process scatter in
//! [`crate::runtime::Round::deliver`] at any shard count.
//!
//! Two [`FrameLink`] backends speak the same codec:
//!
//! * [`ChannelLink`] — in-process byte queues, the default. `send` runs the
//!   worker synchronously (no threads: rule R2 confines threading to
//!   `par_nodes`), so it is deterministic at any `S` and needs no OS
//!   support.
//! * [`ProcessLink`] — real OS processes: the coordinator binds a Unix
//!   domain socket, spawns `clique-mis worker --socket PATH --shard K`
//!   children, and exchanges the identical frames over the stream. Raw
//!   process/socket APIs are confined to this module (rule R24).
//!
//! # Frame format
//!
//! ```text
//! len       u32 LE   bytes after this field (kind + checksum + payload)
//! kind      u8       FrameKind discriminant
//! checksum  u64 LE   mix3 chain over (kind, payload length, payload words)
//! payload   bytes    kind-specific, see the protocol table below
//! ```
//!
//! # Protocol
//!
//! | request                                      | reply |
//! |----------------------------------------------|-------|
//! | `INIT [shard u32][n u32][dst_lo][dst_hi]`    | `ACK [shard u32]` |
//! | `ROUND [round u64][count u32]` + entries     | `INBOX [round u64][fingerprint u64][count u32]` + entries |
//! | `SAVE` (empty)                               | `STATE [CCMS snapshot bytes]` |
//! | `RESTORE [CCMS snapshot bytes]`              | `ACK [shard u32]` |
//! | `SHUTDOWN` (empty)                           | none (worker exits) |
//!
//! `ROUND` entries are `[src u32][dst u32][len u32][payload bytes]` in send
//! order; `INBOX` entries are the same layout in scattered (dst-major)
//! order. Workers never decode message payloads — `M` is encoded by the
//! coordinator via [`Wire`] and treated as opaque bytes in flight.
//!
//! # Fingerprints make recovery load-bearing
//!
//! Each worker chains `fingerprint = mix3(fingerprint, frame_checksum,
//! round)` over every `ROUND` frame it applies; the coordinator maintains
//! the identical mirror chain at send time and verifies it on every
//! `INBOX`. The fingerprint is part of the worker's checkpoint, so a
//! recovered worker that skipped its `RESTORE` (or restored the wrong
//! round) produces a mismatched chain and the run fails loudly instead of
//! silently diverging.
//!
//! # Recovery
//!
//! After every round the coordinator collects a `SAVE` checkpoint from each
//! shard (round 0's is taken at construction) and retains the last `ROUND`
//! frame per shard. When a link dies ([`ShardError::WorkerDead`] or an I/O
//! error), the coordinator respawns the worker, replays `INIT` +
//! `RESTORE(last checkpoint)` + the retained `ROUND` frame, and resumes —
//! so a killed-and-recovered run is byte-identical (MIS, ledger, trace) to
//! the unkilled run at every (shard, round) injection point. Fault
//! injection for tests and the CLI is a process-global
//! [`FaultPlan`] armed via [`arm_fault`].

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use cc_mis_graph::rng::mix3;
use cc_mis_graph::NodeId;

use crate::bits::idx_u32;
use crate::pool::RoundBuffers;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// Snapshot algorithm id for per-shard worker checkpoints.
const WORKER_ALGORITHM: &str = "shard-worker";

/// Byte codec for message types crossing the shard boundary.
///
/// The encoding contract is exactness: `decode(encode(m)) == m` and the
/// encoded bytes are a pure function of the value, so framed delivery is
/// byte-deterministic. Implementations exist for the primitive types the
/// in-tree algorithms send; algorithm crates implement it for their own
/// message structs (e.g. the clique-MIS announcement).
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value, advancing the cursor; `None` on truncation or a
    /// malformed encoding.
    fn decode(r: &mut WireCursor<'_>) -> Option<Self>;
}

/// Forward-only reader over an encoded byte slice.
#[derive(Debug)]
pub struct WireCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireCursor<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireCursor { buf, pos: 0 }
    }

    /// Takes the next `n` bytes, or `None` if fewer remain.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Some(u32::from_le_bytes(a))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Some(u64::from_le_bytes(a))
    }
}

impl Wire for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_r: &mut WireCursor<'_>) -> Option<Self> {
        Some(())
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut WireCursor<'_>) -> Option<Self> {
        match r.take(1)?[0] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut WireCursor<'_>) -> Option<Self> {
        Some(r.take(1)?[0])
    }
}

impl Wire for u16 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireCursor<'_>) -> Option<Self> {
        let b = r.take(2)?;
        let mut a = [0u8; 2];
        a.copy_from_slice(b);
        Some(u16::from_le_bytes(a))
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireCursor<'_>) -> Option<Self> {
        r.u32()
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireCursor<'_>) -> Option<Self> {
        r.u64()
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        idx_u32(self.len()).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireCursor<'_>) -> Option<Self> {
        let len = r.u32()? as usize;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut WireCursor<'_>) -> Option<Self> {
        match r.take(1)?[0] {
            0 => Some(None),
            1 => Some(Some(T::decode(r)?)),
            _ => None,
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut WireCursor<'_>) -> Option<Self> {
        Some((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(r: &mut WireCursor<'_>) -> Option<Self> {
        Some((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

/// Frame kinds. The discriminants are the on-wire `kind` byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Coordinator → worker: identity + destination range.
    Init = 1,
    /// Coordinator → worker: one round's messages for this shard.
    Round = 2,
    /// Worker → coordinator: the scattered inbox slice.
    Inbox = 3,
    /// Coordinator → worker: checkpoint request.
    Save = 4,
    /// Worker → coordinator: checkpoint bytes.
    State = 5,
    /// Coordinator → worker: restore from checkpoint bytes.
    Restore = 6,
    /// Worker → coordinator: acknowledgement (INIT / RESTORE).
    Ack = 7,
    /// Coordinator → worker: exit cleanly.
    Shutdown = 8,
}

impl FrameKind {
    /// The wire byte (the discriminant, spelled as a match so the frame
    /// encoder stays cast-free on the charge path).
    fn byte(self) -> u8 {
        match self {
            FrameKind::Init => 1,
            FrameKind::Round => 2,
            FrameKind::Inbox => 3,
            FrameKind::Save => 4,
            FrameKind::State => 5,
            FrameKind::Restore => 6,
            FrameKind::Ack => 7,
            FrameKind::Shutdown => 8,
        }
    }

    fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            1 => FrameKind::Init,
            2 => FrameKind::Round,
            3 => FrameKind::Inbox,
            4 => FrameKind::Save,
            5 => FrameKind::State,
            6 => FrameKind::Restore,
            7 => FrameKind::Ack,
            8 => FrameKind::Shutdown,
            _ => return None,
        })
    }
}

/// Bytes of frame header after the length prefix: kind + checksum.
const FRAME_AFTER_LEN: usize = 1 + 8;

/// Why a frame or a shard operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The frame or payload ended before an expected field.
    Truncated,
    /// The kind byte is not a known [`FrameKind`].
    BadKind(u8),
    /// The checksum in the header does not match the payload.
    BadChecksum {
        /// Checksum recomputed from the received bytes.
        expected: u64,
        /// Checksum carried in the frame header.
        found: u64,
    },
    /// The peer is gone: a killed in-process worker, a closed socket, or a
    /// child that exited.
    WorkerDead,
    /// The peer answered with the wrong frame or inconsistent fields.
    Protocol(&'static str),
    /// An OS-level I/O failure on a process link.
    Io(String),
    /// A worker's fingerprint chain diverged from the coordinator's mirror:
    /// the worker applied different round frames than were sent (e.g. a
    /// recovery that skipped its restore).
    Fingerprint {
        /// Which shard diverged.
        shard: usize,
        /// The coordinator's mirror chain value.
        expected: u64,
        /// The chain value the worker reported.
        found: u64,
    },
    /// A worker checkpoint failed to decode or matched the wrong identity.
    Snapshot(SnapshotError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Truncated => write!(f, "frame truncated"),
            ShardError::BadKind(b) => write!(f, "unknown frame kind byte {b}"),
            ShardError::BadChecksum { expected, found } => write!(
                f,
                "frame checksum mismatch: computed {expected:#018x}, header says {found:#018x}"
            ),
            ShardError::WorkerDead => write!(f, "shard worker is dead"),
            ShardError::Protocol(what) => write!(f, "shard protocol error: {what}"),
            ShardError::Io(what) => write!(f, "shard link I/O error: {what}"),
            ShardError::Fingerprint {
                shard,
                expected,
                found,
            } => write!(
                f,
                "shard {shard} fingerprint chain diverged: coordinator mirror \
                 {expected:#018x}, worker reports {found:#018x}"
            ),
            ShardError::Snapshot(e) => write!(f, "worker checkpoint error: {e}"),
        }
    }
}

impl Error for ShardError {}

impl From<SnapshotError> for ShardError {
    fn from(e: SnapshotError) -> Self {
        ShardError::Snapshot(e)
    }
}

fn io_err(e: std::io::Error) -> ShardError {
    ShardError::Io(e.to_string())
}

/// The deterministic frame checksum: a [`mix3`] chain over the kind, the
/// payload length, and the payload's little-endian 8-byte words (the last
/// word zero-padded).
pub fn frame_checksum(kind: FrameKind, payload: &[u8]) -> u64 {
    let mut h = mix3(0x6672_616D_655F_6B31, kind as u64, payload.len() as u64);
    for (i, chunk) in payload.chunks(8).enumerate() {
        let mut a = [0u8; 8];
        a[..chunk.len()].copy_from_slice(chunk);
        h = mix3(h, u64::from_le_bytes(a), i as u64);
    }
    h
}

/// Encodes a complete frame (length prefix, kind, checksum, payload) into
/// `out` (cleared first) and returns the checksum.
pub fn encode_frame(kind: FrameKind, payload: &[u8], out: &mut Vec<u8>) -> u64 {
    let checksum = frame_checksum(kind, payload);
    out.clear();
    let len = idx_u32(FRAME_AFTER_LEN + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.push(kind.byte());
    out.extend_from_slice(&checksum.to_le_bytes());
    out.extend_from_slice(payload);
    checksum
}

/// Decodes a complete frame, verifying structure and checksum. Returns the
/// kind, the payload slice, and the verified checksum.
///
/// # Errors
///
/// [`ShardError::Truncated`] when the bytes are shorter than the header
/// claims, [`ShardError::BadKind`] on an unknown kind byte, and
/// [`ShardError::BadChecksum`] when the payload does not hash to the header
/// checksum (bit corruption in flight).
pub fn decode_frame(frame: &[u8]) -> Result<(FrameKind, &[u8], u64), ShardError> {
    let mut c = WireCursor::new(frame);
    let len = c.u32().ok_or(ShardError::Truncated)? as usize;
    if len < FRAME_AFTER_LEN || frame.len() != 4 + len {
        return Err(ShardError::Truncated);
    }
    let kind_byte = c.take(1).ok_or(ShardError::Truncated)?[0];
    let kind = FrameKind::from_u8(kind_byte).ok_or(ShardError::BadKind(kind_byte))?;
    let found = c.u64().ok_or(ShardError::Truncated)?;
    let payload = &frame[4 + FRAME_AFTER_LEN..];
    let expected = frame_checksum(kind, payload);
    if expected != found {
        return Err(ShardError::BadChecksum { expected, found });
    }
    Ok((kind, payload, found))
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Reads one complete frame (length prefix included) from a byte stream
/// into `frame`. EOF or a mid-frame stream failure maps to
/// [`ShardError::WorkerDead`]: the peer is gone.
fn read_stream_frame(stream: &mut impl Read, frame: &mut Vec<u8>) -> Result<(), ShardError> {
    let mut len_bytes = [0u8; 4];
    if stream.read_exact(&mut len_bytes).is_err() {
        return Err(ShardError::WorkerDead);
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len < FRAME_AFTER_LEN {
        return Err(ShardError::Truncated);
    }
    frame.clear();
    frame.extend_from_slice(&len_bytes);
    frame.resize(4 + len, 0);
    if stream.read_exact(&mut frame[4..]).is_err() {
        return Err(ShardError::WorkerDead);
    }
    Ok(())
}

/// One shard worker's complete state: identity, counters, the fingerprint
/// chain, and scatter scratch. Shared verbatim by both backends — the
/// in-process [`ChannelLink`] holds one directly and the `clique-mis
/// worker` child process holds one behind its socket loop — so the two
/// backends cannot diverge behaviorally.
#[derive(Debug, Default)]
struct WorkerState {
    shard: u32,
    n: u32,
    dst_lo: u32,
    dst_hi: u32,
    /// Rounds applied so far (the last applied frame's round number).
    applied: u64,
    /// Messages scattered so far.
    delivered: u64,
    /// Payload bytes scattered so far.
    bytes: u64,
    /// `mix3` chain over applied round-frame checksums (see module docs).
    fingerprint: u64,
    /// Scatter scratch (per-local-destination counts / cursors, per-entry
    /// byte offsets, slot order) — capacity recycled across rounds.
    counts: Vec<u32>,
    cursors: Vec<u32>,
    starts: Vec<u32>,
    order: Vec<u32>,
    /// Reply payload scratch.
    out: Vec<u8>,
}

impl WorkerState {
    fn fresh(shard: u32) -> Self {
        WorkerState {
            shard,
            ..WorkerState::default()
        }
    }

    fn width(&self) -> usize {
        (self.dst_hi - self.dst_lo) as usize
    }

    fn save_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(WORKER_ALGORITHM);
        w.write_u32(self.shard);
        w.write_u32(self.n);
        w.write_u32(self.dst_lo);
        w.write_u32(self.dst_hi);
        w.write_u64(self.applied);
        w.write_u64(self.delivered);
        w.write_u64(self.bytes);
        w.write_u64(self.fingerprint);
        w.finish()
    }

    fn restore_bytes(&mut self, bytes: &[u8]) -> Result<(), ShardError> {
        let mut r = SnapshotReader::new(bytes)?;
        if r.algorithm() != WORKER_ALGORITHM {
            return Err(ShardError::Protocol(
                "checkpoint is not a shard-worker snapshot",
            ));
        }
        r.expect_u32("shard", self.shard)?;
        r.expect_u32("n", self.n)?;
        r.expect_u32("dst_lo", self.dst_lo)?;
        r.expect_u32("dst_hi", self.dst_hi)?;
        self.applied = r.read_u64()?;
        self.delivered = r.read_u64()?;
        self.bytes = r.read_u64()?;
        self.fingerprint = r.read_u64()?;
        r.finish()?;
        Ok(())
    }

    /// Applies one `ROUND` payload: shard-local counting scatter of the
    /// opaque entries into dst-major order, counters + fingerprint update,
    /// and the `INBOX` reply payload written into `self.out`.
    fn apply_round(&mut self, payload: &[u8], checksum: u64) -> Result<(), ShardError> {
        let mut c = WireCursor::new(payload);
        let round = c.u64().ok_or(ShardError::Truncated)?;
        if round != self.applied + 1 {
            return Err(ShardError::Protocol("round frame out of sequence"));
        }
        let count = c.u32().ok_or(ShardError::Truncated)? as usize;
        let width = self.width();
        self.counts.clear();
        self.counts.resize(width, 0);
        self.starts.clear();
        let mut total_bytes = 0u64;
        for _ in 0..count {
            let start = c.pos();
            let _src = c.u32().ok_or(ShardError::Truncated)?;
            let dst = c.u32().ok_or(ShardError::Truncated)?;
            let len = c.u32().ok_or(ShardError::Truncated)? as usize;
            c.take(len).ok_or(ShardError::Truncated)?;
            if dst < self.dst_lo || dst >= self.dst_hi {
                return Err(ShardError::Protocol(
                    "entry destination outside shard range",
                ));
            }
            self.counts[(dst - self.dst_lo) as usize] += 1;
            self.starts.push(idx_u32(start));
            total_bytes += len as u64;
        }
        if !c.done() {
            return Err(ShardError::Protocol("trailing bytes in round frame"));
        }
        // Prefix-sum the local counts into cursors, then assign each entry
        // its dst-major slot in arrival order (the stable counting scatter).
        self.cursors.clear();
        let mut acc = 0u32;
        for d in 0..width {
            self.cursors.push(acc);
            acc += self.counts[d];
        }
        self.order.clear();
        self.order.resize(count, 0);
        for (i, &s) in self.starts.iter().enumerate() {
            let s = s as usize;
            let mut a = [0u8; 4];
            a.copy_from_slice(&payload[s + 4..s + 8]);
            let dst = u32::from_le_bytes(a);
            let local = (dst - self.dst_lo) as usize;
            let slot = self.cursors[local] as usize;
            self.cursors[local] += 1;
            self.order[slot] = idx_u32(i);
        }
        self.applied = round;
        self.delivered += count as u64;
        self.bytes += total_bytes;
        self.fingerprint = mix3(self.fingerprint, checksum, round);
        // INBOX reply: header, then the entries in slot order.
        let mut out = std::mem::take(&mut self.out);
        out.clear();
        push_u64(&mut out, round);
        push_u64(&mut out, self.fingerprint);
        push_u32(&mut out, idx_u32(count));
        for &entry in &self.order {
            let s = self.starts[entry as usize] as usize;
            let mut a = [0u8; 4];
            a.copy_from_slice(&payload[s + 8..s + 12]);
            let len = u32::from_le_bytes(a) as usize;
            out.extend_from_slice(&payload[s..s + 12 + len]);
        }
        self.out = out;
        Ok(())
    }
}

/// Handles one decoded request frame against `state`, writing the complete
/// encoded reply frame into `reply`. `SHUTDOWN` is the caller's concern
/// (both backends terminate the worker before reaching here).
fn handle_frame(
    state: &mut WorkerState,
    kind: FrameKind,
    payload: &[u8],
    checksum: u64,
    reply: &mut Vec<u8>,
) -> Result<(), ShardError> {
    match kind {
        FrameKind::Init => {
            let mut c = WireCursor::new(payload);
            let shard = c.u32().ok_or(ShardError::Truncated)?;
            let n = c.u32().ok_or(ShardError::Truncated)?;
            let dst_lo = c.u32().ok_or(ShardError::Truncated)?;
            let dst_hi = c.u32().ok_or(ShardError::Truncated)?;
            if !c.done() {
                return Err(ShardError::Protocol("trailing bytes in init frame"));
            }
            if shard != state.shard {
                return Err(ShardError::Protocol("init addressed to a different shard"));
            }
            if dst_lo > dst_hi || dst_hi > n {
                return Err(ShardError::Protocol(
                    "init destination range is inconsistent",
                ));
            }
            state.n = n;
            state.dst_lo = dst_lo;
            state.dst_hi = dst_hi;
            state.applied = 0;
            state.delivered = 0;
            state.bytes = 0;
            state.fingerprint = 0;
            let mut out = std::mem::take(&mut state.out);
            out.clear();
            push_u32(&mut out, shard);
            encode_frame(FrameKind::Ack, &out, reply);
            state.out = out;
            Ok(())
        }
        FrameKind::Round => {
            state.apply_round(payload, checksum)?;
            let out = std::mem::take(&mut state.out);
            encode_frame(FrameKind::Inbox, &out, reply);
            state.out = out;
            Ok(())
        }
        FrameKind::Save => {
            let bytes = state.save_bytes();
            encode_frame(FrameKind::State, &bytes, reply);
            Ok(())
        }
        FrameKind::Restore => {
            state.restore_bytes(payload)?;
            let mut out = std::mem::take(&mut state.out);
            out.clear();
            push_u32(&mut out, state.shard);
            encode_frame(FrameKind::Ack, &out, reply);
            state.out = out;
            Ok(())
        }
        FrameKind::Inbox | FrameKind::State | FrameKind::Ack => {
            Err(ShardError::Protocol("reply frame sent to a worker"))
        }
        FrameKind::Shutdown => Err(ShardError::Protocol("shutdown must be handled by the link")),
    }
}

/// One coordinator↔worker frame channel. Both backends expose the same
/// four operations so [`ShardedTransport`] is backend-agnostic.
trait FrameLink {
    /// Submits one request frame. Sending to a dead worker is not an error
    /// (the loss surfaces at the next [`FrameLink::recv`]).
    fn send(&mut self, frame: &[u8]) -> Result<(), ShardError>;
    /// Receives the next reply frame into `out`.
    fn recv(&mut self, out: &mut Vec<u8>) -> Result<(), ShardError>;
    /// Kills the worker, dropping any undelivered replies (fault injection).
    fn kill(&mut self);
    /// Starts a fresh worker with empty state (the caller re-`INIT`s and
    /// `RESTORE`s it).
    fn respawn(&mut self) -> Result<(), ShardError>;
}

/// In-process backend: the worker runs synchronously inside `send` (rule R2
/// keeps threads out of this module) and replies queue as byte frames, so
/// the full frame codec is exercised without any OS dependency and results
/// are deterministic at any shard count.
struct ChannelLink {
    shard: u32,
    worker: Option<WorkerState>,
    queue: VecDeque<Vec<u8>>,
}

impl ChannelLink {
    fn new(shard: u32) -> Self {
        ChannelLink {
            shard,
            worker: Some(WorkerState::fresh(shard)),
            queue: VecDeque::new(),
        }
    }
}

impl FrameLink for ChannelLink {
    fn send(&mut self, frame: &[u8]) -> Result<(), ShardError> {
        let Some(state) = self.worker.as_mut() else {
            // Dead worker: the frame is lost in flight, exactly like a
            // write to a killed process's socket buffer.
            return Ok(());
        };
        let (kind, payload, checksum) = decode_frame(frame)?;
        if kind == FrameKind::Shutdown {
            self.worker = None;
            return Ok(());
        }
        let mut reply = Vec::new();
        handle_frame(state, kind, payload, checksum, &mut reply)?;
        self.queue.push_back(reply);
        Ok(())
    }

    fn recv(&mut self, out: &mut Vec<u8>) -> Result<(), ShardError> {
        match self.queue.pop_front() {
            Some(f) => {
                out.clear();
                out.extend_from_slice(&f);
                Ok(())
            }
            None => Err(ShardError::WorkerDead),
        }
    }

    fn kill(&mut self) {
        self.worker = None;
        self.queue.clear();
    }

    fn respawn(&mut self) -> Result<(), ShardError> {
        self.worker = Some(WorkerState::fresh(self.shard));
        self.queue.clear();
        Ok(())
    }
}

/// Monotone counter distinguishing socket and log paths created by this
/// process (no clocks or randomness: rule R3).
static PATH_SEQ: AtomicU64 = AtomicU64::new(0);

/// OS-process backend: the coordinator binds a Unix domain socket, spawns a
/// `clique-mis worker` child per shard, and exchanges the same frames over
/// the stream. The listener outlives the child so [`FrameLink::respawn`]
/// reuses the socket path.
struct ProcessLink {
    shard: u32,
    listener: UnixListener,
    socket_path: PathBuf,
    child: Option<Child>,
    stream: Option<UnixStream>,
}

impl ProcessLink {
    fn spawn(shard: u32) -> Result<Self, ShardError> {
        let seq = PATH_SEQ.fetch_add(1, Ordering::Relaxed);
        let socket_path = crate::config::socket_dir().join(format!(
            "cc-mis-{}-{}-{}.sock",
            std::process::id(),
            shard,
            seq
        ));
        let _ = std::fs::remove_file(&socket_path);
        let listener = UnixListener::bind(&socket_path).map_err(io_err)?;
        let mut link = ProcessLink {
            shard,
            listener,
            socket_path,
            child: None,
            stream: None,
        };
        link.spawn_child()?;
        Ok(link)
    }

    /// Spawns a worker child connected to this link's socket. Worker stderr
    /// goes to a log file under `CC_MIS_WORKER_LOG_DIR` when set (CI
    /// uploads these on failure), otherwise to null.
    fn spawn_child(&mut self) -> Result<(), ShardError> {
        let mut cmd = Command::new(worker_binary());
        cmd.arg("worker")
            .arg("--socket")
            .arg(&self.socket_path)
            .arg("--shard")
            .arg(self.shard.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null());
        match crate::config::env_worker_log_dir() {
            Some(dir) => {
                let dir = PathBuf::from(dir);
                let _ = std::fs::create_dir_all(&dir);
                let log = dir.join(format!(
                    "worker-{}-{}-{}.log",
                    std::process::id(),
                    self.shard,
                    PATH_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                match std::fs::File::create(&log) {
                    Ok(f) => cmd.stderr(Stdio::from(f)),
                    Err(_) => cmd.stderr(Stdio::null()),
                }
            }
            None => cmd.stderr(Stdio::null()),
        };
        let child = cmd.spawn().map_err(io_err)?;
        let (stream, _) = self.listener.accept().map_err(io_err)?;
        self.child = Some(child);
        self.stream = Some(stream);
        Ok(())
    }

    fn reap(&mut self) {
        if let Some(mut child) = self.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.stream = None;
    }
}

impl FrameLink for ProcessLink {
    fn send(&mut self, frame: &[u8]) -> Result<(), ShardError> {
        match self.stream.as_mut() {
            Some(s) => s.write_all(frame).and_then(|()| s.flush()).map_err(io_err),
            // Dead worker: frame lost in flight, surfaces at recv.
            None => Ok(()),
        }
    }

    fn recv(&mut self, out: &mut Vec<u8>) -> Result<(), ShardError> {
        match self.stream.as_mut() {
            Some(s) => read_stream_frame(s, out),
            None => Err(ShardError::WorkerDead),
        }
    }

    fn kill(&mut self) {
        self.reap();
    }

    fn respawn(&mut self) -> Result<(), ShardError> {
        self.reap();
        self.spawn_child()
    }
}

impl Drop for ProcessLink {
    fn drop(&mut self) {
        if let Some(s) = self.stream.as_mut() {
            let mut frame = Vec::new();
            encode_frame(FrameKind::Shutdown, &[], &mut frame);
            let _ = s.write_all(&frame);
        }
        // Dropping the stream EOFs the worker's read loop; wait for a
        // clean exit rather than leaking children.
        self.stream = None;
        if let Some(mut child) = self.child.take() {
            let _ = child.wait();
        }
        let _ = std::fs::remove_file(&self.socket_path);
    }
}

/// Entry point for the `clique-mis worker` child verb: connects to the
/// coordinator's socket and serves frames until `SHUTDOWN` or EOF.
///
/// # Errors
///
/// Returns the first protocol or I/O error; the CLI maps it to a nonzero
/// exit code and the message lands in the worker log.
pub fn worker_main(socket: &str, shard: u32) -> Result<(), ShardError> {
    let mut stream = UnixStream::connect(socket).map_err(io_err)?;
    let mut state = WorkerState::fresh(shard);
    let mut frame = Vec::new();
    let mut reply = Vec::new();
    loop {
        match read_stream_frame(&mut stream, &mut frame) {
            Ok(()) => {}
            // Coordinator closed the socket: a normal shutdown path.
            Err(ShardError::WorkerDead) => return Ok(()),
            Err(e) => return Err(e),
        }
        let (kind, payload, checksum) = decode_frame(&frame)?;
        if kind == FrameKind::Shutdown {
            return Ok(());
        }
        handle_frame(&mut state, kind, payload, checksum, &mut reply)?;
        stream
            .write_all(&reply)
            .and_then(|()| stream.flush())
            .map_err(io_err)?;
    }
}

/// Which [`FrameLink`] backend a [`ShardedTransport`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardBackend {
    /// In-process byte channels (default; no OS dependency).
    Channel,
    /// `clique-mis worker` child processes over Unix domain sockets.
    Process,
}

/// An error classified as "the worker is gone" — the cases recovery can
/// repair by respawn + restore + replay.
fn link_lost(e: &ShardError) -> bool {
    matches!(
        e,
        ShardError::WorkerDead | ShardError::Io(_) | ShardError::Truncated
    )
}

/// Coordinator side of the sharded runtime: owns one [`FrameLink`] per
/// shard, the per-shard checkpoint + retained-round-frame recovery state,
/// and the fingerprint mirror chains. See the module docs for the protocol.
pub(crate) struct ShardedTransport {
    n: usize,
    backend: ShardBackend,
    links: Vec<Box<dyn FrameLink>>,
    /// Destination-range boundaries: shard `k` owns dsts in
    /// `dst_cuts[k]..dst_cuts[k + 1]`.
    dst_cuts: Vec<u32>,
    /// Last `SAVE` checkpoint per shard (round 0's taken at construction).
    checkpoints: Vec<Vec<u8>>,
    /// Last `ROUND` frame sent per shard, retained for recovery replay.
    round_frames: Vec<Vec<u8>>,
    /// Coordinator-side fingerprint mirror chain per shard.
    mirrors: Vec<u64>,
    /// Rounds delivered through this transport.
    round: u64,
}

impl fmt::Debug for ShardedTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedTransport")
            .field("n", &self.n)
            .field("backend", &self.backend)
            .field("shards", &self.links.len())
            .field("round", &self.round)
            .finish()
    }
}

impl ShardedTransport {
    /// Builds a transport over `shards` workers for an `n`-node engine:
    /// spawns the links, `INIT`s each worker, and takes the round-0
    /// checkpoints.
    pub(crate) fn new(
        n: usize,
        shards: usize,
        backend: ShardBackend,
        buffers: &mut RoundBuffers,
    ) -> Result<Box<ShardedTransport>, ShardError> {
        let mut frame = buffers.take_frame();
        let mut recv = buffers.take_frame();
        let result = ShardedTransport::new_inner(n, shards, backend, &mut frame, &mut recv);
        buffers.retire_frame(frame);
        buffers.retire_frame(recv);
        result
    }

    fn new_inner(
        n: usize,
        shards: usize,
        backend: ShardBackend,
        frame: &mut Vec<u8>,
        recv: &mut Vec<u8>,
    ) -> Result<Box<ShardedTransport>, ShardError> {
        let shards = shards.max(1);
        let mut dst_cuts = Vec::with_capacity(shards + 1);
        for k in 0..=shards {
            dst_cuts.push(idx_u32(n * k / shards));
        }
        let mut links: Vec<Box<dyn FrameLink>> = Vec::with_capacity(shards);
        for k in 0..shards {
            let shard = idx_u32(k);
            links.push(match backend {
                ShardBackend::Channel => Box::new(ChannelLink::new(shard)),
                ShardBackend::Process => Box::new(ProcessLink::spawn(shard)?),
            });
        }
        let mut t = Box::new(ShardedTransport {
            n,
            backend,
            links,
            dst_cuts,
            checkpoints: vec![Vec::new(); shards],
            round_frames: vec![Vec::new(); shards],
            mirrors: vec![0; shards],
            round: 0,
        });
        for k in 0..shards {
            t.init_shard(k, frame, recv)?;
            t.checkpoint_shard(k, frame, recv)?;
        }
        Ok(t)
    }

    /// Node count this transport was built for.
    pub(crate) fn node_count(&self) -> usize {
        self.n
    }

    /// Sends `INIT` for shard `k` and consumes the `ACK`.
    fn init_shard(
        &mut self,
        k: usize,
        frame: &mut Vec<u8>,
        recv: &mut Vec<u8>,
    ) -> Result<(), ShardError> {
        let mut payload = [0u8; 16];
        payload[..4].copy_from_slice(&idx_u32(k).to_le_bytes());
        payload[4..8].copy_from_slice(&idx_u32(self.n).to_le_bytes());
        payload[8..12].copy_from_slice(&self.dst_cuts[k].to_le_bytes());
        payload[12..16].copy_from_slice(&self.dst_cuts[k + 1].to_le_bytes());
        encode_frame(FrameKind::Init, &payload, frame);
        self.links[k].send(frame)?;
        self.expect_ack(k, recv)
    }

    fn expect_ack(&mut self, k: usize, recv: &mut Vec<u8>) -> Result<(), ShardError> {
        self.links[k].recv(recv)?;
        let (kind, payload, _) = decode_frame(recv)?;
        if kind != FrameKind::Ack {
            return Err(ShardError::Protocol("expected ACK"));
        }
        let mut c = WireCursor::new(payload);
        if c.u32() != Some(idx_u32(k)) || !c.done() {
            return Err(ShardError::Protocol("ACK from the wrong shard"));
        }
        Ok(())
    }

    /// Requests a `SAVE` from shard `k` and stores the returned checkpoint.
    /// A shard found dead here (killed after its inbox was already
    /// delivered) is recovered first: its replayed inbox is validated
    /// against the mirror chain and discarded, then the save is retried.
    fn checkpoint_shard(
        &mut self,
        k: usize,
        frame: &mut Vec<u8>,
        recv: &mut Vec<u8>,
    ) -> Result<(), ShardError> {
        encode_frame(FrameKind::Save, &[], frame);
        if self.links[k].send(frame).is_err() {
            self.links[k].kill();
        }
        match self.links[k].recv(recv) {
            Ok(()) => {}
            Err(e) if link_lost(&e) => {
                let replayed = self.recover_shard(k, frame, recv)?;
                if replayed {
                    self.links[k].recv(recv)?;
                    self.validate_inbox_header(k, recv)?;
                }
                encode_frame(FrameKind::Save, &[], frame);
                self.links[k].send(frame)?;
                self.links[k].recv(recv)?;
            }
            Err(e) => return Err(e),
        }
        let (kind, payload, _) = decode_frame(recv)?;
        if kind != FrameKind::State {
            return Err(ShardError::Protocol("expected STATE"));
        }
        self.checkpoints[k].clear();
        self.checkpoints[k].extend_from_slice(payload);
        Ok(())
    }

    /// Recovers a dead shard: respawn, `INIT`, `RESTORE` from the last
    /// checkpoint, and replay of the retained round frame (if any). Returns
    /// whether a round frame was replayed — the caller owes one `recv` for
    /// the replayed `INBOX` when it was.
    fn recover_shard(
        &mut self,
        k: usize,
        frame: &mut Vec<u8>,
        recv: &mut Vec<u8>,
    ) -> Result<bool, ShardError> {
        self.links[k].respawn()?;
        self.init_shard(k, frame, recv)?;
        if !self.checkpoints[k].is_empty() {
            encode_frame(FrameKind::Restore, &self.checkpoints[k], frame);
            self.links[k].send(frame)?;
            self.expect_ack(k, recv)?;
        }
        if self.round_frames[k].is_empty() {
            return Ok(false);
        }
        self.links[k].send(&self.round_frames[k])?;
        Ok(true)
    }

    /// Decodes `recv` as this round's `INBOX` from shard `k`, verifying the
    /// round number and the fingerprint mirror chain. Returns the entry
    /// payload positioned after the header.
    fn validate_inbox_header<'f>(
        &self,
        k: usize,
        recv: &'f [u8],
    ) -> Result<(WireCursor<'f>, u32), ShardError> {
        let (kind, payload, _) = decode_frame(recv)?;
        if kind != FrameKind::Inbox {
            return Err(ShardError::Protocol("expected INBOX"));
        }
        let mut c = WireCursor::new(payload);
        let round = c.u64().ok_or(ShardError::Truncated)?;
        if round != self.round {
            return Err(ShardError::Protocol("inbox for the wrong round"));
        }
        let found = c.u64().ok_or(ShardError::Truncated)?;
        if found != self.mirrors[k] {
            return Err(ShardError::Fingerprint {
                shard: k,
                expected: self.mirrors[k],
                found,
            });
        }
        let count = c.u32().ok_or(ShardError::Truncated)?;
        Ok((c, count))
    }

    /// Delivers one round through the frame boundary: partitions `outbox`
    /// into per-shard `ROUND` frames, applies each shard's `INBOX` into
    /// `arena` via `cursors` (byte-identical to the direct scatter), and
    /// refreshes every shard's checkpoint. Injects the armed [`FaultPlan`]
    /// when this round matches, and transparently recovers any shard whose
    /// link died.
    pub(crate) fn deliver<M: Wire>(
        &mut self,
        outbox: &[(NodeId, NodeId, M)],
        arena: &mut [(NodeId, M)],
        cursors: &mut [u32],
        buffers: &mut RoundBuffers,
    ) -> Result<(), ShardError> {
        let mut payload = buffers.take_frame();
        let mut frame = buffers.take_frame();
        let mut recv = buffers.take_frame();
        let mut msg = buffers.take_frame();
        let result = self.deliver_inner(
            outbox,
            arena,
            cursors,
            &mut payload,
            &mut frame,
            &mut recv,
            &mut msg,
        );
        buffers.retire_frame(payload);
        buffers.retire_frame(frame);
        buffers.retire_frame(recv);
        buffers.retire_frame(msg);
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver_inner<M: Wire>(
        &mut self,
        outbox: &[(NodeId, NodeId, M)],
        arena: &mut [(NodeId, M)],
        cursors: &mut [u32],
        payload: &mut Vec<u8>,
        frame: &mut Vec<u8>,
        recv: &mut Vec<u8>,
        msg: &mut Vec<u8>,
    ) -> Result<(), ShardError> {
        self.round += 1;
        let fault = fault_due(self.round);
        let shards = self.links.len();
        // Send phase: one ROUND frame per shard, built by filtering the
        // outbox to the shard's destination range (O(S·m); each message is
        // Wire-encoded exactly once since ranges are disjoint). The frame is
        // retained for recovery replay and its checksum extends the mirror
        // chain before any worker sees it.
        for k in 0..shards {
            let (lo, hi) = (self.dst_cuts[k], self.dst_cuts[k + 1]);
            payload.clear();
            push_u64(payload, self.round);
            let count_at = payload.len();
            push_u32(payload, 0);
            let mut count = 0u32;
            for (src, dst, m) in outbox {
                let d = dst.raw();
                if d < lo || d >= hi {
                    continue;
                }
                push_u32(payload, src.raw());
                push_u32(payload, d);
                msg.clear();
                m.encode(msg);
                push_u32(payload, idx_u32(msg.len()));
                payload.extend_from_slice(msg);
                count += 1;
            }
            payload[count_at..count_at + 4].copy_from_slice(&count.to_le_bytes());
            let checksum = encode_frame(FrameKind::Round, payload, frame);
            self.mirrors[k] = mix3(self.mirrors[k], checksum, self.round);
            std::mem::swap(&mut self.round_frames[k], frame);
            if self.links[k].send(&self.round_frames[k]).is_err() {
                self.links[k].kill();
            }
            if fault == Some(k) {
                self.links[k].kill();
                FAULT_INJECTIONS.fetch_add(1, Ordering::Relaxed);
                disarm_fault();
            }
        }
        // Receive phase: apply each shard's inbox; a dead link is recovered
        // (respawn + restore + replay) and then must produce the identical
        // inbox, enforced by the fingerprint chain.
        for k in 0..shards {
            match self.links[k].recv(recv) {
                Ok(()) => {}
                Err(e) if link_lost(&e) => {
                    self.recover_shard(k, frame, recv)?;
                    self.links[k].recv(recv)?;
                }
                Err(e) => return Err(e),
            }
            self.apply_inbox::<M>(k, recv, arena, cursors)?;
        }
        // Checkpoint phase: refresh every shard's recovery point to the end
        // of this round.
        for k in 0..shards {
            self.checkpoint_shard(k, frame, recv)?;
        }
        Ok(())
    }

    /// Applies shard `k`'s `INBOX` entries into the arena. Entries arrive
    /// dst-major in send order, so writing each at its destination cursor
    /// reproduces the direct counting scatter exactly.
    fn apply_inbox<M: Wire>(
        &mut self,
        k: usize,
        recv: &[u8],
        arena: &mut [(NodeId, M)],
        cursors: &mut [u32],
    ) -> Result<(), ShardError> {
        let (mut c, count) = self.validate_inbox_header(k, recv)?;
        let (lo, hi) = (self.dst_cuts[k], self.dst_cuts[k + 1]);
        for _ in 0..count {
            let src = c.u32().ok_or(ShardError::Truncated)?;
            let dst = c.u32().ok_or(ShardError::Truncated)?;
            let len = c.u32().ok_or(ShardError::Truncated)? as usize;
            let bytes = c.take(len).ok_or(ShardError::Truncated)?;
            if dst < lo || dst >= hi {
                return Err(ShardError::Protocol("inbox entry outside shard range"));
            }
            let mut mc = WireCursor::new(bytes);
            let m = M::decode(&mut mc)
                .ok_or(ShardError::Protocol("message payload failed to decode"))?;
            if !mc.done() {
                return Err(ShardError::Protocol("trailing bytes after message payload"));
            }
            let at = cursors[dst as usize] as usize;
            if at >= arena.len() {
                return Err(ShardError::Protocol("inbox entry overflows the arena"));
            }
            arena[at] = (NodeId::new(src), m);
            cursors[dst as usize] += 1;
        }
        if !c.done() {
            return Err(ShardError::Protocol("trailing bytes in inbox frame"));
        }
        Ok(())
    }
}

/// A `RoundCore`'s sharding mode, latched at its first delivery so the
/// transport's round counter and worker checkpoints stay consistent for the
/// engine's whole life.
#[derive(Debug, Default)]
pub(crate) enum ShardSlot {
    /// No delivery has happened yet; the mode is decided on first use.
    #[default]
    Unprobed,
    /// Direct in-process scatter (shard count 0: the default).
    Direct,
    /// Framed delivery through a [`ShardedTransport`].
    Framed(Box<ShardedTransport>),
}

/// Resolves `slot` for an `n`-node delivery, constructing the transport on
/// first use when sharding is configured. Returns whether delivery is
/// framed.
pub(crate) fn probe(
    slot: &mut ShardSlot,
    n: usize,
    buffers: &mut RoundBuffers,
) -> Result<bool, ShardError> {
    match slot {
        ShardSlot::Direct => Ok(false),
        ShardSlot::Framed(t) if t.node_count() == n => Ok(true),
        _ => {
            let shards = shard_count();
            if shards == 0 {
                *slot = ShardSlot::Direct;
                return Ok(false);
            }
            let t = ShardedTransport::new(n, shards, effective_backend(), buffers)?;
            *slot = ShardSlot::Framed(t);
            Ok(true)
        }
    }
}

/// Kill shard `kill_shard` the moment round `at_round` (1-based, counted
/// per transport) has been sent to it — before its inbox is received — so
/// the interrupted round must be recovered and replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Index of the shard to kill.
    pub kill_shard: usize,
    /// Round (1-based) at which to kill it.
    pub at_round: u64,
}

static FAULT_ARMED: AtomicBool = AtomicBool::new(false);
static FAULT_SHARD: AtomicUsize = AtomicUsize::new(0);
static FAULT_ROUND: AtomicU64 = AtomicU64::new(0);
static FAULT_INJECTIONS: AtomicU64 = AtomicU64::new(0);

/// Arms `plan` process-globally; the next matching delivery injects it
/// exactly once and disarms.
pub fn arm_fault(plan: FaultPlan) {
    FAULT_SHARD.store(plan.kill_shard, Ordering::Relaxed);
    FAULT_ROUND.store(plan.at_round, Ordering::Relaxed);
    FAULT_ARMED.store(true, Ordering::SeqCst);
}

/// Disarms any armed fault plan.
pub fn disarm_fault() {
    FAULT_ARMED.store(false, Ordering::SeqCst);
}

/// Total faults injected by this process so far. Tests use the delta to
/// assert an injection actually fired (a plan aimed past the last round
/// never triggers).
pub fn fault_injections() -> u64 {
    FAULT_INJECTIONS.load(Ordering::Relaxed)
}

fn fault_due(round: u64) -> Option<usize> {
    if FAULT_ARMED.load(Ordering::SeqCst) && FAULT_ROUND.load(Ordering::Relaxed) == round {
        return Some(FAULT_SHARD.load(Ordering::Relaxed));
    }
    None
}

/// In-process shard-count override; `usize::MAX` means "not set".
static SHARDS_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Overrides the shard count for engines built after this call, taking
/// precedence over `CC_MIS_SHARDS`. `Some(0)` forces direct delivery;
/// `None` clears the override. Framed delivery is byte-identical to direct
/// at any count, so this is a topology knob, never a semantics knob.
pub fn set_shards_override(shards: Option<usize>) {
    SHARDS_OVERRIDE.store(shards.unwrap_or(usize::MAX), Ordering::Relaxed);
}

/// The effective shard count: the in-process override if set, else
/// `CC_MIS_SHARDS`, else `0` (direct delivery).
pub fn shard_count() -> usize {
    let ov = SHARDS_OVERRIDE.load(Ordering::Relaxed);
    if ov != usize::MAX {
        return ov;
    }
    crate::config::env_shards().unwrap_or(0)
}

/// In-process backend override; 0 unset, 1 channel, 2 process.
static BACKEND_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the link backend for transports built after this call, taking
/// precedence over `CC_MIS_SHARD_BACKEND`. `None` clears the override.
pub fn set_backend_override(backend: Option<ShardBackend>) {
    let v = match backend {
        None => 0,
        Some(ShardBackend::Channel) => 1,
        Some(ShardBackend::Process) => 2,
    };
    BACKEND_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The effective backend: the in-process override if set, else
/// `CC_MIS_SHARD_BACKEND` (`"process"` or `"channel"`), else
/// [`ShardBackend::Channel`].
pub fn effective_backend() -> ShardBackend {
    match BACKEND_OVERRIDE.load(Ordering::Relaxed) {
        1 => return ShardBackend::Channel,
        2 => return ShardBackend::Process,
        _ => {}
    }
    match crate::config::env_shard_backend().as_deref() {
        Some("process") => ShardBackend::Process,
        _ => ShardBackend::Channel,
    }
}

/// In-process worker-binary override (tests point this at
/// `CARGO_BIN_EXE_clique-mis`).
static WORKER_BIN: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Overrides the binary spawned for process-backend workers, taking
/// precedence over `CC_MIS_WORKER_BIN`. `None` clears the override.
pub fn set_worker_binary(path: Option<PathBuf>) {
    if let Ok(mut guard) = WORKER_BIN.lock() {
        *guard = path;
    }
}

/// The binary spawned for process-backend workers: the in-process override,
/// else `CC_MIS_WORKER_BIN`, else this process's own executable (the normal
/// case — the CLI re-invokes itself with the `worker` verb).
fn worker_binary() -> PathBuf {
    if let Ok(guard) = WORKER_BIN.lock() {
        if let Some(p) = guard.as_ref() {
            return p.clone();
        }
    }
    if let Some(p) = crate::config::env_worker_bin() {
        return PathBuf::from(p);
    }
    std::env::current_exe().unwrap_or_else(|_| PathBuf::from("clique-mis"))
}

/// Serializes tests (across this crate) that arm the process-global fault
/// plan or mutate the shard-count/backend overrides.
#[cfg(test)]
pub(crate) static TEST_CONFIG_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    use super::TEST_CONFIG_LOCK as FAULT_LOCK;

    fn round_trip<M: Wire + PartialEq + fmt::Debug>(v: M) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut c = WireCursor::new(&buf);
        assert_eq!(M::decode(&mut c), Some(v));
        assert!(c.done());
    }

    #[test]
    fn wire_round_trips_every_impl() {
        round_trip(());
        round_trip(true);
        round_trip(false);
        round_trip(7u8);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(String::from("héllo"));
        round_trip(Option::<u64>::None);
        round_trip(Some(9u32));
        round_trip((3u32, true));
        round_trip((false, u64::MAX, true));
    }

    #[test]
    fn frame_codec_round_trips_and_detects_corruption() {
        let payload = b"framed bytes".as_slice();
        let mut frame = Vec::new();
        let checksum = encode_frame(FrameKind::Round, payload, &mut frame);
        let (kind, decoded, found) = decode_frame(&frame).expect("clean frame decodes");
        assert_eq!(kind, FrameKind::Round);
        assert_eq!(decoded, payload);
        assert_eq!(found, checksum);
        // A flipped payload bit is caught by the checksum...
        let mut corrupt = frame.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        assert!(matches!(
            decode_frame(&corrupt),
            Err(ShardError::BadChecksum { .. })
        ));
        // ...truncation by the length prefix...
        assert!(matches!(
            decode_frame(&frame[..frame.len() - 1]),
            Err(ShardError::Truncated)
        ));
        // ...and an unknown kind byte by name.
        let mut bad_kind = frame.clone();
        bad_kind[4] = 99;
        assert!(matches!(
            decode_frame(&bad_kind),
            Err(ShardError::BadKind(99))
        ));
    }

    #[test]
    fn worker_checkpoint_round_trips_and_verifies_identity() {
        let mut w = WorkerState::fresh(2);
        w.n = 16;
        w.dst_lo = 8;
        w.dst_hi = 16;
        w.applied = 5;
        w.delivered = 40;
        w.bytes = 160;
        w.fingerprint = 0x1234_5678;
        let bytes = w.save_bytes();
        let mut fresh = WorkerState::fresh(2);
        fresh.n = 16;
        fresh.dst_lo = 8;
        fresh.dst_hi = 16;
        fresh
            .restore_bytes(&bytes)
            .expect("matching identity restores");
        assert_eq!(fresh.applied, 5);
        assert_eq!(fresh.fingerprint, 0x1234_5678);
        // A shard-identity mismatch is rejected by name, not silently applied.
        let mut wrong = WorkerState::fresh(3);
        wrong.n = 16;
        wrong.dst_lo = 8;
        wrong.dst_hi = 16;
        assert!(matches!(
            wrong.restore_bytes(&bytes),
            Err(ShardError::Snapshot(SnapshotError::Mismatch {
                field: "shard",
                ..
            }))
        ));
    }

    /// Reference implementation: the direct src-major counting scatter from
    /// `Round::deliver`, against which framed delivery must be
    /// byte-identical.
    fn direct_scatter(n: usize, outbox: &[(NodeId, NodeId, u32)]) -> Vec<(NodeId, u32)> {
        let mut counts = vec![0u32; n];
        for &(_, dst, _) in outbox {
            counts[dst.index()] += 1;
        }
        let mut cursors = vec![0u32; n];
        let mut acc = 0u32;
        for d in 0..n {
            cursors[d] = acc;
            acc += counts[d];
        }
        let mut arena = vec![(NodeId::new(0), 0u32); outbox.len()];
        for &(src, dst, m) in outbox {
            let at = cursors[dst.index()] as usize;
            arena[at] = (src, m);
            cursors[dst.index()] += 1;
        }
        arena
    }

    fn test_outbox(n: u32, rounds_seed: u64) -> Vec<(NodeId, NodeId, u32)> {
        let mut outbox = Vec::new();
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                // Deterministic sparse pattern with a mix3-derived skip.
                if mix3(rounds_seed, src as u64, dst as u64).is_multiple_of(3) {
                    outbox.push((NodeId::new(src), NodeId::new(dst), src * 1000 + dst));
                }
            }
        }
        outbox
    }

    fn framed_scatter(
        t: &mut ShardedTransport,
        n: usize,
        outbox: &[(NodeId, NodeId, u32)],
        buffers: &mut RoundBuffers,
    ) -> Vec<(NodeId, u32)> {
        let mut counts = vec![0u32; n];
        for &(_, dst, _) in outbox {
            counts[dst.index()] += 1;
        }
        let mut cursors = vec![0u32; n];
        let mut acc = 0u32;
        for d in 0..n {
            cursors[d] = acc;
            acc += counts[d];
        }
        let mut arena = vec![(NodeId::new(0), 0u32); outbox.len()];
        t.deliver(outbox, &mut arena, &mut cursors, buffers)
            .expect("framed delivery succeeds");
        arena
    }

    #[test]
    fn framed_delivery_matches_direct_scatter_at_any_shard_count() {
        let _guard = FAULT_LOCK.lock().expect("fault lock is never poisoned");
        let n = 11usize;
        let mut buffers = RoundBuffers::default();
        for shards in 1..=4 {
            let mut t = ShardedTransport::new(n, shards, ShardBackend::Channel, &mut buffers)
                .expect("channel transport builds");
            for round in 0..3u64 {
                let outbox = test_outbox(n as u32, round);
                let framed = framed_scatter(&mut t, n, &outbox, &mut buffers);
                assert_eq!(
                    framed,
                    direct_scatter(n, &outbox),
                    "shards={shards} round={round}"
                );
            }
            // An empty round still advances the clock and checkpoints.
            let framed = framed_scatter(&mut t, n, &[], &mut buffers);
            assert!(framed.is_empty());
            assert_eq!(t.round, 4);
        }
    }

    #[test]
    fn killed_shard_recovers_to_identical_bytes() {
        let _guard = FAULT_LOCK.lock().expect("fault lock is never poisoned");
        let n = 9usize;
        let mut buffers = RoundBuffers::default();
        for shards in [1usize, 3] {
            for kill_shard in 0..shards {
                for at_round in 1..=3u64 {
                    let mut straight =
                        ShardedTransport::new(n, shards, ShardBackend::Channel, &mut buffers)
                            .expect("channel transport builds");
                    let mut faulted =
                        ShardedTransport::new(n, shards, ShardBackend::Channel, &mut buffers)
                            .expect("channel transport builds");
                    let before = fault_injections();
                    arm_fault(FaultPlan {
                        kill_shard,
                        at_round,
                    });
                    for round in 0..3u64 {
                        let outbox = test_outbox(n as u32, round);
                        let want = framed_scatter(&mut straight, n, &outbox, &mut buffers);
                        let got = framed_scatter(&mut faulted, n, &outbox, &mut buffers);
                        assert_eq!(
                            got, want,
                            "shards={shards} kill={kill_shard} at={at_round} round={round}"
                        );
                    }
                    disarm_fault();
                    assert_eq!(
                        fault_injections(),
                        before + 1,
                        "the fault must actually have fired"
                    );
                }
            }
        }
    }

    #[test]
    fn overrides_take_precedence_and_clear() {
        let _guard = FAULT_LOCK.lock().expect("fault lock is never poisoned");
        set_shards_override(Some(3));
        assert_eq!(shard_count(), 3);
        set_shards_override(Some(0));
        assert_eq!(shard_count(), 0);
        set_shards_override(None);
        set_backend_override(Some(ShardBackend::Process));
        assert_eq!(effective_backend(), ShardBackend::Process);
        set_backend_override(None);
        assert_eq!(effective_backend(), ShardBackend::Channel);
    }
}
