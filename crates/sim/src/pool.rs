//! Round-buffer recycling: every allocation the round hot path needs.
//!
//! [`crate::runtime::Round::send`] and [`crate::runtime::Round::deliver`]
//! are the simulator's hottest code; conformance rule R15 keeps them free
//! of allocation constructors. All the storage they use is acquired here
//! instead, from two pools:
//!
//! * [`RoundBuffers`] — owned by [`crate::runtime::RoundCore`], recycles
//!   the outbox arena, the per-destination count/offset/cursor tables, the
//!   dense per-pair load array, and the sparse [`PairBits`] log across
//!   rounds. After the first round of a steady-state loop, opening and
//!   closing a round performs no heap allocation (the way
//!   `drive_with_checkpoints` already recycles its encode buffer).
//! * [`ArenaPool`] — shared (behind `Arc<Mutex<..>>`) between the core and
//!   the [`crate::runtime::Inboxes`] values `deliver` returns, so inbox
//!   storage flows back to the engine when the algorithm drops a round's
//!   inboxes, even though the `Inboxes` outlives the `Round`'s borrow.
//!
//! Message types differ per round (`Round<T, M>` is generic), so recycled
//! outboxes and arenas are stored type-erased as `Box<dyn Any + Send>` and
//! reclaimed by downcast — all in safe Rust (`M: Send + 'static`).

use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use cc_mis_graph::NodeId;

use crate::bits::idx_u32;

/// Default largest node count for which the clique transport uses the dense
/// per-pair `u64` load array (`n²` words; 2048 ⇒ 32 MiB). Beyond this the
/// round falls back to the sparse [`PairBits`] path, which scales with the
/// number of *distinct* pairs actually used.
///
/// The effective cutoff is [`dense_pair_max`]; both accounting paths charge
/// identical per-pair totals (pinned by the boundary test below), so the
/// cutoff is purely a space/time trade, never a semantics knob.
pub const DENSE_PAIR_MAX_DEFAULT: usize = 2048;

/// In-process cutoff override; `0` means "not set".
static DENSE_PAIR_MAX_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the dense-pair cutoff for subsequent rounds in this process,
/// taking precedence over `CC_MIS_DENSE_PAIR_MAX`. `None` clears the
/// override. Because the dense and sparse paths account identically, this
/// changes memory use only, never results.
pub fn set_dense_pair_max_override(max_nodes: Option<usize>) {
    DENSE_PAIR_MAX_OVERRIDE.store(max_nodes.unwrap_or(0), Ordering::Relaxed);
}

/// The effective dense-pair cutoff: the in-process override if set (values
/// ≥ 1), else `CC_MIS_DENSE_PAIR_MAX` (unparsable values fall back to the
/// default; `0` forces the sparse path for every graph), else
/// [`DENSE_PAIR_MAX_DEFAULT`].
pub fn dense_pair_max() -> usize {
    let ov = DENSE_PAIR_MAX_OVERRIDE.load(Ordering::Relaxed);
    if ov >= 1 {
        return ov;
    }
    crate::config::env_dense_pair_max().unwrap_or(DENSE_PAIR_MAX_DEFAULT)
}

/// How many retired type-erased buffers each pool retains. Two is enough
/// for every in-tree pattern (at most one live `Inboxes` per engine plus
/// one in flight); the cap bounds memory when many message types alternate.
const POOL_RETAIN: usize = 2;

/// Map from packed `(src, dst)` keys to cumulative bits, used for per-round
/// budget enforcement on transports without a dense pair domain (CONGEST).
///
/// Every round loop in the codebase enqueues messages with non-decreasing
/// packed keys (sources ascend, each source's destinations ascend), so in the
/// common case pair membership is a single compare against the last `log`
/// entry and no hash table exists at all — sends touch only the tail of a
/// sequentially written vector instead of probing a multi-megabyte table.
/// The Fibonacci-hashed linear-probe index is built lazily the first time a
/// round sends out of key order and maps keys to `log` positions thereafter.
///
/// [`PairBits::clear`] retains all three vectors' capacity, so a pooled
/// instance re-enters the monotone fast path each round without
/// reallocating.
#[derive(Debug, Default)]
pub(crate) struct PairBits {
    /// One `(packed key, cumulative bits)` entry per distinct pair seen this
    /// round, in arrival order.
    log: Vec<(u64, u64)>,
    /// Lazily built probe table over packed keys; `u64::MAX` marks an empty
    /// slot (unreachable as a real key because `src == dst` is rejected).
    keys: Vec<u64>,
    /// `log` position for each occupied `keys` slot.
    idxs: Vec<u32>,
}

const PAIR_EMPTY: u64 = u64::MAX;

impl PairBits {
    #[inline]
    fn slot(keys: &[u64], key: u64) -> usize {
        // Fibonacci hashing; table capacity is a power of two.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - keys.len().trailing_zeros())) as usize
    }

    /// The pair's cumulative-bits cell, inserted as 0 if absent — the
    /// caller checks the budget before committing the new total, so a
    /// rejected send consumes none of the pair's budget.
    #[inline]
    pub(crate) fn entry_or_zero(&mut self, key: u64) -> &mut u64 {
        if self.keys.is_empty() {
            match self.log.last() {
                Some(&(last, _)) if key < last => self.build_table(),
                Some(&(last, _)) if key == last => {
                    return &mut self
                        .log
                        .last_mut()
                        .expect("log tail exists: key matched it")
                        .1;
                }
                _ => {
                    self.log.push((key, 0));
                    return &mut self.log.last_mut().expect("log tail exists: just pushed").1;
                }
            }
        }
        self.lookup(key)
    }

    /// Table-mode path: probe for `key`, appending a fresh zero entry on miss.
    fn lookup(&mut self, key: u64) -> &mut u64 {
        if self.log.len() * 4 >= self.keys.len() * 3 {
            self.rebuild(self.keys.len() * 2);
        }
        let mask = self.keys.len() - 1;
        let mut i = Self::slot(&self.keys, key);
        loop {
            let k = self.keys[i];
            if k == key {
                let at = self.idxs[i] as usize;
                return &mut self.log[at].1;
            }
            if k == PAIR_EMPTY {
                self.keys[i] = key;
                self.idxs[i] = idx_u32(self.log.len());
                self.log.push((key, 0));
                return &mut self.log.last_mut().expect("log tail exists: just pushed").1;
            }
            i = (i + 1) & mask;
        }
    }

    /// Leaves the monotone fast path: index every pair logged so far.
    #[cold]
    fn build_table(&mut self) {
        self.rebuild(((self.log.len() + 1) * 2).next_power_of_two().max(64));
    }

    #[cold]
    fn rebuild(&mut self, cap: usize) {
        // clear + resize (not `vec![..]`) so a pooled table's allocation is
        // reused when the new capacity fits it.
        self.keys.clear();
        self.keys.resize(cap, PAIR_EMPTY);
        self.idxs.clear();
        self.idxs.resize(cap, 0);
        let mask = cap - 1;
        for (at, &(k, _)) in self.log.iter().enumerate() {
            let mut i = Self::slot(&self.keys, k);
            while self.keys[i] != PAIR_EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = k;
            self.idxs[i] = idx_u32(at);
        }
    }

    /// Largest cumulative per-pair load committed this round (observer
    /// diagnostics; loads are monotone, so the final value is the peak).
    pub(crate) fn peak(&self) -> u64 {
        self.log.iter().map(|&(_, used)| used).max().unwrap_or(0)
    }

    /// Forgets this round's pairs but keeps all capacity, returning to the
    /// monotone (table-free) fast path.
    pub(crate) fn clear(&mut self) {
        self.log.clear();
        self.keys.clear();
        self.idxs.clear();
    }
}

/// Per-core recycled storage for the round hot path. Everything here is
/// scratch: no field carries information across rounds, only capacity.
#[derive(Default)]
pub(crate) struct RoundBuffers {
    /// Per-destination message counts (`u32`; message counts per round are
    /// checked to fit via [`idx_u32`] before use).
    pub(crate) counts: Vec<u32>,
    /// Per-destination write cursors for the counting scatter.
    pub(crate) cursors: Vec<u32>,
    /// Destination-range shard boundaries (parallel delivery).
    pub(crate) dst_cuts: Vec<usize>,
    /// Arena-position shard boundaries (parallel delivery).
    pub(crate) arena_cuts: Vec<usize>,
    /// Dense per-pair load array. Invariant: all-zero between rounds (the
    /// round scrubs the entries it touched before retiring it).
    dense: Vec<u64>,
    /// Sparse per-pair load log, cleared (capacity kept) between rounds.
    sparse: PairBits,
    /// Retired outboxes (`Vec<(NodeId, NodeId, M)>`), type-erased.
    outboxes: Vec<Box<dyn Any + Send>>,
    /// Retired frame byte buffers for the sharded transport (round
    /// payloads, encoded frames, receive scratch).
    frames: Vec<Vec<u8>>,
    /// Inbox arenas shared with the `Inboxes` values rounds return.
    pub(crate) arena_pool: Arc<Mutex<ArenaPool>>,
}

/// How many retired frame buffers the pool retains. A framed delivery holds
/// four at once (round payload, encoded frame, receive scratch, message
/// scratch), so retaining four makes steady-state framed rounds
/// allocation-free.
const FRAME_RETAIN: usize = 4;

impl RoundBuffers {
    /// A dense load array of exactly `len` all-zero words.
    pub(crate) fn take_dense(&mut self, len: usize) -> Vec<u64> {
        let mut dense = std::mem::take(&mut self.dense);
        if dense.len() != len {
            dense.clear();
            dense.resize(len, 0);
        }
        dense
    }

    /// Returns a dense array whose touched entries the caller has zeroed.
    pub(crate) fn retire_dense(&mut self, dense: Vec<u64>) {
        self.dense = dense;
    }

    /// The pooled sparse pair log (already cleared).
    pub(crate) fn take_sparse(&mut self) -> PairBits {
        std::mem::take(&mut self.sparse)
    }

    /// Returns the sparse pair log, clearing it but keeping capacity.
    pub(crate) fn retire_sparse(&mut self, mut sparse: PairBits) {
        sparse.clear();
        self.sparse = sparse;
    }

    /// A recycled (empty) outbox for message type `M`, if one was retired.
    pub(crate) fn take_outbox<M: Send + 'static>(&mut self) -> Vec<(NodeId, NodeId, M)> {
        for i in 0..self.outboxes.len() {
            if self.outboxes[i].is::<Vec<(NodeId, NodeId, M)>>() {
                let boxed = self.outboxes.swap_remove(i);
                return *boxed
                    .downcast()
                    .expect("downcast succeeds: type checked via Any::is above");
            }
        }
        Vec::new()
    }

    /// Retires an outbox, keeping its allocation for the next round of the
    /// same message type. Unallocated outboxes are dropped (boxing them
    /// would cost more than it saves).
    pub(crate) fn retire_outbox<M: Send + 'static>(
        &mut self,
        mut outbox: Vec<(NodeId, NodeId, M)>,
    ) {
        outbox.clear();
        if outbox.capacity() > 0 && self.outboxes.len() < POOL_RETAIN {
            self.outboxes.push(Box::new(outbox));
        }
    }

    /// A recycled (empty) frame byte buffer.
    pub(crate) fn take_frame(&mut self) -> Vec<u8> {
        self.frames.pop().unwrap_or_default()
    }

    /// Retires a frame buffer, keeping its allocation for later rounds.
    pub(crate) fn retire_frame(&mut self, mut frame: Vec<u8>) {
        frame.clear();
        if frame.capacity() > 0 && self.frames.len() < FRAME_RETAIN {
            self.frames.push(frame);
        }
    }
}

/// Pool of inbox arenas and offset tables, shared between a core and the
/// [`crate::runtime::Inboxes`] values its rounds have returned.
#[derive(Default)]
pub(crate) struct ArenaPool {
    arenas: Vec<Box<dyn Any + Send>>,
    offsets: Vec<Vec<u32>>,
}

impl ArenaPool {
    fn take_arena<M: Send + 'static>(&mut self) -> Vec<(NodeId, M)> {
        for i in 0..self.arenas.len() {
            if self.arenas[i].is::<Vec<(NodeId, M)>>() {
                let boxed = self.arenas.swap_remove(i);
                return *boxed
                    .downcast()
                    .expect("downcast succeeds: type checked via Any::is above");
            }
        }
        Vec::new()
    }

    fn take_offsets(&mut self) -> Vec<u32> {
        self.offsets.pop().unwrap_or_default()
    }

    /// Accepts an arena and offset table back from a dropped `Inboxes`.
    /// Stale arena contents are kept deliberately: a reused arena whose
    /// length already covers the next round is truncated and overwritten in
    /// place, skipping the filler pass entirely.
    pub(crate) fn retire<M: Send + 'static>(&mut self, arena: Vec<(NodeId, M)>, offsets: Vec<u32>) {
        if arena.capacity() > 0 && self.arenas.len() < POOL_RETAIN {
            self.arenas.push(Box::new(arena));
        }
        if offsets.capacity() > 0 && self.offsets.len() < POOL_RETAIN {
            self.offsets.push(offsets);
        }
    }
}

/// Locks `pool` and takes one arena (for `M`) plus one offset table;
/// a poisoned lock (a panicking observer mid-drop) degrades to fresh
/// allocations rather than propagating the panic.
pub(crate) fn take_arena_parts<M: Send + 'static>(
    pool: &Arc<Mutex<ArenaPool>>,
) -> (Vec<(NodeId, M)>, Vec<u32>) {
    match pool.lock() {
        Ok(mut p) => (p.take_arena(), p.take_offsets()),
        Err(_) => (Vec::new(), Vec::new()),
    }
}

/// Resets `v` to `n` zeros, reusing its allocation.
pub(crate) fn reset_zeroed(v: &mut Vec<u32>, n: usize) {
    v.clear();
    v.resize(n, 0);
}

/// Sizes `arena` to exactly `m` entries. A long pooled arena is truncated
/// (every surviving slot is overwritten by the scatter); a short one grows
/// with `filler` clones, which the scatter likewise overwrites.
pub(crate) fn ensure_arena_len<M: Clone>(
    arena: &mut Vec<(NodeId, M)>,
    m: usize,
    filler: (NodeId, M),
) {
    arena.truncate(m);
    if arena.len() < m {
        arena.resize(m, filler);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_bits_monotone_then_table() {
        let mut pb = PairBits::default();
        *pb.entry_or_zero(5) += 8;
        *pb.entry_or_zero(9) += 4;
        // Out of order: forces the probe table, which must keep both tallies.
        *pb.entry_or_zero(5) += 1;
        assert_eq!(*pb.entry_or_zero(5), 9);
        assert_eq!(*pb.entry_or_zero(9), 4);
        assert_eq!(pb.peak(), 9);
    }

    #[test]
    fn pair_bits_clear_keeps_capacity_and_resets_tallies() {
        let mut pb = PairBits::default();
        for k in (0..100u64).rev() {
            *pb.entry_or_zero(k) += 1;
        }
        let log_cap = pb.log.capacity();
        pb.clear();
        assert_eq!(pb.peak(), 0);
        assert!(pb.log.capacity() >= log_cap.min(100));
        assert_eq!(*pb.entry_or_zero(7), 0);
    }

    #[test]
    fn dense_pool_round_trips_zeroed() {
        let mut b = RoundBuffers::default();
        let mut d = b.take_dense(16);
        assert!(d.iter().all(|&w| w == 0));
        d[3] = 99;
        d[3] = 0; // caller scrubs before retiring
        b.retire_dense(d);
        let d2 = b.take_dense(16);
        assert!(d2.iter().all(|&w| w == 0));
    }

    #[test]
    fn outbox_pool_recycles_by_type() {
        let mut b = RoundBuffers::default();
        let mut o: Vec<(NodeId, NodeId, u32)> = b.take_outbox();
        o.push((NodeId::new(0), NodeId::new(1), 7));
        let cap = o.capacity();
        b.retire_outbox(o);
        // A different message type gets a fresh vector...
        let o_bool: Vec<(NodeId, NodeId, bool)> = b.take_outbox();
        assert_eq!(o_bool.capacity(), 0);
        // ...while the matching type gets the retired one back, empty.
        let o2: Vec<(NodeId, NodeId, u32)> = b.take_outbox();
        assert!(o2.is_empty());
        assert_eq!(o2.capacity(), cap);
    }

    #[test]
    fn frame_pool_recycles_cleared_buffers() {
        let mut b = RoundBuffers::default();
        let mut f = b.take_frame();
        f.extend_from_slice(b"frame bytes");
        let cap = f.capacity();
        b.retire_frame(f);
        let f2 = b.take_frame();
        assert!(f2.is_empty());
        assert_eq!(f2.capacity(), cap);
        // The retention cap bounds the pool.
        for _ in 0..10 {
            b.retire_frame(vec![1u8]);
        }
        assert!(b.frames.len() <= FRAME_RETAIN);
    }

    #[test]
    fn arena_pool_round_trips() {
        let pool: Arc<Mutex<ArenaPool>> = Arc::default();
        let (mut arena, mut offsets): (Vec<(NodeId, u8)>, Vec<u32>) = take_arena_parts(&pool);
        arena.push((NodeId::new(0), 1));
        offsets.push(0);
        let cap = arena.capacity();
        pool.lock()
            .expect("pool lock is uncontended in this test")
            .retire(arena, offsets);
        let (arena2, offsets2): (Vec<(NodeId, u8)>, Vec<u32>) = take_arena_parts(&pool);
        assert_eq!(arena2.capacity(), cap);
        assert!(offsets2.capacity() >= 1);
    }

    #[test]
    fn ensure_arena_len_truncates_and_grows() {
        let mut arena: Vec<(NodeId, u8)> = vec![(NodeId::new(0), 1); 5];
        ensure_arena_len(&mut arena, 2, (NodeId::new(9), 9));
        assert_eq!(arena.len(), 2);
        ensure_arena_len(&mut arena, 4, (NodeId::new(9), 9));
        assert_eq!(arena.len(), 4);
        assert_eq!(arena[3], (NodeId::new(9), 9));
    }
}
